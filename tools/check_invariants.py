#!/usr/bin/env python
"""Run the invariant-analysis suite (``repro.analysis``) over the tree.

Four passes — determinism lint, lock-order checker, exception-classification
audit, journal-discipline — walk ``src/repro`` and report every violation
not waived by a ``# repro: allow(<rule>)`` pragma.  CI's ``invariants`` job
runs ``--strict`` on both array backends; the findings (and the ``--json``
payload) are byte-deterministic, so two runs over the same tree always
compare equal.

Usage::

    python tools/check_invariants.py [--strict] [--json] [--list]
                                     [--rule NAME ...] [--root PATH]

Exit status: 0 when clean (always, without ``--strict``); 1 on any
unsuppressed finding under ``--strict``; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "tools"))

from _common import report_problems  # noqa: E402
from repro.analysis import analyze, default_registry  # noqa: E402
from repro.utils.canonical_json import dumps_canonical  # noqa: E402


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="check_invariants.py",
        description="static invariant analysis over the repo's own source",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any unsuppressed finding (the CI mode)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical-JSON findings payload instead of text",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the registered passes and exit"
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named pass (repeatable)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="repository root to analyse (default: this checkout)",
    )
    options = parser.parse_args(argv)

    registry = default_registry()
    if options.list:
        for invariant_pass in registry:
            print(f"{invariant_pass.name}: {invariant_pass.description}")
        return 0
    try:
        active, suppressed = analyze(options.root, registry, options.rule)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    if options.json:
        payload = {
            "version": 1,
            "passes": [invariant_pass.name for invariant_pass in registry],
            "findings": [finding.to_payload() for finding in active],
            "suppressed": [finding.to_payload() for finding in suppressed],
        }
        sys.stdout.write(dumps_canonical(payload) + "\n")
        return 1 if (options.strict and active) else 0

    ok = (
        f"invariants check: {len(registry) if not options.rule else len(options.rule)}"
        f" pass(es) clean, {len(suppressed)} pragma-waived finding(s)"
    )
    code = report_problems([finding.format() for finding in active], ok)
    return code if options.strict else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
