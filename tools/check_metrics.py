#!/usr/bin/env python
"""Validate a ``--metrics-out`` snapshot against ``docs/metrics_schema.json``.

CI's metrics-smoke job runs the resilience chaos scenario with
``--metrics-out`` and feeds the snapshot through this checker: the schema
pins the snapshot structure and its ``required`` list names every documented
metric family the scenario must export, so an instrumentation point that is
accidentally removed (or renamed) fails the job instead of silently
vanishing from dashboards.

Snapshots from runs that never construct the online/migration layers (plain
``repro run`` or ``deploy``) legitimately export a subset of the families;
validate those with ``--partial``, which checks every exported family's
structure but waives the completeness requirement.  Other scenarios export
a *different* complete set: ``--profile NAME`` swaps the requirement for
the family list recorded under ``$profiles`` in the schema (``storage`` is
the real-storage chaos run).

Usage::

    python tools/check_metrics.py [--partial | --profile NAME] SNAPSHOT.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "tools"))

from _common import report_problems  # noqa: E402
from repro.obs.schema import iter_errors  # noqa: E402


def main(argv: list[str]) -> int:
    partial = "--partial" in argv
    arguments = [arg for arg in argv if arg != "--partial"]
    profile = None
    if "--profile" in arguments:
        index = arguments.index("--profile")
        try:
            profile = arguments[index + 1]
        except IndexError:
            print("--profile requires a name", file=sys.stderr)
            return 2
        del arguments[index : index + 2]
    if len(arguments) != 1 or (partial and profile):
        print(
            "usage: python tools/check_metrics.py [--partial | --profile NAME] SNAPSHOT.json",
            file=sys.stderr,
        )
        return 2
    snapshot_path = Path(arguments[0])
    snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
    schema = json.loads(
        (REPO_ROOT / "docs" / "metrics_schema.json").read_text(encoding="utf-8")
    )
    if partial:
        schema["properties"]["families"].pop("required", None)
    elif profile is not None:
        profiles = schema.get("$profiles", {})
        if profile not in profiles:
            print(
                f"unknown profile {profile!r}; choose from {', '.join(sorted(profiles))}",
                file=sys.stderr,
            )
            return 2
        schema["properties"]["families"]["required"] = profiles[profile]
    errors = list(iter_errors(snapshot, schema))
    families = snapshot.get("families", {})
    series = sum(len(family.get("series", ())) for family in families.values())
    return report_problems(
        [f"{snapshot_path}: {message}" for message in errors],
        f"OK {snapshot_path}: {len(families)} families, {series} series",
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
