#!/usr/bin/env python
"""Docs health check: markdown link validation + doctests.

Two passes, both dependency-free:

1. **Link check** — every relative markdown link in README.md, ROADMAP.md,
   PAPER.md, PAPERS.md and docs/*.md must point at an existing file
   (anchors are checked against the target file's headings, GitHub-slug
   style).  External (http/https/mailto) links are not fetched.
2. **Doctests** — ``doctest.testmod`` over the modules that carry doctested
   examples (listed in ``DOCTEST_MODULES``), so the examples shown in
   ``help()`` output cannot rot silently.

Exit status 0 when everything passes; 1 with a per-problem report
otherwise.  Run from the repository root (CI docs job, or locally):

    python tools/check_docs.py
"""

from __future__ import annotations

import doctest
import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "tools"))

from _common import report_problems  # noqa: E402

#: markdown files whose links must stay valid.
MARKDOWN_FILES = ("README.md", "ROADMAP.md", "PAPER.md", "PAPERS.md", "CHANGES.md")
MARKDOWN_GLOBS = ("docs/*.md",)

#: modules with doctested examples (keep in sync with the CI docs job).
DOCTEST_MODULES = (
    "repro.graph.assignment",
    "repro.routing.lookup",
    "repro.online.controller",
    "repro.pipeline.plan",
)

#: [text](target) — excluding images; target split from an optional title.
_LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def _heading_anchors(markdown: str) -> set[str]:
    """GitHub-style anchor slugs of every heading in ``markdown``."""
    anchors: set[str] = set()
    for line in markdown.splitlines():
        match = re.match(r"#{1,6}\s+(.*)", line)
        if not match:
            continue
        heading = re.sub(r"[`*_]", "", match.group(1).strip())
        slug = re.sub(r"[^\w\- ]", "", heading.lower()).replace(" ", "-")
        anchors.add(slug)
    return anchors


def check_links() -> list[str]:
    """Validate every relative link; returns a list of problem strings."""
    problems: list[str] = []
    files = [REPO_ROOT / name for name in MARKDOWN_FILES]
    for pattern in MARKDOWN_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    for path in files:
        if not path.exists():
            problems.append(f"{path.relative_to(REPO_ROOT)}: file listed but missing")
            continue
        text = path.read_text(encoding="utf-8")
        for match in _LINK_PATTERN.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target_path, _, anchor = target.partition("#")
            if not target_path:
                # Same-file anchor.
                resolved = path
            else:
                resolved = (path.parent / target_path).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(REPO_ROOT)}: broken link -> {target}"
                    )
                    continue
            if anchor and resolved.suffix == ".md":
                anchors = _heading_anchors(resolved.read_text(encoding="utf-8"))
                if anchor.lower() not in anchors:
                    problems.append(
                        f"{path.relative_to(REPO_ROOT)}: missing anchor -> {target}"
                    )
    return problems


def check_doctests() -> list[str]:
    """Run the doctests of ``DOCTEST_MODULES``; returns problem strings."""
    problems: list[str] = []
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    for module_name in DOCTEST_MODULES:
        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False)
        if result.attempted == 0:
            problems.append(f"{module_name}: no doctests found (stale DOCTEST_MODULES?)")
        elif result.failed:
            problems.append(f"{module_name}: {result.failed} doctest failure(s)")
    return problems


def main() -> int:
    problems = check_links() + check_doctests()
    return report_problems(problems, "docs check: links and doctests ok")


if __name__ == "__main__":
    raise SystemExit(main())
