"""Shared reporting/exit-code helper for the repo's checker CLIs.

``check_docs.py``, ``check_metrics.py`` and ``check_invariants.py`` all
follow the same contract: print one ``FAIL <problem>`` line per finding, a
trailing count, and exit 1 — or print a single OK line and exit 0.  Keeping
the rendering here means the three checkers stay grep-able with one pattern
in CI logs.
"""

from __future__ import annotations

from typing import Sequence


def report_problems(problems: Sequence[str], ok_message: str, *, label: str = "FAIL") -> int:
    """Print ``problems`` (or ``ok_message``); return the exit code (1/0)."""
    for problem in problems:
        print(f"{label} {problem}")
    if problems:
        print(f"{len(problems)} problem(s)")
        return 1
    print(ok_message)
    return 0
