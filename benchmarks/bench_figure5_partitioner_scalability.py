"""Figure 5 — graph partitioner runtime vs number of partitions and graph size."""

from repro.experiments import format_figure5, run_figure5
from repro.experiments.figure5 import (
    BENCH_GRAPH_SPECS,
    BENCH_PARTITION_COUNTS,
    synthetic_access_graph,
)
from repro.graph.partitioner import PartitionerOptions, partition_graph


def test_figure5_partition_count_sweep(benchmark):
    rows = benchmark.pedantic(
        run_figure5,
        kwargs={"partition_counts": BENCH_PARTITION_COUNTS, "graph_specs": BENCH_GRAPH_SPECS},
        iterations=1,
        rounds=1,
    )
    print()
    print(format_figure5(rows))
    # Paper shape: runtime grows far more with graph size than with k.
    by_graph = {}
    for row in rows:
        by_graph.setdefault(row.graph_name, []).append(row.seconds)
    assert sum(by_graph["tpce"]) > sum(by_graph["epinions"])


def test_figure5_single_partition_call(benchmark):
    graph = synthetic_access_graph(3000, 25000, seed=0)
    assignment = benchmark(partition_graph, graph, 8, PartitionerOptions(seed=0, initial_trials=4))
    assert len(assignment) == graph.num_nodes
