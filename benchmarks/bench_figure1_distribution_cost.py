"""Figure 1 — the price of distribution (throughput/latency of distributed txns)."""

from repro.experiments import format_figure1, run_figure1


def test_figure1_distribution_cost(benchmark):
    rows = benchmark(run_figure1, 5)
    print()
    print(format_figure1(rows))
    # Paper shape: distributed transactions roughly halve throughput.
    for row in rows[1:]:
        assert 0.35 < row.throughput_ratio < 0.65
