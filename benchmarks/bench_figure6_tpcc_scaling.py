"""Figure 6 — end-to-end TPC-C throughput scaling (scale-out vs scale-up)."""

from repro.experiments import format_figure6, run_figure6


def test_figure6_tpcc_scaling(benchmark):
    def run_both():
        fixed_total = run_figure6(machine_counts=(1, 2, 4, 8), num_transactions=200)
        per_machine = run_figure6(
            machine_counts=(1, 2, 4, 8), warehouses_per_machine=16, num_transactions=200
        )
        return fixed_total, per_machine

    fixed_total, per_machine = benchmark.pedantic(run_both, iterations=1, rounds=1)
    print()
    print(format_figure6(fixed_total, per_machine))
    # Paper shape: 16 warehouses total caps out well below linear (4.7x at 8
    # machines in the paper), 16 warehouses per machine is nearly linear (7.7x).
    assert 3.0 < fixed_total[-1].speedup < 6.0
    assert 6.5 < per_machine[-1].speedup < 8.5
    assert per_machine[-1].speedup > fixed_total[-1].speedup
