#!/usr/bin/env python
"""Standalone perf-trajectory runner for the Figure-5 partitioner benchmark.

Runs the same workload as
``benchmarks/bench_figure5_partitioner_scalability.py`` without pytest and
writes ``BENCH_partitioner.json`` next to the repository root so the
partitioner's throughput (nodes/sec), cut quality and peak RSS can be
compared across PRs.  Three sections:

* the k sweep is ``run_figure5`` itself, over the shared
  ``BENCH_GRAPH_SPECS``/``BENCH_PARTITION_COUNTS`` constants;
* ``scale_sweep`` partitions the ``SCALE_GRAPH_SPEC`` graph (50k nodes) at
  the ``SCALE_PARTITION_COUNTS`` — the beyond-laptop point the array-kernel
  pipeline is sized for;
* ``single_call`` mirrors ``test_figure5_single_partition_call`` — one
  epinions-sized partition at k=8 with that test's exact options
  (``refine_passes`` left at its default, unlike the sweep's 2);
* ``telemetry_overhead`` partitions the smallest graph with null vs. enabled
  telemetry and asserts the enabled run stays within 3% — the "cheap when
  on" half of the observability layer's contract;
* ``online_adaptation`` probes the online layer: steady-state ingest
  throughput of the workload monitor and the incremental graph maintainer
  (transactions/sec and tuple-accesses, i.e. nodes, per second), plus the
  latency of a budgeted re-partition vs. a from-scratch one on the same
  maintained graph, plus a replication-aware re-partition over the
  star-expanded graph (read-hot candidate selection + expansion + budgeted
  refinement) with the replica counts it produced;
* ``plan_io`` times ``PartitionPlan`` serialisation (dumps/loads/save and
  file size of the deployment artifact written by ``python -m repro run``)
  and asserts both byte-determinism invariants: load-then-dump round-trips
  exactly, and the streaming ``save()`` writer emits the exact ``dumps()``
  bytes;
* ``resilience`` runs the crash-safe-migration chaos scenario (elastic
  2 -> 4 resize under TPC-C load with a node crash, message faults, and two
  coordinator kills resumed from the journal) and raises on any lost
  update, unreachable tuple, or determinism violation.

Every result row records ``peak_rss_kb`` — the process-wide peak resident
set size observed *by the time that row finished* (Linux ``ru_maxrss``
semantics: the counter is monotone, so a row's value bounds the memory its
measurement needed).  The active array backend is recorded at the top level.

``--compare`` diffs a fresh run against a committed report (default:
``BENCH_partitioner.json`` at the repo root) and prints per-row speedup and
cut deltas.  ``--smoke`` runs only the smallest graph's sweep — a
seconds-long CI canary for kernel crashes, not a measurement.

Invocation (documented in ROADMAP.md):

    PYTHONPATH=src python benchmarks/run_bench.py [--repeats N] [--output PATH]
                                                  [--compare [BASELINE]] [--smoke]
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.figure5 import (  # noqa: E402
    BENCH_GRAPH_SPECS,
    BENCH_PARTITION_COUNTS,
    SCALE_GRAPH_SPEC,
    SCALE_PARTITION_COUNTS,
    run_figure5,
    synthetic_access_graph,
)
from repro.graph import backend  # noqa: E402
from repro.graph.partitioner import (  # noqa: E402
    PartitionerOptions,
    cut_weight,
    partition_graph,
)


def _peak_rss_kb() -> int:
    """Peak resident set size of this process in kilobytes (Linux semantics)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def run_online_adaptation(repeats: int) -> dict:
    """Benchmark the online layer: ingest throughput + re-partition latency."""
    from repro.catalog.tuples import TupleId
    from repro.core.strategies import LookupTablePartitioning
    from repro.graph.assignment import PartitionAssignment
    from repro.online.maintainer import IncrementalGraphMaintainer, MaintainerOptions
    from repro.online.monitor import MonitorOptions, WorkloadMonitor
    from repro.online.repartitioner import (
        BudgetedRepartitioner,
        RepartitionOptions,
        repartition_from_scratch,
    )
    from repro.workload.rwsets import extract_access_trace
    from repro.workloads.drifting import generate_rotating_hotspot

    num_partitions = 8
    bundle = generate_rotating_hotspot(
        num_rows=6000,
        transactions_per_phase=3000,
        num_phases=2,
        hot_window=1500,
        uniform_fraction=0.2,
        seed=0,
    )
    traces = [
        extract_access_trace(bundle.database, phase) for phase in bundle.phases
    ]
    accesses = [access for trace in traces for access in trace]
    tuple_accesses = sum(len(access.touched) for access in accesses)

    # Deployed placement for the monitor's routing attribution: hash-like.
    assignment = PartitionAssignment(num_partitions)
    for key in range(6000):
        assignment.assign(TupleId("usertable", (key,)), {key % num_partitions})
    strategy = LookupTablePartitioning(num_partitions, assignment, "hash")

    monitor_seconds = float("inf")
    for _ in range(repeats):
        monitor = WorkloadMonitor(MonitorOptions(window_size=1000), strategy)
        start = time.perf_counter()
        for batch_start in range(0, len(accesses), 200):
            monitor.ingest_batch(accesses[batch_start : batch_start + 200])
        monitor_seconds = min(monitor_seconds, time.perf_counter() - start)

    maintainer_seconds = float("inf")
    maintainer = None
    for _ in range(repeats):
        maintainer = IncrementalGraphMaintainer(MaintainerOptions())
        start = time.perf_counter()
        for batch_start in range(0, len(accesses), 200):
            maintainer.apply_batch(accesses[batch_start : batch_start + 200])
        maintainer_seconds = min(maintainer_seconds, time.perf_counter() - start)

    csr, tuples = maintainer.freeze()
    warm = [min(strategy.partitions_for_tuple(tuple_id)) for tuple_id in tuples]
    budgeted_seconds = float("inf")
    budgeted = None
    for _ in range(repeats):
        repartitioner = BudgetedRepartitioner(
            RepartitionOptions(migration_cost_weight=0.25, imbalance=0.10)
        )
        start = time.perf_counter()
        budgeted = repartitioner.repartition(csr, warm, num_partitions)
        budgeted_seconds = min(budgeted_seconds, time.perf_counter() - start)

    full_seconds = float("inf")
    full = None
    for _ in range(repeats):
        start = time.perf_counter()
        full = repartition_from_scratch(csr, warm, num_partitions)
        full_seconds = min(full_seconds, time.perf_counter() - start)

    # Replication-aware probe: candidate selection + star expansion +
    # budgeted replica-set refinement, timed end to end (what one
    # replication-aware adaptation pays on top of the plain freeze).
    placements = [frozenset({part}) for part in warm]
    replicated_seconds = float("inf")
    replicated = None
    for _ in range(repeats):
        start = time.perf_counter()
        candidates = maintainer.replication_candidates(
            min_read_fraction=0.85, max_candidates=64, min_weight=2.0
        )
        expanded, _tuples, star = maintainer.freeze_replicated(candidates, warm)
        repartitioner = BudgetedRepartitioner(
            RepartitionOptions(migration_cost_weight=0.25, imbalance=0.10)
        )
        replicated = repartitioner.repartition_replicated(
            expanded, star, placements, num_partitions
        )
        replicated_seconds = min(replicated_seconds, time.perf_counter() - start)

    section = {
        "transactions": len(accesses),
        "tuple_accesses": tuple_accesses,
        "monitor_ingest": {
            "seconds": round(monitor_seconds, 6),
            "transactions_per_sec": round(len(accesses) / monitor_seconds, 1),
            "nodes_per_sec": round(tuple_accesses / monitor_seconds, 1),
        },
        "maintainer_ingest": {
            "seconds": round(maintainer_seconds, 6),
            "transactions_per_sec": round(len(accesses) / maintainer_seconds, 1),
            "nodes_per_sec": round(tuple_accesses / maintainer_seconds, 1),
        },
        "graph": {"nodes": csr.num_nodes, "edges": csr.num_edges},
        "budgeted_repartition": {
            "seconds": round(budgeted_seconds, 6),
            "moved": budgeted.num_moved,
            "cut_before": round(budgeted.cut_before, 1),
            "cut_after": round(budgeted.cut_after, 1),
        },
        "full_repartition": {
            "seconds": round(full_seconds, 6),
            "moved": full.num_moved,
            "cut_after": round(full.cut_after, 1),
        },
        "replicated_repartition": {
            "seconds": round(replicated_seconds, 6),
            "changed": replicated.num_changed,
            "replicated": replicated.replicated_count,
            "replica_copies": replicated.replica_copies,
            "cut_after": round(replicated.cut_after, 1),
        },
    }
    print(
        f"online: monitor {section['monitor_ingest']['nodes_per_sec']:.0f} nodes/s, "
        f"maintainer {section['maintainer_ingest']['nodes_per_sec']:.0f} nodes/s, "
        f"budgeted repartition {budgeted_seconds:.3f}s (moved {budgeted.num_moved}), "
        f"full {full_seconds:.3f}s (moved {full.num_moved}), "
        f"replication-aware {replicated_seconds:.3f}s "
        f"({replicated.replicated_count} replicated)"
    )
    return section


def run_telemetry_overhead(repeats: int) -> dict:
    """Measure the cost of enabled telemetry on the partitioner hot path.

    Partitions the smallest benchmark graph with the default null telemetry
    and again with a live registry + tracer installed, best-of-``repeats``
    each.  The instrumentation contract is "near-zero when off, cheap when
    on": the probe raises if the enabled run is more than 3% slower, so a
    future instrument added inside a per-node loop fails the bench instead
    of silently taxing every run.
    """
    from repro.obs import NULL_TELEMETRY, Telemetry, use_telemetry

    name, num_nodes, num_edges = BENCH_GRAPH_SPECS[0]
    num_parts = 8
    graph = synthetic_access_graph(num_nodes, num_edges, seed=0)
    frozen = graph.freeze()
    options = PartitionerOptions(seed=0, initial_trials=4, refine_passes=2)
    repeats = max(repeats, 5)

    def timed(telemetry) -> float:
        with use_telemetry(telemetry):
            start = time.perf_counter()
            partition_graph(frozen, num_parts, options)
            return time.perf_counter() - start

    def measure() -> tuple[float, float]:
        # Interleave the two variants so background load drifts both
        # equally; best-of then cancels the noise instead of baking it
        # into one side.
        enabled_telemetry = Telemetry.create(seed=0)
        timed(NULL_TELEMETRY), timed(enabled_telemetry)  # warm caches
        base = enabled = float("inf")
        for _ in range(repeats):
            base = min(base, timed(NULL_TELEMETRY))
            enabled = min(enabled, timed(enabled_telemetry))
        return base, enabled

    # Scheduler interference is one-sided (it only ever adds time), so a
    # single over-budget reading is retried and the *least* observed
    # overhead gates: a real regression is deterministic and fails every
    # attempt, while a noise spike has to recur three times to fail.
    base_seconds, enabled_seconds = measure()
    overhead = enabled_seconds / base_seconds - 1.0
    for _ in range(2):
        if overhead <= 0.03:
            break
        base, enabled = measure()
        if enabled / base - 1.0 < overhead:
            base_seconds, enabled_seconds = base, enabled
            overhead = enabled / base - 1.0
    section = {
        "graph": name,
        "nodes": num_nodes,
        "num_partitions": num_parts,
        "repeats": repeats,
        "base_seconds": round(base_seconds, 6),
        "enabled_seconds": round(enabled_seconds, 6),
        "base_nodes_per_sec": round(num_nodes / base_seconds, 1),
        "enabled_nodes_per_sec": round(num_nodes / enabled_seconds, 1),
        "overhead_fraction": round(overhead, 4),
    }
    print(
        f"telemetry overhead: base {base_seconds:.3f}s, "
        f"enabled {enabled_seconds:.3f}s ({overhead:+.1%})"
    )
    if overhead > 0.03:
        raise RuntimeError(
            f"enabled telemetry costs {overhead:.1%} on the partitioner hot "
            "path (budget 3%) — an instrument is sitting inside a tight loop"
        )
    return section


def run_scale_sweep(repeats: int) -> list[dict]:
    """Partition the 50k-node scale graph, best-of-``repeats`` per k."""
    name, num_nodes, num_edges = SCALE_GRAPH_SPEC
    best: dict[int, dict] = {}
    for _ in range(repeats):
        graph = synthetic_access_graph(num_nodes, num_edges, seed=0)
        frozen = graph.freeze()
        for num_parts in SCALE_PARTITION_COUNTS:
            options = PartitionerOptions(seed=0, initial_trials=4, refine_passes=2)
            start = time.perf_counter()
            assignment = partition_graph(frozen, num_parts, options)
            seconds = time.perf_counter() - start
            entry = best.get(num_parts)
            if entry is None or seconds < entry["seconds"]:
                best[num_parts] = {
                    "graph": name,
                    "nodes": num_nodes,
                    "edges": graph.num_edges,
                    "num_partitions": num_parts,
                    "seconds": round(seconds, 6),
                    "nodes_per_sec": round(num_nodes / seconds, 1),
                    "cut_weight": cut_weight(frozen, assignment),
                    "peak_rss_kb": _peak_rss_kb(),
                }
    rows = list(best.values())
    for entry in rows:
        print(
            f"{entry['graph']:>11} k={entry['num_partitions']:<3} {entry['seconds']:8.3f}s "
            f"{entry['nodes_per_sec']:>10.0f} nodes/s  cut={entry['cut_weight']:.0f}"
        )
    return rows


def run_plan_io(repeats: int) -> dict:
    """Benchmark PartitionPlan serialisation: dumps/loads latency and size.

    The plan file is the deployment artifact (``python -m repro run/deploy``),
    so its round-trip cost is part of the operational surface.  The probe
    also asserts the byte-determinism invariant (re-save == save).
    """
    from repro.pipeline import PartitionPlan, Pipeline, SchismOptions
    from repro.workloads import generate_epinions, EpinionsConfig

    import tempfile

    repeats = max(1, repeats)
    bundle = generate_epinions(
        EpinionsConfig(num_users=300, num_items=300, num_communities=10, seed=0),
        num_transactions=3000,
    )
    pipeline_run = Pipeline(SchismOptions(num_partitions=4)).run(
        bundle.database, bundle.workload
    )
    plan = pipeline_run.plan(workload=bundle.name)
    dump_seconds = float("inf")
    load_seconds = float("inf")
    save_seconds = float("inf")
    text = plan.dumps()
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "plan.json"
        for _ in range(repeats):
            start = time.perf_counter()
            text = plan.dumps()
            dump_seconds = min(dump_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            reloaded = PartitionPlan.loads(text)
            load_seconds = min(load_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            plan.save(target)
            save_seconds = min(save_seconds, time.perf_counter() - start)
        saved_bytes = target.read_text(encoding="utf-8")
    if reloaded.dumps() != text:  # explicit so `python -O` still enforces it
        raise RuntimeError("plan round-trip is not byte-identical")
    if saved_bytes != text:
        # The streaming file writer must emit the exact dumps() bytes —
        # plans on disk and plans over the wire fingerprint identically.
        raise RuntimeError("streaming save() is not byte-identical to dumps()")
    section = {
        "placements": len(plan),
        "bytes": len(text.encode("utf-8")),
        "dump_seconds": round(dump_seconds, 6),
        "load_seconds": round(load_seconds, 6),
        "save_seconds": round(save_seconds, 6),
        "placements_per_sec_dump": round(len(plan) / dump_seconds, 1),
        "placements_per_sec_load": round(len(plan) / load_seconds, 1),
        "fingerprint": plan.content_fingerprint(),
        "peak_rss_kb": _peak_rss_kb(),
    }
    print(
        f"plan io: {section['placements']} placements, {section['bytes']} bytes, "
        f"dump {dump_seconds * 1e3:.1f}ms, load {load_seconds * 1e3:.1f}ms, "
        f"save {save_seconds * 1e3:.1f}ms"
    )
    return section


def run_resilience_probe(seed: int = 0) -> dict:
    """Run the crash-safe-migration scenario and fail hard on any violation.

    The chaos canary: an elastic 2 -> 4 resize under TPC-C load with a node
    crash, message faults, and two coordinator kills (resumed from the
    journal).  Zero lost updates / unreachable tuples and byte-determinism
    are hard invariants — a regression here means the migration journal or
    the dual-write window lost data, so the probe raises instead of merely
    reporting.
    """
    from repro.experiments.resilience import format_resilience, run_resilience

    start = time.perf_counter()
    report = run_resilience(seed=seed)
    seconds = time.perf_counter() - start
    print(format_resilience(report))
    if report.violations:
        raise RuntimeError(
            "resilience violations: " + "; ".join(report.violations)
        )
    return {
        "seed": report.seed,
        "seconds": round(seconds, 3),
        "transactions_committed": report.transactions_committed,
        "transactions_aborted": report.transactions_aborted,
        "coordinator_deaths": report.coordinator_deaths,
        "resumes": report.resumes,
        "journal_records": report.journal_records,
        "migration_copies": report.migration_copies,
        "migration_drops": report.migration_drops,
        "pacer_pauses": report.pacer_pauses,
        "pacer_throttles": report.pacer_throttles,
        "lost_updates": report.lost_updates,
        "unreachable_tuples": report.unreachable_tuples,
        "fingerprint": report.fingerprint,
        "peak_rss_kb": _peak_rss_kb(),
    }


def run_storage_resilience_probe(seed: int = 0) -> dict:
    """Run the real-storage chaos sweep and fail hard on any violation.

    The process-kill canary: (schism, hash) x (k=2, k=4) TPC-C deployments
    on the SQLite worker-process backend, each enduring two seeded
    ``SIGKILL``\\ s.  Zero lost committed updates, zero unreachable tuples,
    and a supervisor restart for every kill are hard invariants; wall-clock
    throughput/latency live only in the printed table, keeping the recorded
    payload deterministic.
    """
    from repro.experiments.storage_resilience import (
        format_storage_resilience,
        run_storage_resilience,
    )

    start = time.perf_counter()
    report = run_storage_resilience(seed=seed)
    seconds = time.perf_counter() - start
    print(format_storage_resilience(report))
    if report.violations:
        raise RuntimeError(
            "storage resilience violations: " + "; ".join(report.violations)
        )
    payload = report.to_payload()
    payload["seconds"] = round(seconds, 3)
    payload["peak_rss_kb"] = _peak_rss_kb()
    return payload


def run(repeats: int, smoke: bool = False) -> dict:
    """Execute the sweeps plus the probes and return the report dict."""
    repeats = max(1, repeats)
    graph_specs = BENCH_GRAPH_SPECS[:1] if smoke else BENCH_GRAPH_SPECS
    # k sweep: best-of-``repeats`` seconds per point, quality from the last run
    # (assignments are seed-deterministic, so every run cuts identically).
    best: dict[tuple[str, int], dict] = {}
    for _ in range(repeats):
        for row in run_figure5(BENCH_PARTITION_COUNTS, graph_specs):
            key = (row.graph_name, row.num_partitions)
            entry = best.get(key)
            if entry is None or row.seconds < entry["seconds"]:
                best[key] = {
                    "graph": row.graph_name,
                    "nodes": row.num_nodes,
                    "edges": row.num_edges,
                    "num_partitions": row.num_partitions,
                    "seconds": round(row.seconds, 6),
                    "nodes_per_sec": round(row.num_nodes / row.seconds, 1),
                    "cut_weight": row.cut_weight,
                    "peak_rss_kb": _peak_rss_kb(),
                }
    results = list(best.values())
    for entry in results:
        print(
            f"{entry['graph']:>10} k={entry['num_partitions']:<3} {entry['seconds']:8.3f}s "
            f"{entry['nodes_per_sec']:>10.0f} nodes/s  cut={entry['cut_weight']:.0f}"
        )

    report = {
        "benchmark": "figure5_partitioner_scalability",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "array_backend": backend.array_backend(),
        "repeats": repeats,
        "results": results,
    }
    if smoke:
        report["smoke"] = True
        report["peak_rss_kb"] = _peak_rss_kb()
        return report

    report["scale_sweep"] = run_scale_sweep(repeats)

    # Single-call probe: the exact configuration asserted by the acceptance
    # criteria (test_figure5_single_partition_call).
    name, num_nodes, num_edges = BENCH_GRAPH_SPECS[0]
    num_parts = 8
    graph = synthetic_access_graph(num_nodes, num_edges, seed=0)
    options = PartitionerOptions(seed=0, initial_trials=4)
    seconds = float("inf")
    assignment: list[int] = []
    for _ in range(repeats):
        start = time.perf_counter()
        # The mutable graph is passed (as in the pytest benchmark) so the
        # timed region includes the freeze() cost of the auto-freeze path.
        assignment = partition_graph(graph, num_parts, options)
        seconds = min(seconds, time.perf_counter() - start)
    single_call = {
        "graph": name,
        "nodes": num_nodes,
        "edges": num_edges,
        "num_partitions": num_parts,
        "seconds": round(seconds, 6),
        "nodes_per_sec": round(num_nodes / seconds, 1),
        "cut_weight": cut_weight(graph, assignment),
        "peak_rss_kb": _peak_rss_kb(),
    }
    print(
        f"single-call {name} k={num_parts}: {seconds:.3f}s "
        f"({num_nodes / seconds:.0f} nodes/s, cut={single_call['cut_weight']:.0f})"
    )

    report["single_call"] = single_call
    report["telemetry_overhead"] = run_telemetry_overhead(repeats)
    report["online_adaptation"] = run_online_adaptation(repeats)
    report["plan_io"] = run_plan_io(repeats)
    report["resilience"] = run_resilience_probe()
    report["storage_resilience"] = run_storage_resilience_probe()
    report["peak_rss_kb"] = _peak_rss_kb()
    return report


def compare_reports(fresh: dict, baseline: dict) -> None:
    """Print per-row speedup and cut deltas of ``fresh`` vs ``baseline``."""

    def rows_by_key(report: dict) -> dict[tuple[str, int], dict]:
        rows = {
            (row["graph"], row["num_partitions"]): row
            for row in report.get("results", [])
        }
        for row in report.get("scale_sweep", []):
            rows[(row["graph"], row["num_partitions"])] = row
        single = report.get("single_call")
        if single:
            rows[("single-call:" + single["graph"], single["num_partitions"])] = single
        return rows

    fresh_rows = rows_by_key(fresh)
    base_rows = rows_by_key(baseline)
    print(f"\ncomparison vs baseline ({baseline.get('python', '?')}, "
          f"{baseline.get('array_backend', 'list')} backend):")
    header = (
        f"{'row':>22} {'base s':>9} {'new s':>9} {'speedup':>8} "
        f"{'base cut':>10} {'new cut':>10} {'cut Δ%':>7}"
    )
    print(header)
    for key in sorted(fresh_rows, key=str):
        new = fresh_rows[key]
        old = base_rows.get(key)
        label = f"{key[0]} k={key[1]}"
        if old is None:
            print(f"{label:>22} {'—':>9} {new['seconds']:9.3f} {'new':>8}")
            continue
        speedup = old["seconds"] / new["seconds"] if new["seconds"] else float("inf")
        cut_delta = (
            (new["cut_weight"] - old["cut_weight"]) / old["cut_weight"] * 100.0
            if old["cut_weight"]
            else 0.0
        )
        print(
            f"{label:>22} {old['seconds']:9.3f} {new['seconds']:9.3f} {speedup:7.2f}x "
            f"{old['cut_weight']:10.0f} {new['cut_weight']:10.0f} {cut_delta:+6.1f}%"
        )
    for key in sorted(base_rows, key=str):
        if key not in fresh_rows:
            print(f"{key[0]} k={key[1]:>3}: missing from fresh run")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats per point (best-of)")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_partitioner.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smallest graph only, no online/scale sections (CI crash canary)",
    )
    parser.add_argument(
        "--compare",
        nargs="?",
        type=Path,
        const=REPO_ROOT / "BENCH_partitioner.json",
        default=None,
        metavar="BASELINE",
        help="diff the fresh run against a committed report "
        "(default baseline: BENCH_partitioner.json at the repo root)",
    )
    args = parser.parse_args()
    baseline = None
    if args.compare is not None:
        baseline = json.loads(args.compare.read_text())
    report = run(args.repeats, smoke=args.smoke)
    if baseline is not None:
        compare_reports(report, baseline)
        print(f"not overwriting {args.output} in --compare mode")
    else:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output} (peak RSS {report['peak_rss_kb']} kB)")


if __name__ == "__main__":
    main()
