"""Figure 4 — distributed-transaction fraction of Schism vs baselines, 9 workloads."""

import pytest

from repro.experiments import FIGURE4_EXPERIMENTS, format_figure4, run_figure4_experiment

_SCALE = 0.5  # laptop-scale; raise toward 1.0+ to approach paper sizes


@pytest.mark.parametrize(
    "experiment", FIGURE4_EXPERIMENTS, ids=[e.key for e in FIGURE4_EXPERIMENTS]
)
def test_figure4_experiment(benchmark, experiment):
    row, _result = benchmark.pedantic(
        run_figure4_experiment, args=(experiment,), kwargs={"scale": _SCALE, "seed": 0},
        iterations=1, rounds=1,
    )
    print()
    print(format_figure4([row]))
    # Qualitative shape: Schism's selected strategy never loses badly to the
    # primary-key hashing baseline, and the validation picks an expected kind.
    assert row.schism_selected <= row.hashing + 0.05
    if experiment.expected_recommendation:
        assert row.recommendation in experiment.expected_recommendation
    # Where the paper has a manual baseline, Schism's best fine-grained
    # candidate (lookup table or range predicates) is within a few points of
    # it (matching TPC-C / YCSB) or better (Epinions).
    if row.manual is not None:
        best_schism = min(
            value
            for value in (row.schism_selected, row.schism_lookup, row.schism_range)
            if value is not None
        )
        assert best_schism <= row.manual + 0.15
