"""Table 1 — sizes of the tuple-access graphs for the three large workloads."""

from repro.experiments import format_table1, run_table1


def test_table1_graph_sizes(benchmark):
    rows = benchmark.pedantic(run_table1, kwargs={"scale": 0.5}, iterations=1, rounds=1)
    print()
    print(format_table1(rows))
    by_name = {row.dataset: row for row in rows}
    # Paper shape: the TPC-C 50W graph is by far the largest of the three
    # (65M edges in Table 1), and every graph has at least as many nodes as
    # represented tuples (replication stars only ever add nodes).
    assert by_name["tpcc-50w"].graph_edges == max(row.graph_edges for row in rows)
    assert by_name["tpcc-50w"].database_tuples == max(row.database_tuples for row in rows)
    for row in rows:
        assert row.graph_nodes >= row.graph_tuples > 0
        # The graphs stay dense: several edges per node, as in the paper.
        assert row.graph_edges > row.graph_nodes
