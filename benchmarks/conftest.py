"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows, so running ``pytest benchmarks/ --benchmark-only -s``
reproduces the evaluation section end to end (at laptop scale).
"""
