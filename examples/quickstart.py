"""Quickstart: partition a small TPC-C database with Schism.

Run with::

    python examples/quickstart.py

The script generates a 2-warehouse TPC-C instance, runs the full Schism
pipeline (graph construction, min-cut partitioning, decision-tree
explanation, final validation) and prints the recommended strategy together
with the range predicates it found — which should be the classic
"partition by warehouse, replicate the item table" design.
"""

from repro import Schism, SchismOptions, evaluate_strategy, split_workload
from repro.workloads import TpccConfig, generate_tpcc


def main() -> None:
    config = TpccConfig(
        warehouses=2,
        districts_per_warehouse=4,
        customers_per_district=20,
        items=100,
    )
    bundle = generate_tpcc(config, num_transactions=600)
    print(f"generated {bundle.name}: {bundle.database.row_count()} tuples, "
          f"{len(bundle.workload)} transactions")

    training, test = split_workload(bundle.workload, train_fraction=0.7)
    options = SchismOptions(num_partitions=2, hash_columns=bundle.hash_columns)
    result = Schism(options).run(bundle.database, training, test)

    print()
    print(result.describe())
    print()
    print("range predicates discovered by the explanation phase:")
    print(result.explanation.describe())

    manual = bundle.manual_strategy(2)
    if manual is not None:
        report = evaluate_strategy(manual, result.test_trace, bundle.database)
        print()
        print(f"manual (by-warehouse) baseline: {report.distributed_fraction:.1%} distributed")
        print(f"schism selected {result.recommendation}: "
              f"{result.distributed_fraction():.1%} distributed")


if __name__ == "__main__":
    main()
