"""Quickstart: partition a small TPC-C database with the staged pipeline.

Run with::

    python examples/quickstart.py

The script generates a 2-warehouse TPC-C instance, runs the staged pipeline
(extract -> build_graph -> partition -> explain -> validate), and produces a
:class:`~repro.pipeline.plan.PartitionPlan` — the durable artifact holding
the per-tuple replica sets, the discovered range predicates, the winning
strategy (the classic "partition by warehouse, replicate the item table"
design) and full provenance.  It then round-trips the plan through a file
and diffs it, which is exactly what the CLI does::

    python -m repro run --workload tpcc --partitions 2 --out plan.json
    python -m repro diff plan.json plan.json
"""

import tempfile
from pathlib import Path

from repro import PartitionPlan, Pipeline, SchismOptions, evaluate_strategy, split_workload
from repro.workloads import TpccConfig, generate_tpcc


def main() -> None:
    config = TpccConfig(
        warehouses=2,
        districts_per_warehouse=4,
        customers_per_district=20,
        items=100,
    )
    bundle = generate_tpcc(config, num_transactions=600)
    print(f"generated {bundle.name}: {bundle.database.row_count()} tuples, "
          f"{len(bundle.workload)} transactions")

    training, test = split_workload(bundle.workload, train_fraction=0.7)
    options = SchismOptions(num_partitions=2, hash_columns=bundle.hash_columns)
    run = Pipeline(options).run(bundle.database, training, test)
    plan = run.plan(workload=bundle.name)

    print()
    print(plan.describe())
    print()
    print("range predicates discovered by the explanation phase:")
    print(run.state.explanation.describe())

    # The plan is the durable artifact: save, reload, verify nothing changed.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "plan.json"
        plan.save(path)
        reloaded = PartitionPlan.load(path)
        print()
        print(f"saved plan to {path.name} ({path.stat().st_size} bytes); "
              f"diff vs reloaded: {plan.diff(reloaded).describe()}")

    manual = bundle.manual_strategy(2)
    if manual is not None:
        report = evaluate_strategy(manual, run.state.test_trace, bundle.database)
        print()
        print(f"manual (by-warehouse) baseline: {report.distributed_fraction:.1%} distributed")
        print(f"schism selected {plan.recommendation}: "
              f"{plan.provenance.metrics['distributed_fraction']:.1%} distributed")


if __name__ == "__main__":
    main()
