"""Scaling out TPC-C on a simulated shared-nothing cluster.

This example ties the whole system together: the pipeline produces a
:class:`~repro.pipeline.plan.PartitionPlan` for TPC-C, the cluster
materialises the plan physically, the router + two-phase-commit coordinator
execute the workload against the partitions, and the throughput simulator
projects the Figure 6 scaling curves.

Run with::

    python examples/scaling_out_tpcc.py
"""

from repro import Pipeline, SchismOptions, split_workload
from repro.distributed import Cluster, ThroughputSimulator, TwoPhaseCommitCoordinator
from repro.experiments import format_figure6, run_figure6
from repro.routing import Router
from repro.workloads import TpccConfig, generate_tpcc


def main() -> None:
    # 1. Derive the partitioning plan with the pipeline.
    config = TpccConfig(warehouses=4, districts_per_warehouse=3, customers_per_district=15, items=80)
    bundle = generate_tpcc(config, num_transactions=500)
    training, test = split_workload(bundle.workload, train_fraction=0.7)
    run = Pipeline(SchismOptions(num_partitions=4)).run(bundle.database, training, test)
    plan = run.plan(workload=bundle.name)
    print(f"schism selected {plan.recommendation} "
          f"({plan.provenance.metrics['distributed_fraction']:.1%} distributed transactions)")

    # 2. Materialise a 4-node cluster from the plan's winning strategy and
    #    run the test workload through the router and the two-phase-commit
    #    coordinator (one strategy object, shared by cluster and router).
    fresh_bundle = generate_tpcc(config, num_transactions=200, name="tpcc-online")
    strategy = plan.build_strategy()
    cluster = Cluster.from_database(fresh_bundle.database, strategy)
    router = Router(strategy, schema=fresh_bundle.database.schema)
    coordinator = TwoPhaseCommitCoordinator(cluster, router)
    coordinator.execute_workload(fresh_bundle.workload)
    stats = coordinator.statistics
    print(f"cluster row counts: {cluster.row_counts()} (imbalance {cluster.imbalance():.2f})")
    print(f"executed {stats.transactions} transactions: "
          f"{stats.distributed_fraction:.1%} distributed, "
          f"{stats.mean_messages:.1f} messages/transaction")

    # 3. Project end-to-end throughput for the two Figure 6 configurations.
    print()
    fixed_total = run_figure6(num_transactions=200)
    per_machine = run_figure6(warehouses_per_machine=16, num_transactions=200)
    print(format_figure6(fixed_total, per_machine))

    # 4. A single what-if: how much throughput does hash partitioning leave
    #    on the table?  (The paper estimates 99% distributed transactions.)
    simulator = ThroughputSimulator()
    good = simulator.simulate_tpcc(8, 128, distributed_fraction=0.10)
    bad = simulator.simulate_tpcc(8, 128, distributed_fraction=0.99)
    print()
    print(f"8 machines with Schism partitioning: {good.throughput_tps:.0f} tps")
    print(f"8 machines with naive hash partitioning: {bad.throughput_tps:.0f} tps")


if __name__ == "__main__":
    main()
