"""Partitioning a social-network workload (Epinions.com).

Social-network schemas contain n-to-n relationships (user reviews of items,
trust edges between users) that defeat schema-driven partitioning.  This
example shows the pipeline discovering the latent community structure at the
tuple level and beating the best manual design (hash items+reviews together,
replicate users and trust), reproducing the paper's headline Epinions result
— then deploys the resulting plan as a live controller and exports the live
placement back as a plan, closing the offline -> online -> artifact loop.

Run with::

    python examples/social_network_partitioning.py
"""

from repro import Pipeline, SchismOptions, evaluate_strategy, split_workload, start_online
from repro.routing import build_lookup_table
from repro.workloads import EpinionsConfig, generate_epinions


def main() -> None:
    config = EpinionsConfig(num_users=300, num_items=300, num_communities=10)
    bundle = generate_epinions(config, num_transactions=3000)
    print(f"generated {bundle.name}: {bundle.database.row_count()} tuples "
          f"({config.num_users} users, {config.num_items} items, "
          f"{config.num_communities} hidden communities)")

    training, test = split_workload(bundle.workload, train_fraction=0.7)
    run = Pipeline(SchismOptions(num_partitions=2)).run(bundle.database, training, test)
    plan = run.plan(workload=bundle.name)

    print()
    print(plan.describe())

    manual = bundle.manual_strategy(2)
    manual_report = evaluate_strategy(manual, run.state.test_trace, bundle.database)
    schism_fraction = plan.provenance.metrics["candidate_fractions"]["lookup-table"]
    print()
    print(f"manual partitioning (items+reviews hashed, users+trust replicated): "
          f"{manual_report.distributed_fraction:.1%} distributed transactions")
    print(f"schism lookup-table partitioning: {schism_fraction:.1%} distributed transactions")
    if manual_report.distributed_fraction > 0:
        improvement = 1.0 - schism_fraction / manual_report.distributed_fraction
        print(f"improvement over manual: {improvement:.0%}")

    # The fine-grained placement can be served from different lookup-table
    # backends; compare their memory footprints.  The bit-array backend only
    # supports single-integer keys, so it cannot hold the composite-key trust
    # table and is skipped here.
    assignment = plan.to_assignment()
    print()
    print("lookup-table backends:")
    for backend in ("dict", "bitarray", "bloom"):
        try:
            table = build_lookup_table(assignment, backend=backend)
        except TypeError as error:
            print(f"  {backend:>9}: not applicable ({error})")
            continue
        print(f"  {backend:>9}: {table.memory_bytes():>9} bytes for {len(assignment)} tuples")

    # Deploy the plan live on a fresh instance and export the (unchanged)
    # placement back as a plan — what a production rollout would persist.
    fresh = generate_epinions(config, num_transactions=500, name="epinions-live")
    controller = start_online(plan, fresh.database)
    live_plan = controller.export_plan()
    print()
    print(f"deployed {controller.num_partitions} partitions live; "
          f"diff vs exported live plan: {plan.diff(live_plan).describe()}")


if __name__ == "__main__":
    main()
