"""The :class:`Pipeline` orchestrator: run, stop, inject, resume, re-run.

Typical uses::

    from repro.pipeline import Pipeline, SchismOptions

    # Whole chain, one call:
    run = Pipeline(SchismOptions(num_partitions=4)).run(database, training)
    plan = run.plan()
    plan.save("plan.json")

    # Stop after the partition stage (no explanation/validation yet):
    run = pipeline.run(database, training, stop_after="partition")

    # Inject a cached trace, then resume:
    state = pipeline.new_state(database, training, training_trace=cached_trace)
    run = pipeline.resume(state)

    # Re-run one stage with changed options on the same artifacts:
    retuned = Pipeline(new_options)
    retuned.run_stage("partition", run.state)   # invalidates explain/validate
    run = retuned.resume(run.state)             # recomputes only what is stale
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.database import Database
from repro.graph.builder import TupleGraph
from repro.obs import SECONDS_BUCKETS, Stopwatch, get_telemetry
from repro.pipeline.config import SchismOptions
from repro.pipeline.plan import PartitionPlan, build_plan
from repro.pipeline.stages import (
    STAGE_NAMES,
    STAGES,
    STAGES_BY_NAME,
    PipelineError,
    PipelineState,
    Stage,
)
from repro.workload.rwsets import AccessTrace
from repro.workload.trace import Workload


class Pipeline:
    """Composable, resumable staged pipeline over one options bundle.

    The pipeline holds the *configuration*; a :class:`PipelineState` holds
    the *artifacts*.  Keeping them separate is what makes "re-run one stage
    with changed options" a first-class operation: build a new ``Pipeline``
    with the new options and point it at the old state.
    """

    def __init__(self, options: SchismOptions) -> None:
        self.options = options

    # -- state construction -----------------------------------------------------------
    def new_state(
        self,
        database: Database,
        training_workload: Workload | None = None,
        test_workload: Workload | None = None,
        *,
        training_trace: AccessTrace | None = None,
        test_trace: AccessTrace | None = None,
        tuple_graph: TupleGraph | None = None,
    ) -> PipelineState:
        """A fresh state, optionally pre-seeded with cached artifacts.

        A stage whose outputs are already present is skipped by
        :meth:`resume` — injecting ``training_trace`` skips extraction,
        injecting ``tuple_graph`` skips graph construction, and so on.
        """
        return PipelineState(
            database=database,
            training_workload=training_workload,
            test_workload=test_workload,
            training_trace=training_trace,
            test_trace=test_trace,
            tuple_graph=tuple_graph,
        )

    # -- execution --------------------------------------------------------------------
    def run(
        self,
        database: Database,
        training_workload: Workload | None = None,
        test_workload: Workload | None = None,
        *,
        stop_after: str | None = None,
        training_trace: AccessTrace | None = None,
        test_trace: AccessTrace | None = None,
        tuple_graph: TupleGraph | None = None,
    ) -> "PipelineRun":
        """Run the chain from scratch (``stop_after`` names the last stage)."""
        state = self.new_state(
            database,
            training_workload,
            test_workload,
            training_trace=training_trace,
            test_trace=test_trace,
            tuple_graph=tuple_graph,
        )
        return self.resume(state, stop_after=stop_after)

    def resume(
        self, state: PipelineState, *, stop_after: str | None = None
    ) -> "PipelineRun":
        """Run every stage whose outputs are missing, in order.

        Stages satisfied by injected (or previously computed) artifacts are
        skipped; execution stops after ``stop_after`` when given.
        """
        if stop_after is not None and stop_after not in STAGES_BY_NAME:
            raise ValueError(
                f"unknown stage {stop_after!r}; expected one of {STAGE_NAMES}"
            )
        for stage in STAGES:
            if not stage.satisfied_by(state):
                self._execute(stage, state)
            if stage.name == stop_after:
                break
        return PipelineRun(self.options, state)

    def run_stage(self, name: str, state: PipelineState) -> PipelineState:
        """Force one stage to (re-)run, invalidating everything downstream.

        This is the "re-run a single stage with changed options" entry
        point: downstream artifacts are stale by construction, so they are
        cleared; a subsequent :meth:`resume` recomputes only those.
        """
        if name not in STAGES_BY_NAME:
            raise ValueError(f"unknown stage {name!r}; expected one of {STAGE_NAMES}")
        self._invalidate_downstream(state, name)
        self._execute(STAGES_BY_NAME[name], state)
        return state

    # -- internals --------------------------------------------------------------------
    def _execute(self, stage: Stage, state: PipelineState) -> None:
        missing = stage.missing_inputs(state)
        if missing:
            raise PipelineError(
                f"stage {stage.name!r} is missing inputs {missing}; "
                f"run earlier stages or inject the artifacts "
                f"(present: {state.artifacts_present()})"
            )
        telemetry = get_telemetry()
        watch = Stopwatch()
        with watch, telemetry.tracer.span(f"pipeline.{stage.name}"):
            stage.runner(state, self.options)
        state.timings.record(stage.name, watch.elapsed)
        telemetry.metrics.counter(
            "pipeline.stage_runs", "pipeline stage executions", labels=("stage",)
        ).inc(stage=stage.name)
        telemetry.metrics.histogram(
            "pipeline.stage_seconds",
            "wall-clock seconds per pipeline stage",
            labels=("stage",),
            buckets=SECONDS_BUCKETS,
            volatile=True,
        ).observe(watch.elapsed, stage=stage.name)
        if stage.name not in state.completed:
            state.completed.append(stage.name)

    @staticmethod
    def _invalidate_downstream(state: PipelineState, name: str) -> None:
        index = STAGE_NAMES.index(name)
        for downstream in STAGES[index:]:
            for provided in downstream.provides:
                setattr(state, provided, None)
            if downstream.name in state.completed:
                state.completed.remove(downstream.name)


@dataclass
class PipelineRun:
    """A pipeline state plus the options that produced it."""

    options: SchismOptions
    state: PipelineState

    @property
    def complete(self) -> bool:
        """Whether every stage's outputs are present."""
        return all(stage.satisfied_by(self.state) for stage in STAGES)

    @property
    def recommendation(self) -> str:
        """Name of the strategy selected by the validation stage."""
        if self.state.validation is None:
            raise PipelineError("validation has not run yet")
        return self.state.validation.recommendation

    def plan(
        self, created_by: str = "repro.pipeline", workload: str | None = None
    ) -> PartitionPlan:
        """The run's durable :class:`PartitionPlan` artifact."""
        return build_plan(
            self.options, self.state, created_by=created_by, workload=workload
        )

    def describe(self) -> str:
        """One-paragraph progress/summary report."""
        state = self.state
        done = ", ".join(state.completed) or "nothing executed"
        lines = [f"pipeline run ({self.options.num_partitions} partitions): {done}"]
        if state.tuple_graph is not None:
            lines.append(
                f"graph: {state.tuple_graph.num_nodes} nodes, "
                f"{state.tuple_graph.num_edges} edges"
            )
        if state.graph_cut is not None:
            lines.append(f"cut weight: {state.graph_cut:.1f}")
        if state.validation is not None:
            lines.append(f"selected: {state.validation.recommendation}")
            lines.append(state.validation.describe())
        return "\n".join(lines)
