"""Configuration and timing records shared by every pipeline stage.

:class:`SchismOptions` is the one options object of the whole system: it
bundles the per-stage knob dataclasses (graph construction, partitioner,
explainer) with the cross-stage policies (default routing for unknown
tuples, validation tie-breaking).  It historically lived in
``repro.core.schism``; that module still re-exports it, so both import
paths work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explain.explainer import ExplainerOptions
from repro.graph.builder import GraphBuildOptions
from repro.graph.partitioner import PartitionerOptions


@dataclass
class SchismOptions:
    """Configuration of a Schism pipeline run."""

    num_partitions: int
    graph: GraphBuildOptions = field(default_factory=GraphBuildOptions)
    partitioner: PartitionerOptions = field(default_factory=PartitionerOptions)
    explainer: ExplainerOptions = field(default_factory=ExplainerOptions)
    #: policy for tuples missing from the lookup table: "hash", "replicate",
    #: or "auto" (replicate when the workload is read-mostly, hash otherwise).
    lookup_default_policy: str = "auto"
    #: fallback for tables without range rules: "replicate" or "hash".
    range_fallback: str = "replicate"
    #: absolute tolerance on the distributed fraction for the simplicity tie-break.
    tie_tolerance: float = 0.01
    #: relative tolerance serving the same purpose (see validate_strategies).
    relative_tie_tolerance: float = 0.10
    #: reject candidates whose per-partition load imbalance (max/mean) exceeds this.
    max_load_imbalance: float = 1.6
    #: also evaluate a hash strategy on the given columns per table (optional).
    hash_columns: dict[str, tuple[str, ...]] | None = None

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if self.lookup_default_policy not in ("hash", "replicate", "auto"):
            raise ValueError("lookup_default_policy must be 'hash', 'replicate' or 'auto'")
        if self.range_fallback not in ("replicate", "hash"):
            raise ValueError("range_fallback must be 'replicate' or 'hash'")


#: stage name (as the pipeline runner knows it) -> PhaseTimings field.
STAGE_TIMING_FIELDS: dict[str, str] = {
    "extract": "extraction",
    "build_graph": "graph_build",
    "partition": "partitioning",
    "explain": "explanation",
    "validate": "validation",
}


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each pipeline phase.

    A thin provenance view over the telemetry layer's one timing code path:
    the pipeline runner measures each stage with a
    :class:`~repro.obs.clock.Stopwatch` and deposits the reading here via
    :meth:`record` (stages no longer time themselves).
    """

    extraction: float = 0.0
    graph_build: float = 0.0
    partitioning: float = 0.0
    explanation: float = 0.0
    validation: float = 0.0

    def record(self, stage_name: str, seconds: float) -> None:
        """Store the measured seconds of one pipeline stage."""
        field_name = STAGE_TIMING_FIELDS.get(stage_name)
        if field_name is None:
            raise ValueError(f"unknown pipeline stage {stage_name!r}")
        setattr(self, field_name, seconds)

    @property
    def total(self) -> float:
        """Total pipeline time (all five phases, extraction included)."""
        return (
            self.extraction
            + self.graph_build
            + self.partitioning
            + self.explanation
            + self.validation
        )

    def as_dict(self) -> dict[str, float]:
        """Per-phase seconds plus the total, for plan provenance."""
        return {
            "extraction": self.extraction,
            "graph_build": self.graph_build,
            "partitioning": self.partitioning,
            "explanation": self.explanation,
            "validation": self.validation,
            "total": self.total,
        }
