"""The five paper phases as named, individually runnable pipeline stages.

Each :class:`Stage` declares which :class:`PipelineState` fields it needs
(``requires``) and which it fills in (``provides``).  The
:class:`~repro.pipeline.runner.Pipeline` runs stages in order, skipping any
whose outputs are already present — which is how callers inject precomputed
artifacts (a cached :class:`~repro.workload.rwsets.AccessTrace`, a prebuilt
tuple graph) or resume a partially run state.

Stage order (Section 2 of the paper)::

    extract -> build_graph -> partition -> explain -> validate
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.validation import ValidationResult, validate_strategies
from repro.core.strategies import (
    FullReplication,
    HashPartitioning,
    LookupTablePartitioning,
    PartitioningStrategy,
    RangePredicatePartitioning,
)
from repro.engine.database import Database
from repro.explain.explainer import Explainer, Explanation
from repro.graph.assignment import PartitionAssignment
from repro.graph.builder import TupleGraph, build_tuple_graph
from repro.graph.partitioner import GraphPartitioner, cut_weight
from repro.pipeline.config import PhaseTimings, SchismOptions
from repro.workload.rwsets import AccessTrace, extract_access_trace
from repro.workload.trace import Workload


class PipelineError(RuntimeError):
    """A stage was asked to run without its required inputs."""


@dataclass
class PipelineState:
    """Artifact store threaded through the stages.

    Everything a stage produces lands here; everything a stage consumes is
    read from here.  Fields left as ``None`` are artifacts not yet computed
    (or deliberately injected by the caller before running).
    """

    database: Database
    training_workload: Workload | None = None
    test_workload: Workload | None = None
    # -- artifacts, in stage order ---------------------------------------------------
    training_trace: AccessTrace | None = None
    test_trace: AccessTrace | None = None
    tuple_graph: TupleGraph | None = None
    assignment: PartitionAssignment | None = None
    graph_cut: float | None = None
    explanation: Explanation | None = None
    validation: ValidationResult | None = None
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    #: names of the stages that have actually executed (injected artifacts
    #: satisfy a stage without appearing here).
    completed: list[str] = field(default_factory=list)

    def artifacts_present(self) -> list[str]:
        """Names of the artifact fields currently filled in."""
        return [
            name
            for name in (
                "training_trace",
                "test_trace",
                "tuple_graph",
                "assignment",
                "graph_cut",
                "explanation",
                "validation",
            )
            if getattr(self, name) is not None
        ]


@dataclass(frozen=True)
class Stage:
    """One named pipeline phase with typed inputs and outputs."""

    name: str
    #: state fields that must be present before the stage can run.
    requires: tuple[str, ...]
    #: state fields the stage fills in.
    provides: tuple[str, ...]
    runner: Callable[[PipelineState, SchismOptions], None]

    def satisfied_by(self, state: PipelineState) -> bool:
        """Whether every output of this stage is already present."""
        return all(getattr(state, name) is not None for name in self.provides)

    def missing_inputs(self, state: PipelineState) -> list[str]:
        """Required state fields not yet present."""
        return [name for name in self.requires if getattr(state, name) is None]


# ---------------------------------------------------------------------------
# Stage runners
# ---------------------------------------------------------------------------
def _run_extract(state: PipelineState, options: SchismOptions) -> None:
    """Execute the workloads against the database, recording read/write sets."""
    if state.training_trace is None:
        if state.training_workload is None:
            raise PipelineError(
                "extract needs a training workload (or an injected training_trace)"
            )
        state.training_trace = extract_access_trace(
            state.database, state.training_workload
        )
    if state.test_trace is None:
        if state.test_workload is None:
            # The paper reuses the training trace for the smallest runs.
            state.test_trace = state.training_trace
        else:
            state.test_trace = extract_access_trace(
                state.database, state.test_workload
            )


def _run_build_graph(state: PipelineState, options: SchismOptions) -> None:
    """Build the tuple-access graph (sampling / coalescing / replication stars)."""
    assert state.training_trace is not None
    state.tuple_graph = build_tuple_graph(
        state.training_trace, state.database, options.graph
    )


def _run_partition(state: PipelineState, options: SchismOptions) -> None:
    """Run the multilevel min-cut partitioner and map nodes back to tuples."""
    assert state.tuple_graph is not None
    partitioner = GraphPartitioner(options.partitioner)
    # The CSR form is memoised on the TupleGraph, so a re-run of this
    # stage (e.g. with different partitioner options) reuses it.
    frozen_graph = state.tuple_graph.frozen()
    node_assignment = partitioner.partition(frozen_graph, options.num_partitions)
    state.assignment = state.tuple_graph.to_partition_assignment(
        node_assignment, options.num_partitions
    )
    state.graph_cut = cut_weight(frozen_graph, node_assignment)


def _run_explain(state: PipelineState, options: SchismOptions) -> None:
    """Train the decision tree over the WHERE attributes; extract rule sets."""
    assert state.assignment is not None
    if state.training_workload is None:
        raise PipelineError(
            "explain needs the training workload (attribute frequencies come "
            "from its statements, not from the extracted trace)"
        )
    explainer = Explainer(options.explainer)
    state.explanation = explainer.explain(
        state.assignment, state.database, state.training_workload
    )


def _run_validate(state: PipelineState, options: SchismOptions) -> None:
    """Compare the candidate strategies on the test trace and pick the winner."""
    assert state.assignment is not None
    assert state.explanation is not None
    assert state.training_trace is not None
    candidates = candidate_strategies(
        options, state.assignment, state.explanation, state.training_trace
    )
    state.validation = validate_strategies(
        candidates,
        state.test_trace,
        state.database,
        tie_tolerance=options.tie_tolerance,
        relative_tie_tolerance=options.relative_tie_tolerance,
        max_load_imbalance=options.max_load_imbalance,
    )


# ---------------------------------------------------------------------------
# Candidate construction (shared with the legacy Schism facade)
# ---------------------------------------------------------------------------
def candidate_strategies(
    options: SchismOptions,
    assignment: PartitionAssignment,
    explanation: Explanation,
    training_trace: AccessTrace,
) -> list[PartitioningStrategy]:
    """The strategies the final validation compares (Section 4.4)."""
    lookup_policy = options.lookup_default_policy
    if lookup_policy == "auto":
        lookup_policy = "replicate" if is_read_mostly(training_trace) else "hash"
    candidates: list[PartitioningStrategy] = [
        LookupTablePartitioning(options.num_partitions, assignment, lookup_policy),
        HashPartitioning(options.num_partitions),
        FullReplication(options.num_partitions),
    ]
    rule_sets = explanation.rule_sets()
    if rule_sets:
        candidates.insert(
            1,
            RangePredicatePartitioning(
                options.num_partitions, rule_sets, fallback=options.range_fallback
            ),
        )
    if options.hash_columns:
        candidates.append(
            HashPartitioning(options.num_partitions, options.hash_columns)
        )
    return candidates


def is_read_mostly(trace: AccessTrace, threshold: float = 0.1) -> bool:
    """True when fewer than ``threshold`` of tuple accesses are writes."""
    reads = 0
    writes = 0
    for access in trace:
        reads += len(access.read_set)
        writes += len(access.write_set)
    total = reads + writes
    if total == 0:
        return False
    return writes / total < threshold


#: the five stages, in execution order.
STAGES: tuple[Stage, ...] = (
    Stage(
        "extract",
        requires=(),
        provides=("training_trace", "test_trace"),
        runner=_run_extract,
    ),
    Stage(
        "build_graph",
        requires=("training_trace",),
        provides=("tuple_graph",),
        runner=_run_build_graph,
    ),
    Stage(
        "partition",
        requires=("tuple_graph",),
        provides=("assignment", "graph_cut"),
        runner=_run_partition,
    ),
    Stage(
        "explain",
        requires=("assignment",),
        provides=("explanation",),
        runner=_run_explain,
    ),
    Stage(
        "validate",
        requires=("assignment", "explanation", "training_trace", "test_trace"),
        provides=("validation",),
        runner=_run_validate,
    ),
)

STAGE_NAMES: tuple[str, ...] = tuple(stage.name for stage in STAGES)
STAGES_BY_NAME: dict[str, Stage] = {stage.name: stage for stage in STAGES}
