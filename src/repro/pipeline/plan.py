"""The serializable :class:`PartitionPlan` artifact.

A plan is the *durable* product of a pipeline run: the per-tuple replica
sets, the range-rule sets of the explanation phase, the winning strategy,
and provenance (options, phase timings, cut/validation metrics).  It is what
downstream components consume — ``start_online`` deploys one,
``Cluster.from_database`` materialises one, ``python -m repro`` reads and
writes them as files — and what two runs are compared by (:meth:`PartitionPlan.diff`).

Serialisation is versioned JSON in a canonical form: entries are sorted, so
``save -> load -> save`` is byte-identical, and two runs of the same
deterministic pipeline (any array backend) produce placements with the same
:meth:`~PartitionPlan.content_fingerprint`.

>>> from repro.catalog.tuples import TupleId
>>> plan = PartitionPlan(2, {TupleId("users", (1,)): frozenset({0}),
...                          TupleId("users", (2,)): frozenset({0, 1})})
>>> reloaded = PartitionPlan.loads(plan.dumps())
>>> reloaded.dumps() == plan.dumps()
True
>>> plan.diff(reloaded).identical
True
>>> moved = PartitionPlan(2, {TupleId("users", (1,)): frozenset({1}),
...                           TupleId("users", (2,)): frozenset({0, 1})})
>>> diff = plan.diff(moved)
>>> diff.tuples_moved, diff.identical
(1, False)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.catalog.tuples import TupleId
from repro.core.strategies import (
    FullReplication,
    HashPartitioning,
    LookupTablePartitioning,
    PartitioningStrategy,
    RangePredicatePartitioning,
)
from repro.explain.rules import RuleSet, rule_set_from_payload, rule_set_to_payload
from repro.graph.assignment import PartitionAssignment
from repro.utils.canonical_json import dumps_canonical, write_canonical

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.config import SchismOptions
    from repro.pipeline.stages import PipelineState

#: on-disk format marker and version; bump the version on breaking changes.
PLAN_FORMAT = "repro-partition-plan"
PLAN_FORMAT_VERSION = 1

#: strategies a plan can name as its winner and rebuild.
KNOWN_STRATEGIES = (
    "lookup-table",
    "range-predicates",
    "hashing",
    "attribute-hashing",
    "replication",
)

_SCALAR_TYPES = (bool, int, float, str, type(None))


class PlanFormatError(ValueError):
    """A plan file (or payload) is not something this version can read."""


def _check_scalar(value: object, context: str) -> object:
    if not isinstance(value, _SCALAR_TYPES):
        raise TypeError(
            f"{context}: cannot serialise {type(value).__name__} value {value!r}; "
            "plan keys and rule values must be JSON scalars"
        )
    return value


def _sort_token(value: object) -> tuple[str, object]:
    """Totally ordered token for mixed-type scalars (type name, then value)."""
    if isinstance(value, _SCALAR_TYPES) and value is not None:
        return (type(value).__name__, value)
    return (type(value).__name__, repr(value))


def _tuple_id_sort_key(tuple_id: TupleId) -> tuple:
    return (tuple_id.table, tuple(_sort_token(part) for part in tuple_id.key))


@dataclass
class PlanProvenance:
    """Where a plan came from: options, phase timings, quality metrics."""

    created_by: str = "repro.pipeline"
    workload: str | None = None
    #: serialized :class:`~repro.pipeline.config.SchismOptions` (empty for
    #: plans exported from a live controller).
    options: dict = field(default_factory=dict)
    #: per-phase wall-clock seconds — all five phases, extraction included.
    timings: dict = field(default_factory=dict)
    #: cut weight, graph sizes, per-candidate distributed fractions, ...
    metrics: dict = field(default_factory=dict)

    def describe(self) -> str:
        """Multi-line provenance report (phase timings include extraction)."""
        lines = [f"created by: {self.created_by}"]
        if self.workload:
            lines.append(f"workload: {self.workload}")
        if self.timings:
            canonical = (
                "extraction", "graph_build", "partitioning", "explanation", "validation",
            )
            ordered = [phase for phase in canonical if phase in self.timings]
            ordered += sorted(
                phase for phase in self.timings
                if phase not in canonical and phase != "total"
            )
            phases = ", ".join(
                f"{phase} {self.timings[phase]:.2f}s" for phase in ordered
            )
            total = self.timings.get(
                "total", sum(self.timings[phase] for phase in ordered)
            )
            lines.append(f"timings: {total:.2f}s ({phases})")
        if self.metrics:
            fingerprintable = {
                name: value
                for name, value in sorted(self.metrics.items())
                if not isinstance(value, dict)
            }
            if fingerprintable:
                lines.append(
                    "metrics: "
                    + ", ".join(f"{name}={value}" for name, value in fingerprintable.items())
                )
            candidates = self.metrics.get("candidate_fractions")
            if isinstance(candidates, dict):
                lines.append(
                    "candidates: "
                    + ", ".join(
                        f"{name} {fraction:.1%}"
                        for name, fraction in sorted(candidates.items())
                    )
                )
        return "\n".join(lines)


@dataclass
class PartitionPlan:
    """A versioned, serializable partitioning decision."""

    num_partitions: int
    #: per-tuple replica sets (singleton = placed, larger = replicated).
    placements: dict[TupleId, frozenset[int]]
    #: name of the winning strategy (see :data:`KNOWN_STRATEGIES`).
    strategy: str = "lookup-table"
    #: resolved routing policy for tuples absent from the placements.
    lookup_default_policy: str = "hash"
    #: fallback for tables without range rules.
    range_fallback: str = "replicate"
    #: per-table range-rule sets from the explanation phase.
    rule_sets: dict[str, RuleSet] = field(default_factory=dict)
    #: per-table columns of the attribute-hashing candidate (if any).
    hash_columns: dict[str, tuple[str, ...]] | None = None
    provenance: PlanProvenance = field(default_factory=PlanProvenance)
    version: int = PLAN_FORMAT_VERSION

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if self.strategy not in KNOWN_STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; expected one of {KNOWN_STRATEGIES}"
            )
        if self.lookup_default_policy not in ("hash", "replicate"):
            raise ValueError("lookup_default_policy must be 'hash' or 'replicate'")
        if self.range_fallback not in ("replicate", "hash"):
            raise ValueError("range_fallback must be 'replicate' or 'hash'")
        for tuple_id, placement in self.placements.items():
            if not placement:
                raise ValueError(f"tuple {tuple_id} has an empty replica set")
            for partition in placement:
                if not 0 <= partition < self.num_partitions:
                    raise ValueError(
                        f"partition {partition} out of range for {tuple_id}"
                    )

    # -- queries ----------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.placements)

    @property
    def recommendation(self) -> str:
        """Name of the winning strategy (mirrors ``SchismResult.recommendation``)."""
        return self.strategy

    @property
    def replicated_count(self) -> int:
        """Tuples placed on more than one partition."""
        return sum(1 for placement in self.placements.values() if len(placement) > 1)

    def partitions_of(self, tuple_id: TupleId) -> frozenset[int] | None:
        """Replica set of ``tuple_id`` (None when the plan does not place it)."""
        return self.placements.get(tuple_id)

    def to_assignment(self) -> PartitionAssignment:
        """The placements as a (mutable) :class:`PartitionAssignment`."""
        return PartitionAssignment(self.num_partitions, dict(self.placements))

    # -- strategy reconstruction -------------------------------------------------------
    def build_strategy(self, name: str | None = None) -> PartitioningStrategy:
        """Rebuild the winning strategy (or any named candidate) from the plan."""
        name = name or self.strategy
        if name == "lookup-table":
            return LookupTablePartitioning(
                self.num_partitions, self.to_assignment(), self.lookup_default_policy
            )
        if name == "range-predicates":
            if not self.rule_sets:
                raise PlanFormatError("plan carries no rule sets for range-predicates")
            return RangePredicatePartitioning(
                self.num_partitions, self.rule_sets, fallback=self.range_fallback
            )
        if name == "hashing":
            return HashPartitioning(self.num_partitions)
        if name == "attribute-hashing":
            if not self.hash_columns:
                raise PlanFormatError("plan carries no hash columns for attribute-hashing")
            return HashPartitioning(self.num_partitions, self.hash_columns)
        if name == "replication":
            return FullReplication(self.num_partitions)
        raise ValueError(f"unknown strategy {name!r}")

    def deployment_strategy(
        self, lookup_default_policy: str | None = None
    ) -> LookupTablePartitioning:
        """The fine-grained lookup strategy online deployment always uses.

        Live migration updates per-tuple placements, which only the lookup
        table can express — so deployment ignores which candidate won the
        offline validation.  ``lookup_default_policy`` overrides the plan's
        recorded policy (online deployments usually force ``"hash"``).
        """
        return LookupTablePartitioning(
            self.num_partitions,
            self.to_assignment(),
            lookup_default_policy or self.lookup_default_policy,
        )

    # -- serialisation ----------------------------------------------------------------
    def to_payload(self) -> dict:
        """Canonical JSON-serialisable payload (entries sorted)."""
        placements = []
        for tuple_id in sorted(self.placements, key=_tuple_id_sort_key):
            key = [
                _check_scalar(part, f"key of {tuple_id}") for part in tuple_id.key
            ]
            placements.append(
                [tuple_id.table, key, sorted(self.placements[tuple_id])]
            )
        rule_sets = {
            table: rule_set_to_payload(rule_set)
            for table, rule_set in sorted(self.rule_sets.items())
        }
        for table, payload in rule_sets.items():
            for rule in payload["rules"]:
                for condition in rule["conditions"]:
                    _check_scalar(condition[2], f"rule value of table {table}")
        hash_columns = (
            {table: list(columns) for table, columns in sorted(self.hash_columns.items())}
            if self.hash_columns
            else None
        )
        return {
            "format": PLAN_FORMAT,
            "version": self.version,
            "num_partitions": self.num_partitions,
            "strategy": self.strategy,
            "lookup_default_policy": self.lookup_default_policy,
            "range_fallback": self.range_fallback,
            "hash_columns": hash_columns,
            "placements": placements,
            "rule_sets": rule_sets,
            "provenance": {
                "created_by": self.provenance.created_by,
                "workload": self.provenance.workload,
                "options": self.provenance.options,
                "timings": self.provenance.timings,
                "metrics": self.provenance.metrics,
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "PartitionPlan":
        """Rebuild a plan from a parsed payload (inverse of :meth:`to_payload`)."""
        if payload.get("format") != PLAN_FORMAT:
            raise PlanFormatError(
                f"not a partition plan (format={payload.get('format')!r})"
            )
        version = payload.get("version")
        if not isinstance(version, int) or version > PLAN_FORMAT_VERSION:
            raise PlanFormatError(
                f"plan version {version!r} is newer than supported "
                f"({PLAN_FORMAT_VERSION}); upgrade repro to read it"
            )
        placements: dict[TupleId, frozenset[int]] = {}
        for table, key, partitions in payload["placements"]:
            placements[TupleId(table, tuple(key))] = frozenset(
                int(part) for part in partitions
            )
        rule_sets = {
            table: rule_set_from_payload(rule_payload)
            for table, rule_payload in payload.get("rule_sets", {}).items()
        }
        raw_hash_columns = payload.get("hash_columns")
        hash_columns = (
            {table: tuple(columns) for table, columns in raw_hash_columns.items()}
            if raw_hash_columns
            else None
        )
        provenance_payload = payload.get("provenance", {})
        provenance = PlanProvenance(
            created_by=provenance_payload.get("created_by", "unknown"),
            workload=provenance_payload.get("workload"),
            options=provenance_payload.get("options", {}) or {},
            timings=provenance_payload.get("timings", {}) or {},
            metrics=provenance_payload.get("metrics", {}) or {},
        )
        return cls(
            num_partitions=int(payload["num_partitions"]),
            placements=placements,
            strategy=payload["strategy"],
            lookup_default_policy=payload.get("lookup_default_policy", "hash"),
            range_fallback=payload.get("range_fallback", "replicate"),
            rule_sets=rule_sets,
            hash_columns=hash_columns,
            provenance=provenance,
            version=version,
        )

    def dumps(self) -> str:
        """Canonical JSON text: sorted keys, sorted entries, trailing newline.

        Canonicalisation makes serialisation a pure function of the plan's
        content, so ``loads(dumps(plan)).dumps() == plan.dumps()`` holds
        byte-for-byte.  The text is emitted by the streaming canonical
        writer, byte-identical to ``json.dumps(payload, sort_keys=True,
        indent=1)`` (which forces the slow pure-Python encoder).
        """
        return dumps_canonical(self.to_payload()) + "\n"

    @classmethod
    def loads(cls, text: str) -> "PartitionPlan":
        """Parse a plan from JSON text."""
        return cls.from_payload(json.loads(text))

    def save(self, path: str | Path) -> Path:
        """Write the plan to ``path`` (canonical JSON); returns the path.

        Streams the canonical writer's chunks straight to the file instead
        of materialising the whole document as one string first — same
        bytes as ``path.write_text(self.dumps())``, bounded memory.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8", newline="") as fp:
            write_canonical(self.to_payload(), fp)
            fp.write("\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "PartitionPlan":
        """Read a plan previously written by :meth:`save`."""
        return cls.loads(Path(path).read_text(encoding="utf-8"))

    def content_fingerprint(self) -> str:
        """SHA-256 over the plan's *decision* content (provenance excluded).

        Two pipeline runs with the same inputs produce the same fingerprint
        even though their provenance timings differ — this is the value to
        compare across processes and array backends.
        """
        payload = self.to_payload()
        payload["provenance"] = None
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- diff -------------------------------------------------------------------------
    def diff(self, other: "PartitionPlan") -> "PlanDiff":
        """What changed from ``self`` (old) to ``other`` (new)."""
        moved: list[tuple[TupleId, frozenset[int], frozenset[int]]] = []
        replicas_added = 0
        replicas_dropped = 0
        only_in_old: list[TupleId] = []
        only_in_new: list[TupleId] = []
        for tuple_id in sorted(
            set(self.placements) | set(other.placements), key=_tuple_id_sort_key
        ):
            before = self.placements.get(tuple_id)
            after = other.placements.get(tuple_id)
            if before is None:
                assert after is not None
                only_in_new.append(tuple_id)
                continue
            if after is None:
                only_in_old.append(tuple_id)
                continue
            if before != after:
                moved.append((tuple_id, before, after))
                replicas_added += len(after - before)
                replicas_dropped += len(before - after)
        # Routing-relevant configuration beyond the placements: a plan that
        # routes differently must never diff as identical.
        policy_changes: dict[str, tuple[object, object]] = {}
        for attribute in ("lookup_default_policy", "range_fallback", "hash_columns"):
            mine = getattr(self, attribute)
            theirs = getattr(other, attribute)
            if mine != theirs:
                policy_changes[attribute] = (mine, theirs)
        rules_changed = tuple(
            sorted(
                table
                for table in set(self.rule_sets) | set(other.rule_sets)
                if (
                    table not in self.rule_sets
                    or table not in other.rule_sets
                    or rule_set_to_payload(self.rule_sets[table])
                    != rule_set_to_payload(other.rule_sets[table])
                )
            )
        )
        return PlanDiff(
            moved=moved,
            only_in_old=only_in_old,
            only_in_new=only_in_new,
            replicas_added=replicas_added,
            replicas_dropped=replicas_dropped,
            strategy_change=(
                (self.strategy, other.strategy)
                if self.strategy != other.strategy
                else None
            ),
            partitions_change=(
                (self.num_partitions, other.num_partitions)
                if self.num_partitions != other.num_partitions
                else None
            ),
            policy_changes=policy_changes,
            rules_changed=rules_changed,
        )

    def describe(self) -> str:
        """Multi-line report of the plan (placements, strategy, provenance)."""
        lines = [
            f"partition plan v{self.version}: {self.num_partitions} partitions, "
            f"strategy {self.strategy}",
            f"placements: {len(self.placements)} tuples, "
            f"{self.replicated_count} replicated "
            f"(default policy: {self.lookup_default_policy})",
        ]
        if self.rule_sets:
            lines.append(
                "range rules for tables: " + ", ".join(sorted(self.rule_sets))
            )
        lines.append(self.provenance.describe())
        return "\n".join(lines)


@dataclass
class PlanDiff:
    """Differences between two plans (old -> new)."""

    #: tuples whose replica set changed: (tuple, old placement, new placement).
    moved: list[tuple[TupleId, frozenset[int], frozenset[int]]]
    only_in_old: list[TupleId]
    only_in_new: list[TupleId]
    #: replica copies the transition would create / drop.
    replicas_added: int
    replicas_dropped: int
    strategy_change: tuple[str, str] | None = None
    partitions_change: tuple[int, int] | None = None
    #: changed routing policies: attribute -> (old, new); covers
    #: lookup_default_policy, range_fallback and hash_columns.
    policy_changes: dict[str, tuple[object, object]] = field(default_factory=dict)
    #: tables whose range-rule sets were added, removed, or modified.
    rules_changed: tuple[str, ...] = ()

    @property
    def tuples_moved(self) -> int:
        """Number of tuples whose replica set changed."""
        return len(self.moved)

    @property
    def identical(self) -> bool:
        """Whether the two plans describe the same partitioning decision.

        Covers everything that affects routing: placements, the winning
        strategy, the partition count, the default policies/hash columns,
        and the range-rule sets.
        """
        return not (
            self.moved
            or self.only_in_old
            or self.only_in_new
            or self.strategy_change
            or self.partitions_change
            or self.policy_changes
            or self.rules_changed
        )

    def describe(self) -> str:
        """Multi-line report of the differences."""
        if self.identical:
            return "plans are identical: 0 moves"
        lines = [
            f"tuples moved: {self.tuples_moved} "
            f"(+{self.replicas_added}/-{self.replicas_dropped} replicas)",
            f"tuples only in old plan: {len(self.only_in_old)}",
            f"tuples only in new plan: {len(self.only_in_new)}",
        ]
        if self.strategy_change:
            lines.append(
                f"strategy changed: {self.strategy_change[0]} -> {self.strategy_change[1]}"
            )
        if self.partitions_change:
            lines.append(
                f"num_partitions changed: {self.partitions_change[0]} -> "
                f"{self.partitions_change[1]}"
            )
        for attribute, (old, new) in sorted(self.policy_changes.items()):
            lines.append(f"{attribute} changed: {old!r} -> {new!r}")
        if self.rules_changed:
            lines.append(
                "rule sets changed for tables: " + ", ".join(self.rules_changed)
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def build_plan(
    options: "SchismOptions",
    state: "PipelineState",
    created_by: str = "repro.pipeline",
    workload: str | None = None,
) -> PartitionPlan:
    """Assemble the plan artifact from a completed pipeline state."""
    from repro.pipeline.stages import PipelineError

    if state.assignment is None or state.validation is None or state.explanation is None:
        raise PipelineError(
            "cannot build a plan before partition/explain/validate have run "
            f"(artifacts present: {state.artifacts_present()})"
        )
    if state.assignment.num_partitions != options.num_partitions:
        raise PipelineError(
            f"state artifacts were computed for {state.assignment.num_partitions} "
            f"partitions but the options say {options.num_partitions}; re-run the "
            "partition stage (Pipeline.run_stage) before building a plan"
        )
    validation = state.validation
    lookup = validation.strategies.get("lookup-table")
    lookup_policy = (
        lookup.default_policy
        if isinstance(lookup, LookupTablePartitioning)
        else ("hash" if options.lookup_default_policy == "auto" else options.lookup_default_policy)
    )
    metrics: dict = {
        "distributed_fraction": validation.winner_report.distributed_fraction,
        "candidate_fractions": {
            name: report.distributed_fraction
            for name, report in validation.reports.items()
        },
        "replicated_count": state.assignment.replicated_count,
    }
    if state.graph_cut is not None:
        metrics["graph_cut"] = state.graph_cut
    if state.tuple_graph is not None:
        metrics["graph_nodes"] = state.tuple_graph.num_nodes
        metrics["graph_edges"] = state.tuple_graph.num_edges
        metrics["graph_tuples"] = state.tuple_graph.num_tuples
        metrics["graph_transactions"] = state.tuple_graph.num_transactions
    if workload is None and state.training_trace is not None:
        workload = state.training_trace.workload_name
    provenance = PlanProvenance(
        created_by=created_by,
        workload=workload,
        options=asdict(options),
        timings=state.timings.as_dict(),
        metrics=metrics,
    )
    return PartitionPlan(
        num_partitions=options.num_partitions,
        placements=dict(state.assignment.placements),
        strategy=validation.recommendation,
        lookup_default_policy=lookup_policy,
        range_fallback=options.range_fallback,
        rule_sets=state.explanation.rule_sets(),
        hash_columns=options.hash_columns,
        provenance=provenance,
    )
