"""The staged Schism pipeline and its durable :class:`PartitionPlan` artifact.

Public surface:

* :class:`Pipeline` / :class:`PipelineRun` / :class:`PipelineState` — the
  five paper phases (``extract -> build_graph -> partition -> explain ->
  validate``) as named stages that can be run whole, stopped early, resumed
  from injected artifacts, or re-run one at a time with changed options;
* :class:`SchismOptions` / :class:`PhaseTimings` — the one configuration
  object and the per-phase timing record;
* :class:`PartitionPlan` / :class:`PlanDiff` — the versioned, serializable
  partitioning decision that offline runs produce, online deployments
  consume and re-export, and ``python -m repro`` reads and writes.

The legacy one-call facade (``repro.core.schism.Schism``/``run_schism``)
is a thin deprecation shim over this package.
"""

from repro.pipeline.config import PhaseTimings, SchismOptions
from repro.pipeline.plan import (
    KNOWN_STRATEGIES,
    PLAN_FORMAT,
    PLAN_FORMAT_VERSION,
    PartitionPlan,
    PlanDiff,
    PlanFormatError,
    PlanProvenance,
    build_plan,
)
from repro.pipeline.runner import Pipeline, PipelineRun
from repro.pipeline.stages import (
    STAGE_NAMES,
    STAGES,
    PipelineError,
    PipelineState,
    Stage,
    candidate_strategies,
    is_read_mostly,
)

__all__ = [
    "KNOWN_STRATEGIES",
    "PLAN_FORMAT",
    "PLAN_FORMAT_VERSION",
    "PartitionPlan",
    "PhaseTimings",
    "Pipeline",
    "PipelineError",
    "PipelineRun",
    "PipelineState",
    "PlanDiff",
    "PlanFormatError",
    "PlanProvenance",
    "STAGES",
    "STAGE_NAMES",
    "SchismOptions",
    "Stage",
    "build_plan",
    "candidate_strategies",
    "is_read_mostly",
]
