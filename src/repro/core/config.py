"""Pre-baked option bundles for common scenarios.

These helpers keep the examples and experiments short: they return
:class:`~repro.core.schism.SchismOptions` tuned for small / sampled / large
runs without the caller having to know every knob.
"""

from __future__ import annotations

from repro.core.schism import SchismOptions
from repro.explain.explainer import ExplainerOptions
from repro.graph.builder import GraphBuildOptions
from repro.graph.partitioner import PartitionerOptions


def default_options(num_partitions: int, seed: int = 0) -> SchismOptions:
    """Sensible defaults for laptop-scale workloads (full trace, no sampling)."""
    return SchismOptions(
        num_partitions=num_partitions,
        graph=GraphBuildOptions(seed=seed),
        partitioner=PartitionerOptions(seed=seed),
        explainer=ExplainerOptions(seed=seed),
    )


def sampled_options(
    num_partitions: int,
    transaction_fraction: float,
    tuple_fraction: float,
    seed: int = 0,
    max_samples_per_table: int = 250,
) -> SchismOptions:
    """Options for the stress-test configurations that sample the trace.

    Mirrors the paper's "TPC-C 2W, sampling" experiment: a small fraction of
    transactions and tuples, and a capped decision-tree training set per table.
    """
    return SchismOptions(
        num_partitions=num_partitions,
        graph=GraphBuildOptions(
            transaction_sample_fraction=transaction_fraction,
            tuple_sample_fraction=tuple_fraction,
            seed=seed,
        ),
        partitioner=PartitionerOptions(seed=seed),
        explainer=ExplainerOptions(seed=seed, max_samples_per_table=max_samples_per_table),
    )


def large_graph_options(num_partitions: int, seed: int = 0) -> SchismOptions:
    """Options for larger graphs: coarser stop, fewer refinement passes."""
    return SchismOptions(
        num_partitions=num_partitions,
        graph=GraphBuildOptions(seed=seed, min_tuple_accesses=2),
        partitioner=PartitionerOptions(seed=seed, coarsen_target=200, initial_trials=4, refine_passes=2),
        explainer=ExplainerOptions(seed=seed, max_samples_per_table=1000),
    )
