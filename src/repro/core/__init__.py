"""Schism's core: partitioning strategies, the cost model, validation, and the pipeline."""

from repro.core.strategies import (
    CompositePartitioning,
    FullReplication,
    HashPartitioning,
    LookupTablePartitioning,
    PartitioningStrategy,
    RangePredicatePartitioning,
    RoundRobinPartitioning,
    TablePolicy,
    hash_on,
    range_on,
    replicate,
)
from repro.core.cost import CostReport, evaluate_strategy
from repro.core.validation import ValidationResult, validate_strategies
from repro.core.schism import Schism, SchismOptions, SchismResult, run_schism, start_online

__all__ = [
    "CompositePartitioning",
    "CostReport",
    "FullReplication",
    "HashPartitioning",
    "LookupTablePartitioning",
    "PartitioningStrategy",
    "RangePredicatePartitioning",
    "RoundRobinPartitioning",
    "Schism",
    "SchismOptions",
    "SchismResult",
    "TablePolicy",
    "ValidationResult",
    "evaluate_strategy",
    "hash_on",
    "range_on",
    "replicate",
    "run_schism",
    "start_online",
    "validate_strategies",
]
