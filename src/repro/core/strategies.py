"""Partitioning/replication strategies.

Every strategy answers two questions:

* **storage**: which partition(s) store a given tuple
  (:meth:`PartitioningStrategy.partitions_for_tuple`), which is what the
  distributed-transaction cost model needs;
* **routing**: which partitions could hold the tuples matching a set of
  equality conditions (:meth:`PartitioningStrategy.partitions_for_conditions`),
  which is what the middleware router needs; ``None`` means "cannot tell —
  broadcast".

The concrete strategies mirror the candidates compared in the paper's final
validation phase: fine-grained lookup tables, range predicates produced by
the explanation phase, hash partitioning, full-table replication, plus
round-robin and composable per-table manual strategies used as baselines.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.catalog.tuples import TupleId
from repro.explain.rules import RuleSet, decode_label
from repro.graph.assignment import PartitionAssignment
from repro.sqlparse.predicates import AttributeCondition


def stable_hash(value: object) -> int:
    """A process-independent hash for partitioning (Python's ``hash`` is salted)."""
    digest = hashlib.blake2b(repr(value).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def hash_home(tuple_id: TupleId, num_partitions: int) -> frozenset[int]:
    """Primary-key hash placement of ``tuple_id``.

    The single definition of where "hash" default policies and fallbacks
    send a tuple — shared by the strategies here and by the online
    controller's clamp/pinning paths, so they can never diverge from where
    the router actually routes implicitly-placed tuples.  The table name is
    included so same-valued keys of different tables do not artificially
    co-locate.
    """
    return frozenset({stable_hash((tuple_id.table, tuple_id.key)) % num_partitions})


class PartitioningStrategy(ABC):
    """Base class for all strategies."""

    #: human-readable name used in reports ("lookup-table", "hashing", ...).
    name: str = "strategy"
    #: relative complexity used for tie-breaking in the final validation
    #: (lower is simpler and therefore preferred on a tie).
    complexity: int = 1

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions

    # -- storage ------------------------------------------------------------------------
    @abstractmethod
    def partitions_for_tuple(
        self, tuple_id: TupleId, row: Mapping[str, object] | None = None
    ) -> frozenset[int]:
        """Partitions that store ``tuple_id`` (always non-empty)."""

    # -- routing ------------------------------------------------------------------------
    def partitions_for_conditions(
        self, table: str, conditions: Sequence[AttributeCondition]
    ) -> frozenset[int] | None:
        """Partitions a statement restricted by ``conditions`` may need to touch.

        ``None`` means the strategy cannot narrow the destination set and the
        statement must be broadcast to every partition holding the table.
        The default implementation routes only when the conditions pin down
        the full primary key via a synthesized row; subclasses override with
        cheaper/smarter logic.
        """
        return None

    @property
    def all_partitions(self) -> frozenset[int]:
        """The set of every partition id."""
        return frozenset(range(self.num_partitions))

    def describe(self) -> str:
        """One-line description for reports."""
        return f"{self.name} over {self.num_partitions} partitions"


# ---------------------------------------------------------------------------
# Hash partitioning
# ---------------------------------------------------------------------------
class HashPartitioning(PartitioningStrategy):
    """Hash partitioning on the primary key or on chosen columns per table.

    With no ``columns_per_table`` every tuple is hashed on its primary key —
    the paper's "hashing" baseline.  Providing columns (e.g. ``w_id`` for all
    TPC-C tables) turns it into an attribute-based hash scheme.
    """

    name = "hashing"
    complexity = 1

    def __init__(
        self,
        num_partitions: int,
        columns_per_table: Mapping[str, tuple[str, ...]] | None = None,
    ) -> None:
        super().__init__(num_partitions)
        self.columns_per_table = dict(columns_per_table or {})
        if self.columns_per_table:
            # Distinguish attribute hashing from primary-key hashing in reports.
            self.name = "attribute-hashing"

    def partitions_for_tuple(
        self, tuple_id: TupleId, row: Mapping[str, object] | None = None
    ) -> frozenset[int]:
        columns = self.columns_per_table.get(tuple_id.table)
        if columns is None:
            return hash_home(tuple_id, self.num_partitions)
        if row is not None and all(column in row for column in columns):
            value: tuple[object, ...] = tuple(row[column] for column in columns)
        else:
            value = tuple_id.key
        # Attribute hashing deliberately omits the table name so that tuples of
        # different tables sharing the attribute value (e.g. TPC-C w_id) co-locate.
        return frozenset({stable_hash(value) % self.num_partitions})

    def partitions_for_conditions(
        self, table: str, conditions: Sequence[AttributeCondition]
    ) -> frozenset[int] | None:
        columns = self.columns_per_table.get(table)
        if columns is None:
            return None
        values: dict[str, tuple[object, ...]] = {}
        for condition in conditions:
            if condition.column in columns:
                candidates = condition.candidate_values()
                if candidates:
                    values[condition.column] = candidates
        if set(values) != set(columns):
            return None
        partitions: set[int] = set()
        self._expand(columns, values, (), partitions)
        return frozenset(partitions)

    def _expand(
        self,
        columns: tuple[str, ...],
        values: dict[str, tuple[object, ...]],
        prefix: tuple[object, ...],
        out: set[int],
    ) -> None:
        if len(prefix) == len(columns):
            out.add(stable_hash(prefix) % self.num_partitions)
            return
        for value in values[columns[len(prefix)]]:
            self._expand(columns, values, prefix + (value,), out)


class RoundRobinPartitioning(PartitioningStrategy):
    """Round-robin placement: tuples are spread evenly with no locality at all."""

    name = "round-robin"
    complexity = 1

    def __init__(self, num_partitions: int) -> None:
        super().__init__(num_partitions)
        self._assigned: dict[TupleId, int] = {}
        self._next = 0

    def partitions_for_tuple(
        self, tuple_id: TupleId, row: Mapping[str, object] | None = None
    ) -> frozenset[int]:
        partition = self._assigned.get(tuple_id)
        if partition is None:
            partition = self._next
            self._assigned[tuple_id] = partition
            self._next = (self._next + 1) % self.num_partitions
        return frozenset({partition})


# ---------------------------------------------------------------------------
# Full replication
# ---------------------------------------------------------------------------
class FullReplication(PartitioningStrategy):
    """Every tuple is stored on every partition.

    Reads are always local; every write becomes a distributed transaction.
    """

    name = "replication"
    complexity = 0

    def partitions_for_tuple(
        self, tuple_id: TupleId, row: Mapping[str, object] | None = None
    ) -> frozenset[int]:
        return self.all_partitions

    def partitions_for_conditions(
        self, table: str, conditions: Sequence[AttributeCondition]
    ) -> frozenset[int] | None:
        # Any single partition can answer a read; the router handles replica
        # choice, so reporting the full set keeps the semantics "stored here".
        return self.all_partitions


# ---------------------------------------------------------------------------
# Range-predicate partitioning (output of the explanation phase)
# ---------------------------------------------------------------------------
class RangePredicatePartitioning(PartitioningStrategy):
    """Partitioning described by per-table predicate rule sets.

    Tables without a rule set follow the ``fallback`` policy: ``"replicate"``
    stores their tuples everywhere (the safe choice for read-mostly reference
    tables), ``"hash"`` hashes them on their primary key.
    """

    name = "range-predicates"
    complexity = 2

    def __init__(
        self,
        num_partitions: int,
        rule_sets: Mapping[str, RuleSet],
        fallback: str = "replicate",
    ) -> None:
        super().__init__(num_partitions)
        if fallback not in ("replicate", "hash"):
            raise ValueError("fallback must be 'replicate' or 'hash'")
        self.rule_sets = dict(rule_sets)
        self.fallback = fallback

    def partitions_for_tuple(
        self, tuple_id: TupleId, row: Mapping[str, object] | None = None
    ) -> frozenset[int]:
        rule_set = self.rule_sets.get(tuple_id.table)
        if rule_set is None:
            return self._fallback_partitions(tuple_id)
        attributes = dict(row) if row is not None else {}
        partitions = rule_set.partitions_for_row(attributes)
        valid = frozenset(p for p in partitions if 0 <= p < self.num_partitions)
        if not valid:
            return self._fallback_partitions(tuple_id)
        return valid

    def _fallback_partitions(self, tuple_id: TupleId) -> frozenset[int]:
        if self.fallback == "replicate":
            return self.all_partitions
        return hash_home(tuple_id, self.num_partitions)

    def partitions_for_conditions(
        self, table: str, conditions: Sequence[AttributeCondition]
    ) -> frozenset[int] | None:
        rule_set = self.rule_sets.get(table)
        if rule_set is None:
            if self.fallback == "replicate":
                return self.all_partitions
            return None
        # Route by synthesising a row from equality conditions on the rule
        # attributes.  Range conditions cannot pin a single rule path, so any
        # missing attribute forces a broadcast.
        row: dict[str, object] = {}
        for condition in conditions:
            values = condition.candidate_values()
            if len(values) == 1:
                row[condition.column] = values[0]
        if not all(attribute in row for attribute in rule_set.attributes):
            return None
        return frozenset(
            p for p in rule_set.partitions_for_row(row) if 0 <= p < self.num_partitions
        ) or None

    def describe(self) -> str:
        tables = ", ".join(sorted(self.rule_sets)) or "-"
        return f"{self.name} over {self.num_partitions} partitions (tables: {tables})"


# ---------------------------------------------------------------------------
# Lookup-table partitioning (fine-grained, per-tuple)
# ---------------------------------------------------------------------------
class LookupTablePartitioning(PartitioningStrategy):
    """Fine-grained per-tuple placement backed by the graph phase's assignment.

    Tuples not present in the lookup table (not touched by the training
    trace, or inserted later) follow ``default_policy``:

    * ``"hash"`` — hash on the primary key (the paper's "random partition
      until the partitioning is re-evaluated");
    * ``"replicate"`` — store everywhere (used for read-mostly workloads such
      as Epinions in the paper).
    """

    name = "lookup-table"
    complexity = 3

    def __init__(
        self,
        num_partitions: int,
        assignment: PartitionAssignment,
        default_policy: str = "hash",
    ) -> None:
        super().__init__(num_partitions)
        if default_policy not in ("hash", "replicate"):
            raise ValueError("default_policy must be 'hash' or 'replicate'")
        self.assignment = assignment
        self.default_policy = default_policy

    def partitions_for_tuple(
        self, tuple_id: TupleId, row: Mapping[str, object] | None = None
    ) -> frozenset[int]:
        placement = self.assignment.partitions_of(tuple_id)
        if placement:
            return placement
        if self.default_policy == "replicate":
            return self.all_partitions
        return hash_home(tuple_id, self.num_partitions)

    def partitions_for_conditions(
        self, table: str, conditions: Sequence[AttributeCondition]
    ) -> frozenset[int] | None:
        # The router resolves lookup tables through its LookupTable backend
        # (which can answer key-equality conditions); at the strategy level we
        # can only answer when the full key is pinned by the conditions.
        return None

    def describe(self) -> str:
        return (
            f"{self.name} over {self.num_partitions} partitions "
            f"({len(self.assignment)} tuples, {self.assignment.replicated_count} replicated, "
            f"default={self.default_policy})"
        )


# ---------------------------------------------------------------------------
# Composite (manual) partitioning
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TablePolicy:
    """Per-table policy used by :class:`CompositePartitioning`.

    ``kind`` is one of ``"hash"``, ``"replicate"``, ``"range"``.
    """

    kind: str
    columns: tuple[str, ...] = ()
    #: for range policies: sorted upper boundaries; partition i holds values
    #: <= boundaries[i], the last partition holds the rest.
    boundaries: tuple[float, ...] = ()


def hash_on(*columns: str) -> TablePolicy:
    """Policy: hash the table on ``columns``."""
    return TablePolicy("hash", tuple(columns))


def replicate() -> TablePolicy:
    """Policy: replicate the table on every partition."""
    return TablePolicy("replicate")


def range_on(column: str, boundaries: Sequence[float]) -> TablePolicy:
    """Policy: range-partition the table on ``column`` with the given upper bounds."""
    return TablePolicy("range", (column,), tuple(boundaries))


class CompositePartitioning(PartitioningStrategy):
    """Manual, per-table partitioning (used for the paper's "manual" baselines)."""

    name = "manual"
    complexity = 2

    def __init__(
        self,
        num_partitions: int,
        table_policies: Mapping[str, TablePolicy],
        default_policy: TablePolicy | None = None,
        name: str = "manual",
    ) -> None:
        super().__init__(num_partitions)
        self.table_policies = dict(table_policies)
        self.default_policy = default_policy or TablePolicy("hash")
        self.name = name

    def partitions_for_tuple(
        self, tuple_id: TupleId, row: Mapping[str, object] | None = None
    ) -> frozenset[int]:
        policy = self.table_policies.get(tuple_id.table, self.default_policy)
        return self._apply_policy(policy, tuple_id, row)

    def _apply_policy(
        self, policy: TablePolicy, tuple_id: TupleId, row: Mapping[str, object] | None
    ) -> frozenset[int]:
        if policy.kind == "replicate":
            return self.all_partitions
        if policy.kind == "hash":
            value: object
            if policy.columns and row is not None and all(c in row for c in policy.columns):
                value = tuple(row[c] for c in policy.columns)
            elif policy.columns and row is None:
                # No row available: fall back to the key so the answer stays deterministic.
                value = tuple_id.key
            else:
                value = (tuple_id.table, tuple_id.key)
            return frozenset({stable_hash(value) % self.num_partitions})
        if policy.kind == "range":
            column = policy.columns[0]
            if row is None or column not in row:
                return frozenset({stable_hash(tuple_id.key) % self.num_partitions})
            try:
                numeric = float(row[column])  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return frozenset({stable_hash(row[column]) % self.num_partitions})
            for partition, boundary in enumerate(policy.boundaries):
                if numeric <= boundary:
                    return frozenset({min(partition, self.num_partitions - 1)})
            return frozenset({self.num_partitions - 1})
        raise ValueError(f"unknown policy kind {policy.kind!r}")

    def partitions_for_conditions(
        self, table: str, conditions: Sequence[AttributeCondition]
    ) -> frozenset[int] | None:
        policy = self.table_policies.get(table, self.default_policy)
        if policy.kind == "replicate":
            return self.all_partitions
        values: dict[str, tuple[object, ...]] = {}
        for condition in conditions:
            if condition.column in policy.columns:
                candidates = condition.candidate_values()
                if candidates:
                    values[condition.column] = candidates
        if policy.kind == "hash":
            if not policy.columns or set(values) != set(policy.columns):
                return None
            partitions: set[int] = set()
            self._expand_hash(policy.columns, values, (), partitions)
            return frozenset(partitions)
        if policy.kind == "range":
            column = policy.columns[0]
            if column not in values:
                return None
            partitions = set()
            for value in values[column]:
                partitions.update(self._apply_policy(policy, TupleId(table, (value,)), {column: value}))
            return frozenset(partitions)
        return None

    def _expand_hash(
        self,
        columns: tuple[str, ...],
        values: dict[str, tuple[object, ...]],
        prefix: tuple[object, ...],
        out: set[int],
    ) -> None:
        if len(prefix) == len(columns):
            out.add(stable_hash(prefix) % self.num_partitions)
            return
        for value in values[columns[len(prefix)]]:
            self._expand_hash(columns, values, prefix + (value,), out)
