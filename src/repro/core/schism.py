"""Legacy one-call facade over the staged pipeline (Section 2's five steps).

The pipeline itself lives in :mod:`repro.pipeline`: five named stages
(``extract -> build_graph -> partition -> explain -> validate``) producing a
serializable :class:`~repro.pipeline.plan.PartitionPlan`.  This module keeps
the original entry points working:

* :class:`Schism` / :func:`run_schism` — deprecated shims that run the full
  pipeline and repackage the artifacts as a :class:`SchismResult`;
* :class:`SchismResult` — the in-memory result blob of the old API, now
  with :meth:`SchismResult.to_plan` as the bridge to the plan artifact;
* :func:`start_online` — deploys a :class:`PartitionPlan` (preferred) or a
  :class:`SchismResult` (deprecated) as a live, self-adapting system.

``SchismOptions`` and ``PhaseTimings`` moved to :mod:`repro.pipeline.config`
and are re-exported here unchanged.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.cost import CostReport
from repro.core.strategies import PartitioningStrategy
from repro.core.validation import ValidationResult
from repro.engine.database import Database
from repro.explain.explainer import Explanation
from repro.graph.assignment import PartitionAssignment
from repro.graph.builder import TupleGraph
from repro.pipeline.config import PhaseTimings, SchismOptions
from repro.pipeline.plan import PartitionPlan, build_plan
from repro.pipeline.runner import Pipeline, PipelineRun
from repro.pipeline.stages import PipelineState
from repro.workload.rwsets import AccessTrace
from repro.workload.trace import Workload

__all__ = [
    "PhaseTimings",
    "Schism",
    "SchismOptions",
    "SchismResult",
    "run_schism",
    "start_online",
]


@dataclass
class SchismResult:
    """Everything produced by one Schism run (legacy in-memory form).

    New code should prefer the pipeline's :class:`PartitionPlan` — it is the
    serializable subset of this object plus provenance — and reach the rest
    through :class:`~repro.pipeline.runner.PipelineRun`.
    """

    options: SchismOptions
    tuple_graph: TupleGraph
    assignment: PartitionAssignment
    explanation: Explanation
    validation: ValidationResult
    graph_cut: float
    timings: PhaseTimings
    training_trace: AccessTrace
    test_trace: AccessTrace

    @property
    def recommended_strategy(self) -> PartitioningStrategy:
        """The strategy selected by the final validation."""
        return self.validation.winner

    @property
    def recommendation(self) -> str:
        """Name of the selected strategy."""
        return self.validation.recommendation

    @property
    def reports(self) -> dict[str, CostReport]:
        """Cost reports of every candidate strategy on the test trace."""
        return self.validation.reports

    def distributed_fraction(self, strategy_name: str | None = None) -> float:
        """Distributed-transaction fraction of a candidate (default: the winner)."""
        if strategy_name is None:
            return self.validation.winner_report.distributed_fraction
        return self.validation.reports[strategy_name].distributed_fraction

    def to_plan(self, created_by: str = "repro.core.schism") -> PartitionPlan:
        """The run repackaged as the durable :class:`PartitionPlan` artifact."""
        state = PipelineState(
            database=None,  # type: ignore[arg-type] - not needed to build a plan
            training_trace=self.training_trace,
            test_trace=self.test_trace,
            tuple_graph=self.tuple_graph,
            assignment=self.assignment,
            graph_cut=self.graph_cut,
            explanation=self.explanation,
            validation=self.validation,
            timings=self.timings,
        )
        return build_plan(self.options, state, created_by=created_by)

    def describe(self) -> str:
        """Multi-line report of the run (all five phase timings included)."""
        lines = [
            f"Schism run: {self.options.num_partitions} partitions",
            f"graph: {self.tuple_graph.num_nodes} nodes, {self.tuple_graph.num_edges} edges, "
            f"{self.tuple_graph.num_tuples} tuples, {self.tuple_graph.num_transactions} transactions",
            f"cut weight: {self.graph_cut:.1f}; replicated tuples: {self.assignment.replicated_count}",
            f"timings: {self.timings.total:.2f}s "
            f"(extract {self.timings.extraction:.2f}s, graph {self.timings.graph_build:.2f}s, "
            f"partition {self.timings.partitioning:.2f}s, "
            f"explain {self.timings.explanation:.2f}s, validate {self.timings.validation:.2f}s)",
            "candidates:",
            self.validation.describe(),
        ]
        return "\n".join(lines)


def result_from_run(run: PipelineRun) -> SchismResult:
    """Package a completed pipeline run as the legacy result object."""
    state = run.state
    assert (
        state.tuple_graph is not None
        and state.assignment is not None
        and state.explanation is not None
        and state.validation is not None
        and state.graph_cut is not None
        and state.training_trace is not None
        and state.test_trace is not None
    ), "pipeline run is incomplete"
    return SchismResult(
        options=run.options,
        tuple_graph=state.tuple_graph,
        assignment=state.assignment,
        explanation=state.explanation,
        validation=state.validation,
        graph_cut=state.graph_cut,
        timings=state.timings,
        training_trace=state.training_trace,
        test_trace=state.test_trace,
    )


class Schism:
    """Deprecated one-call facade; use :class:`repro.pipeline.Pipeline`."""

    def __init__(self, options: SchismOptions) -> None:
        self.options = options

    def run(
        self,
        database: Database,
        training_workload: Workload,
        test_workload: Workload | None = None,
        training_trace: AccessTrace | None = None,
        test_trace: AccessTrace | None = None,
    ) -> SchismResult:
        """Run the full pipeline (deprecated shim, behaviour unchanged).

        Equivalent to ``Pipeline(options).run(...)`` followed by packaging
        the artifacts into a :class:`SchismResult`.
        """
        warnings.warn(
            "Schism.run is deprecated; use repro.pipeline.Pipeline.run and "
            "consume the PartitionPlan it produces",
            DeprecationWarning,
            stacklevel=2,
        )
        run = Pipeline(self.options).run(
            database,
            training_workload,
            test_workload,
            training_trace=training_trace,
            test_trace=test_trace,
        )
        return result_from_run(run)


def run_schism(
    database: Database,
    training_workload: Workload,
    num_partitions: int,
    test_workload: Workload | None = None,
    options: SchismOptions | None = None,
) -> SchismResult:
    """Deprecated convenience one-call entry point (see :class:`Schism`)."""
    if options is None:
        options = SchismOptions(num_partitions=num_partitions)
    elif options.num_partitions != num_partitions:
        raise ValueError("num_partitions argument and options.num_partitions disagree")
    warnings.warn(
        "run_schism is deprecated; use repro.pipeline.Pipeline",
        DeprecationWarning,
        stacklevel=2,
    )
    # Run the pipeline directly (not via the Schism shim) so this emits
    # exactly one deprecation warning without filtering anything else out.
    run = Pipeline(options).run(database, training_workload, test_workload)
    return result_from_run(run)


def start_online(
    plan: "PartitionPlan | SchismResult",
    database: Database,
    online_options: "OnlineOptions | None" = None,
    lookup_default_policy: str = "hash",
    warm_up_trace: AccessTrace | None = None,
):
    """Deploy a partitioning decision as a live, self-adapting system.

    Materialises the cluster from ``database`` under the fine-grained
    lookup-table placement of ``plan``, builds the router, and returns an
    :class:`~repro.online.controller.OnlineSchism` controller.  The
    controller closes the loop on live traffic (``observe`` /
    ``observe_batches``): it detects drift, re-partitions under a migration
    budget — widening read-hot tuples into **replica sets** when their
    decayed read/write ratio clears the ``OnlineOptions.replication_*``
    thresholds — and, when ``OnlineOptions.elastic`` is enabled, grows or
    shrinks ``num_partitions`` to follow the offered load.  Its live
    placement can be exported back as a plan at any time
    (:meth:`~repro.online.controller.OnlineSchism.export_plan`), closing
    the offline -> online -> artifact loop.

    Parameters
    ----------
    plan:
        The :class:`PartitionPlan` to deploy — fresh from a pipeline run or
        loaded from disk.  Passing a legacy :class:`SchismResult` still
        works (deprecated): it is converted via :meth:`SchismResult.to_plan`
        and its training trace is used for the warm-up.
    database:
        The loaded database the cluster is materialised from.
    online_options:
        :class:`~repro.online.controller.OnlineOptions` for the loop
        (monitor/maintainer/repartition knobs, replication thresholds,
        elastic policy); defaults throughout when omitted.
    lookup_default_policy:
        Routing for tuples absent from the lookup table: ``"hash"``
        (default) or ``"replicate"``.  Note the *offline* pipeline defaults
        to ``"auto"``; online deployments default to ``"hash"`` because
        implicit full replication would make every later write to an
        untracked tuple a cluster-wide transaction.
    warm_up_trace:
        Optional trace to seed the monitor/maintainer with (the offline
        training trace, typically).  Without it the controller starts from
        an empty drift baseline — the common case for a plan loaded from a
        file, which deliberately does not embed the trace.

    The lookup strategy is always used for the online deployment — live
    migration updates per-tuple placements, which only the lookup table can
    express — regardless of which candidate won the offline validation.
    """
    # Imported here so the offline pipeline stays importable on its own.
    from repro.distributed.cluster import Cluster
    from repro.online.controller import OnlineOptions, OnlineSchism
    from repro.routing.lookup import build_lookup_table
    from repro.routing.router import Router

    if isinstance(plan, SchismResult):
        warnings.warn(
            "passing a SchismResult to start_online is deprecated; pass "
            "result.to_plan() (and, if desired, warm_up_trace=result.training_trace)",
            DeprecationWarning,
            stacklevel=2,
        )
        if warm_up_trace is None:
            warm_up_trace = plan.training_trace
        plan = plan.to_plan()

    online_options = online_options or OnlineOptions()
    strategy = plan.deployment_strategy(lookup_default_policy)
    cluster = Cluster.from_database(database, strategy)
    lookup_table = build_lookup_table(
        strategy.assignment, backend=online_options.lookup_backend
    )
    router = Router(strategy, database.schema, lookup_table)
    controller = OnlineSchism(cluster, router, online_options)
    controller.source_plan = plan
    if warm_up_trace is not None:
        controller.warm_up(warm_up_trace)
    else:
        controller.monitor.set_baseline()
    return controller
