"""The Schism pipeline (Section 2's five steps).

1. **Data pre-processing** — execute the training workload against the loaded
   database and record per-statement read/write sets.
2. **Creating the graph** — build the tuple-access graph, with the sampling /
   filtering / coalescing heuristics and optional replication stars.
3. **Partitioning the graph** — run the multilevel balanced min-cut
   partitioner and map node labels back to per-tuple replica sets.
4. **Explaining the partition** — train the decision-tree classifier over the
   frequently-used WHERE attributes and extract range-predicate rule sets.
5. **Final validation** — compare lookup-table, range-predicate, hash, and
   full-replication strategies on a held-out test trace and pick the winner
   (simplest on a tie).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost import CostReport, evaluate_strategy
from repro.core.strategies import (
    FullReplication,
    HashPartitioning,
    LookupTablePartitioning,
    PartitioningStrategy,
    RangePredicatePartitioning,
)
from repro.core.validation import ValidationResult, validate_strategies
from repro.engine.database import Database
from repro.explain.explainer import Explainer, ExplainerOptions, Explanation
from repro.graph.assignment import PartitionAssignment
from repro.graph.builder import GraphBuildOptions, TupleGraph, build_tuple_graph
from repro.graph.partitioner import GraphPartitioner, PartitionerOptions, cut_weight
from repro.utils.timer import Timer
from repro.workload.rwsets import AccessTrace, extract_access_trace
from repro.workload.trace import Workload


@dataclass
class SchismOptions:
    """Configuration of a Schism run."""

    num_partitions: int
    graph: GraphBuildOptions = field(default_factory=GraphBuildOptions)
    partitioner: PartitionerOptions = field(default_factory=PartitionerOptions)
    explainer: ExplainerOptions = field(default_factory=ExplainerOptions)
    #: policy for tuples missing from the lookup table: "hash", "replicate",
    #: or "auto" (replicate when the workload is read-mostly, hash otherwise).
    lookup_default_policy: str = "auto"
    #: fallback for tables without range rules: "replicate" or "hash".
    range_fallback: str = "replicate"
    #: absolute tolerance on the distributed fraction for the simplicity tie-break.
    tie_tolerance: float = 0.01
    #: relative tolerance serving the same purpose (see validate_strategies).
    relative_tie_tolerance: float = 0.10
    #: reject candidates whose per-partition load imbalance (max/mean) exceeds this.
    max_load_imbalance: float = 1.6
    #: also evaluate a hash strategy on the given columns per table (optional).
    hash_columns: dict[str, tuple[str, ...]] | None = None

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if self.lookup_default_policy not in ("hash", "replicate", "auto"):
            raise ValueError("lookup_default_policy must be 'hash', 'replicate' or 'auto'")


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each pipeline phase."""

    extraction: float = 0.0
    graph_build: float = 0.0
    partitioning: float = 0.0
    explanation: float = 0.0
    validation: float = 0.0

    @property
    def total(self) -> float:
        """Total pipeline time."""
        return (
            self.extraction
            + self.graph_build
            + self.partitioning
            + self.explanation
            + self.validation
        )


@dataclass
class SchismResult:
    """Everything produced by one Schism run."""

    options: SchismOptions
    tuple_graph: TupleGraph
    assignment: PartitionAssignment
    explanation: Explanation
    validation: ValidationResult
    graph_cut: float
    timings: PhaseTimings
    training_trace: AccessTrace
    test_trace: AccessTrace

    @property
    def recommended_strategy(self) -> PartitioningStrategy:
        """The strategy selected by the final validation."""
        return self.validation.winner

    @property
    def recommendation(self) -> str:
        """Name of the selected strategy."""
        return self.validation.recommendation

    @property
    def reports(self) -> dict[str, CostReport]:
        """Cost reports of every candidate strategy on the test trace."""
        return self.validation.reports

    def distributed_fraction(self, strategy_name: str | None = None) -> float:
        """Distributed-transaction fraction of a candidate (default: the winner)."""
        if strategy_name is None:
            return self.validation.winner_report.distributed_fraction
        return self.validation.reports[strategy_name].distributed_fraction

    def describe(self) -> str:
        """Multi-line report of the run."""
        lines = [
            f"Schism run: {self.options.num_partitions} partitions",
            f"graph: {self.tuple_graph.num_nodes} nodes, {self.tuple_graph.num_edges} edges, "
            f"{self.tuple_graph.num_tuples} tuples, {self.tuple_graph.num_transactions} transactions",
            f"cut weight: {self.graph_cut:.1f}; replicated tuples: {self.assignment.replicated_count}",
            f"timings: {self.timings.total:.2f}s "
            f"(graph {self.timings.graph_build:.2f}s, partition {self.timings.partitioning:.2f}s, "
            f"explain {self.timings.explanation:.2f}s, validate {self.timings.validation:.2f}s)",
            "candidates:",
            self.validation.describe(),
        ]
        return "\n".join(lines)


class Schism:
    """The end-to-end workload-driven partitioner."""

    def __init__(self, options: SchismOptions) -> None:
        self.options = options

    def run(
        self,
        database: Database,
        training_workload: Workload,
        test_workload: Workload | None = None,
        training_trace: AccessTrace | None = None,
        test_trace: AccessTrace | None = None,
    ) -> SchismResult:
        """Run the full pipeline.

        Parameters
        ----------
        database:
            The loaded database.  The workloads are executed against it to
            extract read/write sets (write statements mutate it).
        training_workload:
            Workload used to build the graph and train the explanation.
        test_workload:
            Held-out workload for the final validation; defaults to the
            training workload when omitted (as the paper does for the
            smallest experiments).
        training_trace, test_trace:
            Pre-extracted access traces; when provided the corresponding
            workload is not re-executed.
        """
        options = self.options
        timings = PhaseTimings()

        with Timer() as timer:
            if training_trace is None:
                training_trace = extract_access_trace(database, training_workload)
            if test_trace is None:
                if test_workload is None:
                    test_trace = training_trace
                else:
                    test_trace = extract_access_trace(database, test_workload)
        timings.extraction = timer.elapsed

        with Timer() as timer:
            tuple_graph = build_tuple_graph(training_trace, database, options.graph)
        timings.graph_build = timer.elapsed

        with Timer() as timer:
            partitioner = GraphPartitioner(options.partitioner)
            # Freeze once and reuse the CSR form for both the partition and
            # the cut computation.
            frozen_graph = tuple_graph.graph.freeze()
            node_assignment = partitioner.partition(frozen_graph, options.num_partitions)
            assignment = tuple_graph.to_partition_assignment(
                node_assignment, options.num_partitions
            )
            graph_cut = cut_weight(frozen_graph, node_assignment)
        timings.partitioning = timer.elapsed

        with Timer() as timer:
            explainer = Explainer(options.explainer)
            explanation = explainer.explain(assignment, database, training_workload)
        timings.explanation = timer.elapsed

        with Timer() as timer:
            candidates = self._candidate_strategies(assignment, explanation, training_trace)
            validation = validate_strategies(
                candidates,
                test_trace,
                database,
                tie_tolerance=options.tie_tolerance,
                relative_tie_tolerance=options.relative_tie_tolerance,
                max_load_imbalance=options.max_load_imbalance,
            )
        timings.validation = timer.elapsed

        return SchismResult(
            options=options,
            tuple_graph=tuple_graph,
            assignment=assignment,
            explanation=explanation,
            validation=validation,
            graph_cut=graph_cut,
            timings=timings,
            training_trace=training_trace,
            test_trace=test_trace,
        )

    # -- candidates ----------------------------------------------------------------------
    def _candidate_strategies(
        self,
        assignment: PartitionAssignment,
        explanation: Explanation,
        training_trace: AccessTrace,
    ) -> list[PartitioningStrategy]:
        options = self.options
        lookup_policy = options.lookup_default_policy
        if lookup_policy == "auto":
            lookup_policy = "replicate" if self._is_read_mostly(training_trace) else "hash"
        candidates: list[PartitioningStrategy] = [
            LookupTablePartitioning(options.num_partitions, assignment, lookup_policy),
            HashPartitioning(options.num_partitions),
            FullReplication(options.num_partitions),
        ]
        rule_sets = explanation.rule_sets()
        if rule_sets:
            candidates.insert(
                1,
                RangePredicatePartitioning(
                    options.num_partitions, rule_sets, fallback=options.range_fallback
                ),
            )
        if options.hash_columns:
            candidates.append(
                HashPartitioning(options.num_partitions, options.hash_columns)
            )
        return candidates

    @staticmethod
    def _is_read_mostly(trace: AccessTrace, threshold: float = 0.1) -> bool:
        """True when fewer than ``threshold`` of tuple accesses are writes."""
        reads = 0
        writes = 0
        for access in trace:
            reads += len(access.read_set)
            writes += len(access.write_set)
        total = reads + writes
        if total == 0:
            return False
        return writes / total < threshold


def run_schism(
    database: Database,
    training_workload: Workload,
    num_partitions: int,
    test_workload: Workload | None = None,
    options: SchismOptions | None = None,
) -> SchismResult:
    """Convenience one-call entry point used by the examples and experiments."""
    if options is None:
        options = SchismOptions(num_partitions=num_partitions)
    elif options.num_partitions != num_partitions:
        raise ValueError("num_partitions argument and options.num_partitions disagree")
    return Schism(options).run(database, training_workload, test_workload)


def start_online(
    result: SchismResult,
    database: Database,
    online_options: "OnlineOptions | None" = None,
    lookup_default_policy: str = "hash",
):
    """Deploy a finished offline run as a live, self-adapting system.

    Materialises the cluster from ``database`` under the fine-grained
    lookup-table placement of ``result``, builds the router, and returns an
    :class:`~repro.online.controller.OnlineSchism` controller already warmed
    up on the training trace (so its maintained graph and drift baseline
    start from what the offline pipeline learned).

    The controller then closes the loop on live traffic (``observe`` /
    ``observe_batches``): it detects drift, re-partitions under a migration
    budget — widening read-hot tuples into **replica sets** when their
    decayed read/write ratio clears the ``OnlineOptions.replication_*``
    thresholds — and, when ``OnlineOptions.elastic`` is enabled, grows or
    shrinks ``num_partitions`` to follow the offered load.

    Parameters
    ----------
    result:
        The finished :class:`SchismResult` whose placement to deploy.
    database:
        The loaded database the cluster is materialised from.
    online_options:
        :class:`~repro.online.controller.OnlineOptions` for the loop
        (monitor/maintainer/repartition knobs, replication thresholds,
        elastic policy); defaults throughout when omitted.
    lookup_default_policy:
        Routing for tuples absent from the lookup table: ``"hash"``
        (default) or ``"replicate"``.  Note the *offline* pipeline defaults
        to ``"auto"``; online deployments default to ``"hash"`` because
        implicit full replication would make every later write to an
        untracked tuple a cluster-wide transaction.

    The lookup strategy is always used for the online deployment — live
    migration updates per-tuple placements, which only the lookup table can
    express — regardless of which candidate won the offline validation.
    """
    # Imported here so the offline pipeline stays importable on its own.
    from repro.core.strategies import LookupTablePartitioning
    from repro.distributed.cluster import Cluster
    from repro.online.controller import OnlineOptions, OnlineSchism
    from repro.routing.lookup import build_lookup_table
    from repro.routing.router import Router

    online_options = online_options or OnlineOptions()
    strategy = LookupTablePartitioning(
        result.options.num_partitions, result.assignment, lookup_default_policy
    )
    cluster = Cluster.from_database(database, strategy)
    lookup_table = build_lookup_table(result.assignment, backend=online_options.lookup_backend)
    router = Router(strategy, database.schema, lookup_table)
    controller = OnlineSchism(cluster, router, online_options)
    controller.warm_up(result.training_trace)
    return controller
