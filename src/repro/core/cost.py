"""Distributed-transaction cost model.

Section 3 of the paper establishes that the dominant cost in partitioned OLTP
is the *number of distributed transactions*; Section 6 uses the fraction of
distributed transactions as the comparison metric for every strategy.  This
module computes that metric for any strategy over an access trace:

* every tuple **written** by a transaction involves *all* partitions holding a
  replica of the tuple (replicas must be kept consistent);
* every tuple **read** involves *one* replica, chosen greedily to coincide
  with partitions the transaction already has to visit (the same replica
  selection the paper's router performs);
* the transaction is *distributed* when more than one partition ends up
  involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.catalog.tuples import TupleId
from repro.core.strategies import PartitioningStrategy
from repro.engine.database import Database
from repro.workload.rwsets import AccessTrace
from repro.workload.trace import TransactionAccess


@dataclass
class CostReport:
    """Result of evaluating one strategy over one access trace."""

    strategy_name: str
    num_partitions: int
    total_transactions: int = 0
    distributed_transactions: int = 0
    single_partition_transactions: int = 0
    empty_transactions: int = 0
    #: how many transactions touched each partition.
    partition_transaction_counts: list[int] = field(default_factory=list)
    #: total number of (transaction, partition) participations.
    total_participations: int = 0

    @property
    def distributed_fraction(self) -> float:
        """Fraction of (non-empty) transactions that are distributed."""
        effective = self.total_transactions - self.empty_transactions
        if effective <= 0:
            return 0.0
        return self.distributed_transactions / effective

    @property
    def mean_participants(self) -> float:
        """Average number of partitions per non-empty transaction."""
        effective = self.total_transactions - self.empty_transactions
        if effective <= 0:
            return 0.0
        return self.total_participations / effective

    def partition_load_imbalance(self) -> float:
        """Max/mean ratio of per-partition transaction counts (1.0 = perfectly even)."""
        counts = [count for count in self.partition_transaction_counts]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean > 0 else 1.0

    def describe(self) -> str:
        """One-line summary used by the experiment harness."""
        return (
            f"{self.strategy_name}: {self.distributed_fraction:6.1%} distributed "
            f"({self.distributed_transactions}/{self.total_transactions - self.empty_transactions} transactions, "
            f"mean participants {self.mean_participants:.2f})"
        )


def evaluate_strategy(
    strategy: PartitioningStrategy,
    trace: AccessTrace,
    database: Database | None = None,
    row_cache: Mapping[TupleId, Mapping[str, object]] | None = None,
) -> CostReport:
    """Evaluate ``strategy`` over ``trace``, returning a :class:`CostReport`.

    ``database`` (or a pre-built ``row_cache``) supplies tuple attribute
    values to strategies that need them (range predicates, attribute
    hashing); strategies that only use the primary key work without it.
    """
    report = CostReport(strategy.name, strategy.num_partitions)
    report.partition_transaction_counts = [0] * strategy.num_partitions
    for access in trace:
        report.total_transactions += 1
        partitions = transaction_partitions(strategy, access, database, row_cache)
        if not partitions:
            report.empty_transactions += 1
            continue
        report.total_participations += len(partitions)
        for partition in partitions:
            report.partition_transaction_counts[partition] += 1
        if len(partitions) > 1:
            report.distributed_transactions += 1
        else:
            report.single_partition_transactions += 1
    return report


def transaction_partitions(
    strategy: PartitioningStrategy,
    access: TransactionAccess,
    database: Database | None = None,
    row_cache: Mapping[TupleId, Mapping[str, object]] | None = None,
) -> frozenset[int]:
    """The set of partitions a transaction must involve under ``strategy``."""
    involved: set[int] = set()
    read_choices: list[frozenset[int]] = []
    write_set = access.write_set
    for tuple_id in sorted(write_set):
        row = _row_for(tuple_id, database, row_cache)
        involved.update(strategy.partitions_for_tuple(tuple_id, row))
    for tuple_id in sorted(access.read_set - write_set):
        row = _row_for(tuple_id, database, row_cache)
        replicas = strategy.partitions_for_tuple(tuple_id, row)
        if len(replicas) == 1:
            involved.update(replicas)
        else:
            read_choices.append(replicas)
    # Greedy replica selection for reads of replicated tuples: prefer a replica
    # on a partition the transaction already visits; otherwise open the
    # partition that satisfies the most remaining reads.
    remaining = [choice for choice in read_choices if not (choice & involved)]
    while remaining:
        counts: dict[int, int] = {}
        for choice in remaining:
            for partition in choice:
                counts[partition] = counts.get(partition, 0) + 1
        best_partition = max(sorted(counts), key=lambda partition: counts[partition])
        involved.add(best_partition)
        remaining = [choice for choice in remaining if best_partition not in choice]
    return frozenset(involved)


def _row_for(
    tuple_id: TupleId,
    database: Database | None,
    row_cache: Mapping[TupleId, Mapping[str, object]] | None,
) -> Mapping[str, object] | None:
    if row_cache is not None and tuple_id in row_cache:
        return row_cache[tuple_id]
    if database is not None:
        return database.get_row(tuple_id)
    return None
