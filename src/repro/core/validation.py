"""Final validation phase (Section 4.4).

Compare the candidate strategies — fine-grained lookup table, range
predicates, hash partitioning, full replication — by the number of
distributed transactions they incur on a held-out test trace, and pick the
winner.  When several strategies are within a small tolerance of the best,
the *simplest* one wins (hash or replication before range predicates, range
predicates before lookup tables), which is how the paper ends up recommending
plain hashing for YCSB-A and the Random workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.catalog.tuples import TupleId
from repro.core.cost import CostReport, evaluate_strategy
from repro.core.strategies import PartitioningStrategy
from repro.engine.database import Database
from repro.workload.rwsets import AccessTrace


@dataclass
class ValidationResult:
    """Outcome of the final validation."""

    winner: PartitioningStrategy
    winner_report: CostReport
    reports: dict[str, CostReport] = field(default_factory=dict)
    strategies: dict[str, PartitioningStrategy] = field(default_factory=dict)

    @property
    def recommendation(self) -> str:
        """Name of the selected strategy."""
        return self.winner.name

    def describe(self) -> str:
        """Multi-line comparison of all candidates, winner marked."""
        lines = []
        for name, report in sorted(self.reports.items(), key=lambda item: item[1].distributed_fraction):
            marker = " <= selected" if name == self.winner.name else ""
            lines.append(f"{report.describe()}{marker}")
        return "\n".join(lines)


def validate_strategies(
    candidates: Sequence[PartitioningStrategy],
    test_trace: AccessTrace,
    database: Database | None = None,
    row_cache: Mapping[TupleId, Mapping[str, object]] | None = None,
    tie_tolerance: float = 0.01,
    relative_tie_tolerance: float = 0.10,
    max_load_imbalance: float = 1.6,
) -> ValidationResult:
    """Pick the best strategy by distributed-transaction fraction.

    Parameters
    ----------
    candidates:
        Strategies to compare (order does not matter).
    test_trace:
        Access trace of the held-out test workload.
    database, row_cache:
        Attribute sources for strategies that need row values.
    tie_tolerance:
        Absolute tolerance on the distributed fraction within which a simpler
        strategy is preferred over a better-scoring complex one.
    relative_tie_tolerance:
        Relative tolerance serving the same purpose for larger fractions
        (50% vs 52% is "the same" for all practical purposes).
    max_load_imbalance:
        Strategies whose per-partition transaction load is more imbalanced
        than this (max/mean) are rejected unless nothing else survives: a
        degenerate "everything on one node" placement trivially avoids
        distributed transactions but defeats the purpose of partitioning.
    """
    if not candidates:
        raise ValueError("at least one candidate strategy is required")
    reports: dict[str, CostReport] = {}
    strategies: dict[str, PartitioningStrategy] = {}
    for strategy in candidates:
        report = evaluate_strategy(strategy, test_trace, database, row_cache)
        reports[strategy.name] = report
        strategies[strategy.name] = strategy
    balanced = [
        strategy
        for strategy in candidates
        if reports[strategy.name].partition_load_imbalance() <= max_load_imbalance
    ]
    pool = balanced if balanced else list(candidates)
    best_fraction = min(reports[strategy.name].distributed_fraction for strategy in pool)
    threshold = max(best_fraction + tie_tolerance, best_fraction * (1.0 + relative_tie_tolerance))
    # Among strategies within the tolerance of the best, pick the simplest;
    # break remaining ties by the fraction itself, then by name for determinism.
    eligible = [
        strategy
        for strategy in pool
        if reports[strategy.name].distributed_fraction <= threshold
    ]
    winner = min(
        eligible,
        key=lambda strategy: (
            strategy.complexity,
            reports[strategy.name].distributed_fraction,
            strategy.name,
        ),
    )
    return ValidationResult(winner, reports[winner.name], reports, strategies)
