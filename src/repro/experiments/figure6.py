"""Figure 6 — end-to-end TPC-C throughput scaling.

Two configurations, as in the paper:

* **scale-out**: 16 warehouses total spread across 1, 2, 4, 8 machines.
  Contention on the (few) warehouses per machine caps the speed-up at ~4.7x.
* **scale-up**: 16 warehouses *per machine* (so the database grows with the
  cluster).  Contention never binds and scaling is nearly linear (~7.7x).

The distributed-transaction fraction fed into the throughput simulator is
*measured* with the cost model: a TPC-C workload is generated for the
configuration's warehouse count and evaluated against Schism's
warehouse-range partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import evaluate_strategy
from repro.distributed.simulation import ThroughputSimulator
from repro.workload.rwsets import extract_access_trace
from repro.workloads.tpcc import TpccConfig, generate_tpcc, tpcc_manual_strategy


@dataclass
class Figure6Row:
    """One point of Figure 6."""

    machines: int
    total_warehouses: int
    distributed_fraction: float
    throughput_tps: float
    speedup: float
    bottleneck: str


def _measure_distributed_fraction(
    total_warehouses: int, machines: int, num_transactions: int, seed: int
) -> float:
    """Measure TPC-C's distributed fraction under warehouse-range partitioning."""
    if machines == 1:
        return 0.0
    config = TpccConfig(
        warehouses=total_warehouses,
        districts_per_warehouse=3,
        customers_per_district=10,
        items=50,
        seed=seed,
    )
    bundle = generate_tpcc(config, num_transactions=num_transactions, name="tpcc-fig6")
    trace = extract_access_trace(bundle.database, bundle.workload)
    strategy = tpcc_manual_strategy(machines, total_warehouses)
    report = evaluate_strategy(strategy, trace, bundle.database)
    return report.distributed_fraction


def run_figure6(
    machine_counts: tuple[int, ...] = (1, 2, 4, 8),
    warehouses_per_machine: int | None = None,
    total_warehouses: int = 16,
    num_transactions: int = 400,
    seed: int = 0,
) -> list[Figure6Row]:
    """Run one Figure 6 curve.

    ``warehouses_per_machine=None`` gives the fixed-total (scale-out) curve;
    an integer gives the per-machine (scale-up) curve.
    """
    simulator = ThroughputSimulator()
    rows: list[Figure6Row] = []
    baseline: float | None = None
    for machines in machine_counts:
        warehouses = (
            total_warehouses
            if warehouses_per_machine is None
            else warehouses_per_machine * machines
        )
        distributed_fraction = _measure_distributed_fraction(
            warehouses, machines, num_transactions, seed
        )
        result = simulator.simulate_tpcc(
            num_servers=machines,
            total_warehouses=warehouses,
            distributed_fraction=distributed_fraction,
        )
        if baseline is None:
            baseline = result.throughput_tps
        rows.append(
            Figure6Row(
                machines=machines,
                total_warehouses=warehouses,
                distributed_fraction=distributed_fraction,
                throughput_tps=result.throughput_tps,
                speedup=result.throughput_tps / baseline if baseline else 0.0,
                bottleneck=result.bottleneck,
            )
        )
    return rows


def format_figure6(fixed_total: list[Figure6Row], per_machine: list[Figure6Row]) -> str:
    """Render both Figure 6 curves as a text table."""
    lines = [
        "Figure 6: TPC-C throughput scaling",
        f"{'machines':>9} {'config':>22} {'warehouses':>11} {'dist txn':>9} "
        f"{'tps':>9} {'speedup':>8} {'bottleneck':>11}",
    ]
    for label, rows in (("16 warehouses total", fixed_total), ("16 warehouses / machine", per_machine)):
        for row in rows:
            lines.append(
                f"{row.machines:>9} {label:>22} {row.total_warehouses:>11} "
                f"{row.distributed_fraction:>9.1%} {row.throughput_tps:>9.0f} "
                f"{row.speedup:>8.2f} {row.bottleneck:>11}"
            )
    return "\n".join(lines)
