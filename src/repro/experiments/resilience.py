"""Crash-safe live migration under faults: the resilience experiment.

An elastic 2 -> 4 resize runs **while** a sustained TPC-C workload commits
through the 2PC coordinator, and a seeded
:class:`~repro.distributed.faults.FaultPlan` makes the run hostile: a
partition crashes mid-migration, messages drop with some probability, and
the migration coordinator is killed at chosen journal records (the journal
bytes survive in a sink; a fresh session resumes from them).  A single-node
**oracle** database receives every committed transaction, so at the end the
cluster can be audited row by row:

* **zero lost updates** — every replica of every tuple equals the oracle row
  (a dual-write window miss, a stale restored replica, or a dropped journal
  step would each show up here);
* **zero unreachable tuples** — every stored tuple is resident at its routed
  placement, through the resize's modulus change and all crash/resume
  cycles;
* **tuple conservation** — the cluster stores exactly the oracle's tuple
  set: nothing vanished, nothing was duplicated into a phantom;
* **pacing reacted** — the SLO pacer demonstrably paused/throttled the
  migration while the fault-driven abort rate exceeded its budget, and the
  p99 latency proxy stayed bounded relative to quiet traffic;
* **byte determinism** — the whole scenario is a pure function of its seed:
  run twice, the final journal bytes and every counter must match exactly.

Wired into ``python -m repro bench --experiment resilience`` and the
``run_bench.py`` harness; the chaos-smoke CI job runs it over a seed matrix
and fails on any lost-update or unreachable-tuple count above zero.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.distributed.coordinator import TwoPhaseCommitCoordinator
from repro.distributed.faults import (
    CoordinatorDeath,
    CoordinatorKill,
    FaultPlan,
    NodeCrash,
)
from repro.online.controller import (
    MigrationPacer,
    OnlineOptions,
    PacingOptions,
)
from repro.online.migration import MemoryJournalSink
from repro.online.monitor import MonitorOptions
from repro.obs import trace_span
from repro.online.repartitioner import RepartitionOptions
from repro.pipeline import Pipeline, SchismOptions
from repro.workload.trace import Workload
from repro.workloads import TpccConfig, generate_tpcc


@dataclass
class ResilienceReport:
    """Outcome of one crash-safe-migration-under-faults run."""

    seed: int
    initial_partitions: int
    final_partitions: int
    #: live-traffic accounting (committed / aborted attempts / gave up).
    transactions_committed: int = 0
    transactions_aborted: int = 0
    retries_exhausted: int = 0
    #: faults that actually fired.
    coordinator_deaths: int = 0
    resumes: int = 0
    messages_dropped: int = 0
    messages_delayed: int = 0
    migration_steps_deferred: int = 0
    #: consistency audits (the acceptance criteria; all must be zero/True).
    lost_updates: int = 0
    phantom_rows: int = 0
    unreachable_tuples: int = 0
    tuple_conservation: bool = True
    #: pacing telemetry (pauses + throttles must be positive: the abort-rate
    #: budget is sized so the injected faults push traffic over it).
    pacer_pauses: int = 0
    pacer_throttles: int = 0
    pacer_resumes: int = 0
    p99_latency_quiet: float = 0.0
    p99_latency_during: float = 0.0
    #: journal accounting.
    journal_records: int = 0
    migration_copies: int = 0
    migration_drops: int = 0
    #: sha256 over the final journal bytes and every counter above; two runs
    #: with the same seed must produce the same fingerprint.
    fingerprint: str = ""
    #: set by :func:`run_resilience` after replaying the scenario.
    deterministic: bool = False
    kill_records: tuple[int, ...] = field(default_factory=tuple)

    @property
    def violations(self) -> list[str]:
        """The acceptance criteria this run failed (empty = pass)."""
        failures = []
        if self.lost_updates:
            failures.append(f"{self.lost_updates} lost updates")
        if self.phantom_rows:
            failures.append(f"{self.phantom_rows} phantom rows")
        if self.unreachable_tuples:
            failures.append(f"{self.unreachable_tuples} unreachable tuples")
        if not self.tuple_conservation:
            failures.append("tuple set not conserved")
        if self.final_partitions != 4:
            failures.append(f"resize did not complete (k={self.final_partitions})")
        if self.coordinator_deaths == 0:
            failures.append("no coordinator death was injected")
        if self.resumes < self.coordinator_deaths:
            failures.append("a coordinator death was not resumed")
        if self.pacer_pauses + self.pacer_throttles == 0:
            failures.append("pacing never reacted")
        if not self.deterministic:
            failures.append("run is not byte-deterministic")
        return failures


def _p99(samples: list[float]) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[max(0, -(-len(ordered) * 99 // 100) - 1)]


def _run_scenario(
    seed: int,
    warehouses: int,
    training_transactions: int,
    live_transactions: int,
    migration_start: int,
) -> ResilienceReport:
    """One deterministic pass of the hostile-resize scenario."""
    from repro.core.schism import start_online

    with trace_span(
        "experiment.resilience", seed=seed, warehouses=warehouses
    ):
        return _run_scenario_traced(
            seed, warehouses, training_transactions, live_transactions, migration_start
        )


def _run_scenario_traced(
    seed: int,
    warehouses: int,
    training_transactions: int,
    live_transactions: int,
    migration_start: int,
) -> ResilienceReport:
    from repro.core.schism import start_online

    config = TpccConfig(
        warehouses=warehouses,
        districts_per_warehouse=2,
        customers_per_district=8,
        items=40,
        seed=seed,
    )
    bundle = generate_tpcc(
        config, num_transactions=training_transactions + live_transactions
    )
    training = Workload(
        f"{bundle.name}-train", bundle.workload.transactions[:training_transactions]
    )
    live = bundle.workload.transactions[training_transactions:]
    database = bundle.database

    run = Pipeline(SchismOptions(num_partitions=2)).run(database, training)
    plan = run.plan(created_by="experiments.resilience", workload=bundle.name)
    options = OnlineOptions(
        monitor=MonitorOptions(window_size=400, min_window_fill=100),
        repartition=RepartitionOptions(migration_cost_weight=0.25, imbalance=0.10),
        pacing=PacingOptions(
            abort_rate_budget=0.10,
            p99_latency_budget=500.0,
            min_samples=16,
            max_steps=8,
            throttled_steps=2,
        ),
    )
    controller = start_online(
        plan, database, options, warm_up_trace=run.state.training_trace
    )
    # ``start_online`` copied every row into the cluster's partitions, so the
    # source database is an independent single-node replica of the initial
    # state: committing every successful transaction to it too makes it the
    # oracle the final audit compares against.
    oracle = database

    faults = FaultPlan(
        seed=seed,
        # One storage partition goes dark mid-migration; copies and drops
        # touching it defer, transactions on it abort-and-retry past the
        # window (each attempt advances the clock).  The outage is the
        # *transient* SLO pressure: the abort rate spikes over the pacer's
        # budget (pause), then healthy post-outage commits slide the window
        # back under it (throttle, then resume) so the migration completes.
        node_crashes=(NodeCrash(partition=1, at_tick=migration_start + 30, duration=60),),
        # The migration coordinator dies twice, at an early and a late
        # journal record; both times the journal sink has the bytes.
        coordinator_kills=(CoordinatorKill(at_record=3), CoordinatorKill(at_record=11)),
        message_drop_rate=0.0005,
        message_delay_rate=0.02,
        message_delay=4.0,
    )
    injector = faults.build()
    coordinator = TwoPhaseCommitCoordinator(controller.cluster, controller.router, injector)
    pacer = MigrationPacer(options.pacing)
    sink = MemoryJournalSink()

    report = ResilienceReport(
        seed=seed,
        initial_partitions=controller.num_partitions,
        final_partitions=controller.num_partitions,
        kill_records=tuple(kill.at_record for kill in faults.coordinator_kills),
    )
    quiet_latencies: list[float] = []
    during_latencies: list[float] = []
    session = None

    def tick_migration(idle: bool = False) -> None:
        nonlocal session
        if session is None or session.done:
            return
        try:
            session.tick(idle=idle)
        except CoordinatorDeath:
            report.coordinator_deaths += 1
            # The journal record that the kill targeted was persisted before
            # the death fired: resume a fresh session from the sink's bytes.
            session = controller.attach_session(
                sink.load(), sink=sink, pacer=pacer, injector=injector
            )
            report.resumes += 1

    for index, transaction in enumerate(live):
        if index == migration_start:
            session = controller.begin_resize(
                4, sink=sink, pacer=pacer, injector=injector, batch_size=8
            )
        # The pacer observes every attempt (aborted retries included): the
        # final outcome alone would hide the abort pressure retries absorb.
        outcome = coordinator.execute_with_retries(transaction, observer=pacer.observe)
        if outcome.aborted:
            report.retries_exhausted += 1
        else:
            for statement in transaction.statements:
                oracle.execute(statement)
            (during_latencies if session is not None and not session.done
             else quiet_latencies).append(outcome.latency)
        tick_migration()
    # Traffic ended; finish the migration with *idle* ticks — there is no
    # live load left to protect, so the pacer releases any pause instead of
    # holding a frozen over-budget window forever.  Faults still apply.
    for _ in range(10_000):
        if session is None or session.done:
            break
        tick_migration(idle=True)

    report.transactions_committed = coordinator.statistics.transactions
    report.transactions_aborted = coordinator.statistics.aborts
    report.messages_dropped = injector.statistics.messages_dropped
    report.messages_delayed = injector.statistics.messages_delayed
    report.final_partitions = controller.num_partitions
    report.pacer_pauses = pacer.pauses
    report.pacer_throttles = pacer.throttles
    report.pacer_resumes = pacer.resumes
    report.p99_latency_quiet = _p99(quiet_latencies)
    report.p99_latency_during = _p99(during_latencies)
    if session is not None:
        report.migration_steps_deferred = session.report.faults_deferred
        report.journal_records = session.journal.records
        # cumulative across crash/resume cycles (a resumed session's own
        # report restarts at zero; the journal cursors do not).
        report.migration_copies = session.journal.copies_done
        report.migration_drops = session.journal.drops_done

    # -- audits ------------------------------------------------------------------------
    cluster = controller.cluster
    router = controller.router
    cluster_tuples = set()
    for tuple_id, locations in cluster.tuple_locations_map().items():
        cluster_tuples.add(tuple_id)
        oracle_row = oracle.get_row(tuple_id)
        if oracle_row is None:
            report.phantom_rows += 1
            continue
        for partition in locations:
            if cluster.database(partition).get_row(tuple_id) != oracle_row:
                report.lost_updates += 1
        placement = router.strategy.partitions_for_tuple(tuple_id)
        if not any(partition in locations for partition in placement):
            report.unreachable_tuples += 1
    report.tuple_conservation = cluster_tuples == set(oracle.all_tuple_ids())

    digest = hashlib.sha256()
    digest.update((sink.text or "").encode("utf-8"))
    digest.update(
        repr(
            (
                report.transactions_committed,
                report.transactions_aborted,
                report.retries_exhausted,
                report.coordinator_deaths,
                report.resumes,
                report.messages_dropped,
                report.messages_delayed,
                report.migration_steps_deferred,
                report.lost_updates,
                report.phantom_rows,
                report.unreachable_tuples,
                report.tuple_conservation,
                report.pacer_pauses,
                report.pacer_throttles,
                report.pacer_resumes,
                report.p99_latency_quiet,
                report.p99_latency_during,
                report.journal_records,
                report.migration_copies,
                report.migration_drops,
                report.final_partitions,
            )
        ).encode("utf-8")
    )
    report.fingerprint = digest.hexdigest()
    return report


def run_resilience(
    seed: int = 0,
    warehouses: int = 2,
    training_transactions: int = 300,
    live_transactions: int = 400,
    migration_start: int = 50,
) -> ResilienceReport:
    """Run the hostile-resize scenario twice and verify byte determinism.

    The second pass exists purely to prove the whole run — fault draws,
    journal records, crash/resume points, final audits — is a function of
    ``seed``; its report must fingerprint identically to the first.
    """
    first = _run_scenario(
        seed, warehouses, training_transactions, live_transactions, migration_start
    )
    second = _run_scenario(
        seed, warehouses, training_transactions, live_transactions, migration_start
    )
    first.deterministic = first.fingerprint == second.fingerprint
    return first


def format_resilience(report: ResilienceReport) -> str:
    """Render the resilience run as text."""
    lines = [
        "Resilience: 2 -> 4 elastic resize under TPC-C load with injected faults",
        f"  seed {report.seed}: partitions {report.initial_partitions} -> "
        f"{report.final_partitions}",
        f"  traffic: {report.transactions_committed} committed, "
        f"{report.transactions_aborted} aborted attempts "
        f"({report.retries_exhausted} exhausted retries)",
        f"  faults: {report.coordinator_deaths} coordinator deaths "
        f"(resumed {report.resumes}, journal records {report.journal_records}), "
        f"{report.messages_dropped} messages dropped, "
        f"{report.messages_delayed} delayed, "
        f"{report.migration_steps_deferred} migration steps deferred",
        f"  migration: {report.migration_copies} copies, "
        f"{report.migration_drops} drops",
        f"  pacing: {report.pacer_pauses} pauses, {report.pacer_throttles} "
        f"throttles, {report.pacer_resumes} resumes; p99 latency "
        f"{report.p99_latency_quiet:.0f} quiet -> {report.p99_latency_during:.0f} "
        f"during migration",
        f"  audits: {report.lost_updates} lost updates, {report.phantom_rows} "
        f"phantom rows, {report.unreachable_tuples} unreachable tuples, "
        f"conserved={report.tuple_conservation}, "
        f"deterministic={report.deterministic}",
    ]
    violations = report.violations
    lines.append(
        "  PASS" if not violations else "  FAIL: " + "; ".join(violations)
    )
    return "\n".join(lines)
