"""Figure 4 — partitioning quality across the nine evaluation workloads.

For each experiment the harness runs the full Schism pipeline and reports the
fraction of distributed transactions of:

* Schism's graph/lookup-table solution,
* Schism's range-predicate explanation,
* the strategy actually selected by the final validation (the "SCHISM:" row
  of the paper's figure),
* the best manual partitioning (where the paper has one),
* full replication, and
* hash partitioning on the primary key.

Scales default to sizes that run in seconds per experiment; pass
``scale > 1.0`` to grow databases and traces toward the paper's sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.cost import evaluate_strategy
from repro.explain.explainer import ExplainerOptions
from repro.graph.builder import GraphBuildOptions
from repro.graph.partitioner import PartitionerOptions
from repro.pipeline import PartitionPlan, Pipeline, SchismOptions
from repro.utils.rng import SeededRng
from repro.workload.splitter import split_workload
from repro.workloads import (
    EpinionsConfig,
    TpccConfig,
    TpceConfig,
    generate_epinions,
    generate_random_workload,
    generate_tpcc,
    generate_tpce,
    generate_ycsb_a,
    generate_ycsb_e,
)
from repro.workloads.base import WorkloadBundle


@dataclass
class Figure4Experiment:
    """Definition of one bar group of Figure 4."""

    key: str
    partitions: int
    bundle_factory: Callable[[float, int], WorkloadBundle]
    options_factory: Callable[[int, int], SchismOptions] | None = None
    #: paper's qualitative expectation for the validation phase's choice.
    expected_recommendation: tuple[str, ...] = ()


@dataclass
class Figure4Row:
    """Results for one experiment (one bar group in the figure)."""

    key: str
    partitions: int
    recommendation: str
    schism_lookup: float
    schism_range: float | None
    schism_selected: float
    manual: float | None
    replication: float
    hashing: float
    metadata: dict[str, object] = field(default_factory=dict)


def _default_options(partitions: int, seed: int) -> SchismOptions:
    return SchismOptions(
        num_partitions=partitions,
        graph=GraphBuildOptions(seed=seed),
        partitioner=PartitionerOptions(seed=seed),
        explainer=ExplainerOptions(seed=seed),
    )


def _sampled_options(partitions: int, seed: int) -> SchismOptions:
    """Options for the "TPC-C 2W, sampling" stress test (Section 6.1).

    The paper samples a 100k-transaction trace down to 20k transactions and
    ~0.5% of the tuples and still recovers the by-warehouse design; at our
    much smaller absolute scale we sample less aggressively (70%/70%) so that
    enough co-access signal survives, and cap the decision-tree training set
    at 250 tuples per table exactly as the paper does.
    """
    return SchismOptions(
        num_partitions=partitions,
        graph=GraphBuildOptions(
            transaction_sample_fraction=0.7,
            tuple_sample_fraction=0.7,
            seed=seed,
        ),
        partitioner=PartitionerOptions(seed=seed),
        explainer=ExplainerOptions(seed=seed, max_samples_per_table=250),
    )


def _tpcc_50w_options(partitions: int, seed: int) -> SchismOptions:
    """Options for the scaled-down TPC-C 50W / 10 partition experiment.

    With only two warehouses per partition the 5% balance slack of the default
    configuration would force the partitioner to split warehouses; a slightly
    wider slack and a larger refinement budget let it keep warehouses whole,
    which is what kmetis achieves at the paper's 50-warehouse scale.
    """
    return SchismOptions(
        num_partitions=partitions,
        graph=GraphBuildOptions(seed=seed),
        partitioner=PartitionerOptions(
            seed=seed, imbalance=0.15, refine_passes=6, initial_trials=8, coarsen_target=200
        ),
        explainer=ExplainerOptions(seed=seed),
    )


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


FIGURE4_EXPERIMENTS: tuple[Figure4Experiment, ...] = (
    Figure4Experiment(
        key="ycsb-a",
        partitions=2,
        bundle_factory=lambda scale, seed: generate_ycsb_a(
            num_rows=_scaled(5000, scale), num_transactions=_scaled(4000, scale), seed=seed
        ),
        expected_recommendation=("hashing", "attribute-hashing"),
    ),
    Figure4Experiment(
        key="ycsb-e",
        partitions=2,
        bundle_factory=lambda scale, seed: generate_ycsb_e(
            num_rows=_scaled(2000, scale),
            num_transactions=_scaled(4000, scale),
            max_scan_length=20,
            seed=seed,
        ),
        expected_recommendation=("range-predicates", "lookup-table"),
    ),
    Figure4Experiment(
        key="tpcc-2w",
        partitions=2,
        bundle_factory=lambda scale, seed: generate_tpcc(
            TpccConfig(
                warehouses=2,
                districts_per_warehouse=_scaled(4, scale),
                customers_per_district=_scaled(20, scale),
                items=_scaled(100, scale),
                seed=seed,
            ),
            num_transactions=_scaled(600, scale),
        ),
        expected_recommendation=("range-predicates",),
    ),
    Figure4Experiment(
        key="tpcc-2w-sampled",
        partitions=2,
        bundle_factory=lambda scale, seed: generate_tpcc(
            TpccConfig(
                warehouses=2,
                districts_per_warehouse=_scaled(4, scale),
                customers_per_district=_scaled(20, scale),
                items=_scaled(100, scale),
                seed=seed,
            ),
            # Larger base trace so that 50% transaction / 50% tuple sampling
            # still leaves enough co-access signal (the paper samples a 100k
            # transaction trace down to 20k).
            num_transactions=_scaled(1600, scale),
            name="tpcc-2w-sampled",
        ),
        options_factory=_sampled_options,
        expected_recommendation=("range-predicates", "attribute-hashing"),
    ),
    Figure4Experiment(
        key="tpcc-50w",
        partitions=10,
        bundle_factory=lambda scale, seed: generate_tpcc(
            TpccConfig(
                # Scaled-down stand-in for 50 warehouses / 10 partitions: keep
                # several warehouses per partition so the by-warehouse structure
                # is recoverable, and shrink the per-warehouse population instead.
                warehouses=20,
                districts_per_warehouse=2,
                customers_per_district=_scaled(10, scale),
                items=_scaled(100, scale),
                seed=seed,
            ),
            num_transactions=_scaled(2400, scale),
            name="tpcc-50w",
        ),
        options_factory=_tpcc_50w_options,
        expected_recommendation=("range-predicates", "attribute-hashing"),
    ),
    Figure4Experiment(
        key="tpce",
        partitions=2,
        bundle_factory=lambda scale, seed: generate_tpce(
            TpceConfig(
                customers=_scaled(200, scale),
                securities=_scaled(80, scale),
                seed=seed,
            ),
            num_transactions=_scaled(2500, scale),
        ),
        expected_recommendation=("range-predicates", "lookup-table"),
    ),
    Figure4Experiment(
        key="epinions-2p",
        partitions=2,
        bundle_factory=lambda scale, seed: generate_epinions(
            EpinionsConfig(
                num_users=_scaled(300, scale),
                num_items=_scaled(300, scale),
                num_communities=10,
                seed=seed,
            ),
            num_transactions=_scaled(3000, scale),
        ),
        expected_recommendation=("lookup-table",),
    ),
    Figure4Experiment(
        key="epinions-10p",
        partitions=10,
        bundle_factory=lambda scale, seed: generate_epinions(
            EpinionsConfig(
                num_users=_scaled(300, scale),
                num_items=_scaled(300, scale),
                num_communities=20,
                seed=seed,
            ),
            num_transactions=_scaled(3000, scale),
            name="epinions-10p",
        ),
        expected_recommendation=("lookup-table",),
    ),
    Figure4Experiment(
        key="random",
        partitions=2,
        bundle_factory=lambda scale, seed: generate_random_workload(
            num_rows=_scaled(3000, scale), num_transactions=_scaled(1500, scale), seed=seed
        ),
        expected_recommendation=("hashing", "attribute-hashing"),
    ),
)


def run_figure4_experiment(
    experiment: Figure4Experiment,
    scale: float = 1.0,
    seed: int = 0,
    train_fraction: float = 0.7,
) -> tuple[Figure4Row, PartitionPlan]:
    """Run one Figure 4 experiment; returns its row plus the plan artifact.

    Every per-candidate number in the row is read from the plan's
    provenance metrics — the artifact carries the whole comparison, so a
    saved plan file reproduces the figure row without re-running anything.
    """
    bundle = experiment.bundle_factory(scale, seed)
    options_factory = experiment.options_factory or _default_options
    options = options_factory(experiment.partitions, seed)
    if bundle.hash_columns and options.hash_columns is None:
        options.hash_columns = bundle.hash_columns
    train, test = split_workload(bundle.workload, train_fraction, rng=SeededRng(seed))
    run = Pipeline(options).run(bundle.database, train, test)
    plan = run.plan(created_by="experiments.figure4", workload=bundle.name)
    fractions: dict[str, float] = plan.provenance.metrics["candidate_fractions"]
    manual_fraction: float | None = None
    manual_strategy = bundle.manual_strategy(experiment.partitions)
    if manual_strategy is not None:
        manual_fraction = evaluate_strategy(
            manual_strategy, run.state.test_trace, bundle.database
        ).distributed_fraction
    row = Figure4Row(
        key=experiment.key,
        partitions=experiment.partitions,
        recommendation=plan.recommendation,
        schism_lookup=fractions["lookup-table"],
        schism_range=fractions.get("range-predicates"),
        schism_selected=plan.provenance.metrics["distributed_fraction"],
        manual=manual_fraction,
        replication=fractions["replication"],
        hashing=fractions["hashing"],
        metadata=dict(bundle.metadata),
    )
    return row, plan


def run_figure4(
    scale: float = 1.0,
    seed: int = 0,
    keys: tuple[str, ...] | None = None,
) -> list[Figure4Row]:
    """Run all (or the selected) Figure 4 experiments."""
    rows: list[Figure4Row] = []
    for experiment in FIGURE4_EXPERIMENTS:
        if keys is not None and experiment.key not in keys:
            continue
        row, _result = run_figure4_experiment(experiment, scale=scale, seed=seed)
        rows.append(row)
    return rows


def format_figure4(rows: list[Figure4Row]) -> str:
    """Render Figure 4 as a text table (percentages of distributed transactions)."""

    def pct(value: float | None) -> str:
        return f"{value:7.1%}" if value is not None else "     --"

    lines = [
        "Figure 4: distributed transactions by strategy (lower is better)",
        f"{'experiment':>16} {'parts':>5} {'schism':>8} {'lookup':>8} {'range':>8} "
        f"{'manual':>8} {'replic.':>8} {'hashing':>8}  selected",
    ]
    for row in rows:
        lines.append(
            f"{row.key:>16} {row.partitions:>5} {pct(row.schism_selected):>8} "
            f"{pct(row.schism_lookup):>8} {pct(row.schism_range):>8} {pct(row.manual):>8} "
            f"{pct(row.replication):>8} {pct(row.hashing):>8}  {row.recommendation}"
        )
    return "\n".join(lines)
