"""Table 1 — sizes of the graphs built for Epinions, TPCC-50W and TPC-E.

The paper reports tuples, transactions, nodes and edges after applying the
size-reduction heuristics.  We regenerate the same table on scaled-down
instances and additionally report the original database size, so the effect
of sampling/filtering/coalescing is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.builder import GraphBuildOptions, build_tuple_graph
from repro.workload.rwsets import extract_access_trace
from repro.workloads import (
    EpinionsConfig,
    TpccConfig,
    TpceConfig,
    generate_epinions,
    generate_tpcc,
    generate_tpce,
)


@dataclass
class Table1Row:
    """One row of Table 1."""

    dataset: str
    database_tuples: int
    transactions: int
    graph_nodes: int
    graph_edges: int
    graph_tuples: int


def run_table1(scale: float = 1.0, seed: int = 0) -> list[Table1Row]:
    """Build the three graphs and report their sizes."""

    def scaled(value: int, minimum: int = 1) -> int:
        return max(minimum, int(round(value * scale)))

    bundles = [
        (
            "epinions",
            generate_epinions(
                EpinionsConfig(
                    num_users=scaled(300), num_items=scaled(300), num_communities=10, seed=seed
                ),
                num_transactions=scaled(2000),
            ),
        ),
        (
            "tpcc-50w",
            generate_tpcc(
                TpccConfig(
                    warehouses=10,
                    districts_per_warehouse=scaled(3),
                    customers_per_district=scaled(10),
                    items=scaled(100),
                    seed=seed,
                ),
                num_transactions=scaled(1000),
                name="tpcc-50w",
            ),
        ),
        (
            "tpce",
            generate_tpce(
                TpceConfig(customers=scaled(200), securities=scaled(80), seed=seed),
                num_transactions=scaled(2000),
            ),
        ),
    ]
    rows: list[Table1Row] = []
    for name, bundle in bundles:
        trace = extract_access_trace(bundle.database, bundle.workload)
        tuple_graph = build_tuple_graph(trace, bundle.database, GraphBuildOptions(seed=seed))
        rows.append(
            Table1Row(
                dataset=name,
                database_tuples=bundle.database.row_count(),
                transactions=len(trace),
                graph_nodes=tuple_graph.num_nodes,
                graph_edges=tuple_graph.num_edges,
                graph_tuples=tuple_graph.num_tuples,
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render Table 1 as a text table."""
    lines = [
        "Table 1: graph sizes",
        f"{'dataset':>12} {'db tuples':>10} {'txns':>8} {'graph tuples':>13} {'nodes':>9} {'edges':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.dataset:>12} {row.database_tuples:>10} {row.transactions:>8} "
            f"{row.graph_tuples:>13} {row.graph_nodes:>9} {row.graph_edges:>10}"
        )
    return "\n".join(lines)
