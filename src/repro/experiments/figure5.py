"""Figure 5 — graph partitioner scalability with the number of partitions.

The paper partitions the Epinions, TPCC-50W and TPC-E graphs (Table 1) into
2..512 partitions with kmetis and reports the running time: roughly flat in
the number of partitions and roughly linear in the number of edges.  We
reproduce the sweep on synthetic graphs with the same *relative* sizes
(scaled down so the sweep runs on a laptop) using our multilevel partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.model import Graph
from repro.graph.partitioner import GraphPartitioner, PartitionerOptions, cut_weight
from repro.utils.rng import SeededRng
from repro.utils.timer import Timer


@dataclass
class Figure5Row:
    """Partitioning time for one (graph, k) point."""

    graph_name: str
    num_nodes: int
    num_edges: int
    num_partitions: int
    seconds: float
    cut_weight: float


#: the three graphs of Table 1, scaled by the same factor relative to each
#: other (Epinions : TPCC-50 : TPC-E node ratio 0.6M : 2.5M : 3.0M, edge
#: ratio 5M : 65M : 100M).
DEFAULT_GRAPH_SPECS: tuple[tuple[str, int, int], ...] = (
    ("epinions", 6_000, 50_000),
    ("tpcc-50w", 25_000, 200_000),
    ("tpce", 30_000, 300_000),
)

#: smaller laptop-scale specs shared by the benchmark suite
#: (``benchmarks/bench_figure5_partitioner_scalability.py`` and
#: ``benchmarks/run_bench.py``) so the two stay in lock-step.
BENCH_GRAPH_SPECS: tuple[tuple[str, int, int], ...] = (
    ("epinions", 3_000, 25_000),
    ("tpcc-50w", 8_000, 64_000),
    ("tpce", 10_000, 100_000),
)
BENCH_PARTITION_COUNTS: tuple[int, ...] = (2, 8, 32)

#: the large-scale sweep point exercised by ``run_bench.py`` only (not the
#: pytest benchmarks): an epinions-shaped graph at 50k nodes demonstrating
#: the array-kernel pipeline beyond laptop scale.
SCALE_GRAPH_SPEC: tuple[str, int, int] = ("epinions-xl", 50_000, 400_000)
SCALE_PARTITION_COUNTS: tuple[int, ...] = (8, 32)


def synthetic_access_graph(num_nodes: int, num_edges: int, seed: int = 0) -> Graph:
    """Build a graph with local clustering similar to a tuple-access graph.

    Edges connect nodes that are close in id space (mimicking co-accessed
    tuples) with occasional long-range edges (cross-cluster transactions).
    """
    rng = SeededRng(seed)
    graph = Graph()
    graph.add_nodes(num_nodes, 1.0)
    for _ in range(num_edges):
        u = rng.randint(0, num_nodes - 1)
        if rng.bernoulli(0.9):
            offset = rng.randint(1, 50)
            v = (u + offset) % num_nodes
        else:
            v = rng.randint(0, num_nodes - 1)
        if u != v:
            graph.add_edge(u, v, 1.0)
    return graph


def run_figure5(
    partition_counts: tuple[int, ...] = (2, 4, 8, 16, 32, 64),
    graph_specs: tuple[tuple[str, int, int], ...] = DEFAULT_GRAPH_SPECS,
    seed: int = 0,
) -> list[Figure5Row]:
    """Time the partitioner over the k sweep for each graph."""
    rows: list[Figure5Row] = []
    for name, num_nodes, num_edges in graph_specs:
        graph = synthetic_access_graph(num_nodes, num_edges, seed)
        # Freeze once per graph: every point of the k sweep reuses the CSR
        # form instead of re-compiling the adjacency dicts.
        frozen = graph.freeze()
        for num_partitions in partition_counts:
            options = PartitionerOptions(seed=seed, initial_trials=4, refine_passes=2)
            partitioner = GraphPartitioner(options)
            with Timer() as timer:
                assignment = partitioner.partition(frozen, num_partitions)
            rows.append(
                Figure5Row(
                    graph_name=name,
                    num_nodes=graph.num_nodes,
                    num_edges=graph.num_edges,
                    num_partitions=num_partitions,
                    seconds=timer.elapsed,
                    cut_weight=cut_weight(frozen, assignment),
                )
            )
    return rows


def format_figure5(rows: list[Figure5Row]) -> str:
    """Render the Figure 5 series as a text table."""
    lines = [
        "Figure 5: graph partitioning time vs number of partitions",
        f"{'graph':>12} {'nodes':>8} {'edges':>9} {'k':>5} {'seconds':>9} {'cut':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.graph_name:>12} {row.num_nodes:>8} {row.num_edges:>9} "
            f"{row.num_partitions:>5} {row.seconds:>9.2f} {row.cut_weight:>10.0f}"
        )
    return "\n".join(lines)
