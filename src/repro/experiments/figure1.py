"""Figure 1 — "The Price of Distribution".

Throughput (and latency) of the simplecount workload when every transaction
is single-partition versus when every transaction is distributed across two
servers, for 1–5 servers.  The paper's headline numbers: distributed
transactions roughly halve throughput and double latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.simulation import ThroughputSimulator


@dataclass
class Figure1Row:
    """One point of Figure 1."""

    servers: int
    single_partition_tps: float
    distributed_tps: float
    single_partition_latency_ms: float
    distributed_latency_ms: float

    @property
    def throughput_ratio(self) -> float:
        """Distributed / single-partition throughput."""
        if self.single_partition_tps == 0:
            return 0.0
        return self.distributed_tps / self.single_partition_tps


def run_figure1(max_servers: int = 5, num_clients: int = 150) -> list[Figure1Row]:
    """Simulate the Figure 1 sweep for 1..max_servers servers."""
    simulator = ThroughputSimulator()
    rows: list[Figure1Row] = []
    for servers in range(1, max_servers + 1):
        local = simulator.simulate_simplecount(servers, distributed=False, num_clients=num_clients)
        remote = simulator.simulate_simplecount(servers, distributed=True, num_clients=num_clients)
        rows.append(
            Figure1Row(
                servers=servers,
                single_partition_tps=local.throughput_tps,
                distributed_tps=remote.throughput_tps,
                single_partition_latency_ms=local.latency_ms,
                distributed_latency_ms=remote.latency_ms,
            )
        )
    return rows


def format_figure1(rows: list[Figure1Row]) -> str:
    """Render the Figure 1 series as a text table."""
    lines = [
        "Figure 1: throughput of single-partition vs distributed transactions",
        f"{'servers':>8} {'single tps':>12} {'distrib tps':>12} {'ratio':>7} "
        f"{'single ms':>10} {'distrib ms':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row.servers:>8} {row.single_partition_tps:>12.0f} {row.distributed_tps:>12.0f} "
            f"{row.throughput_ratio:>7.2f} {row.single_partition_latency_ms:>10.2f} "
            f"{row.distributed_latency_ms:>11.2f}"
        )
    return "\n".join(lines)
