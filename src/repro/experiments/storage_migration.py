"""Live 2→4 resize on the real storage backend, under kills and load.

The tentpole chaos experiment for the storage migrator: a Schism-planned
TPC-C deployment runs on SQLite partition workers while a journaled
:class:`~repro.storage.migrator.StorageMigrator` resizes the cluster from
``old_partitions`` to ``new_partitions`` *during* closed-loop traffic.  The
fault schedule SIGKILLs two partition workers and the migration coordinator
itself mid-copy; the migration must resume from its durable journal (the
workers from the supervisor's restarts) and the surviving SQLite files must
pass the row-by-row oracle audits of the storage-resilience experiment:
zero lost committed updates, zero phantom rows, zero unreachable tuples,
and exact tuple conservation.

Determinism is a design requirement — CI byte-compares two runs' metric
snapshots — and real thread interleavings are not deterministic, so the
run is shaped to make every **counted** quantity interleaving-independent:

* Live traffic is split into ``rounds`` segments separated by barriers
  (the driver joins its clients between segments).  Migration phase
  *transitions* — window open, routing flip, window close, partition
  drop/complete — only ever execute at a barrier, so the dual-write window
  membership is constant within any round and ``router.dual_writes`` /
  ``storage.transactions`` scopes are pure functions of the round split.
* In-round migration ticks run from the driver's commit hook under a lock,
  and only while the current phase has more than one full batch left —
  the tick that *would* finish a phase is deferred to the next barrier.
  Each tick advances the journal identically no matter which client thread
  runs it, so the journal trajectory depends only on the commit count.
* Worker kills fire at barriers (the :class:`FaultPlan`'s ``at_commit``
  reinterpreted as a barrier index), and the run waits for the supervisor
  to restart the victim before the next round starts — so no client ever
  observes a dead worker and ``storage.retries`` stays at zero.
* The coordinator kill raises :class:`CoordinatorDeath` inside a commit-
  hook tick; ticking stops (the "migration coordinator process" is dead)
  and the next barrier re-attaches a fresh :class:`StorageMigrator` from
  the journal the sink persisted *before* the kill fired.
* The :class:`~repro.online.controller.MigrationPacer` is wired to the
  driver's live latency/abort stream (``on_outcome``) but constructed
  ``volatile`` and, by default, with no SLO budgets — wall-clock-fed
  histograms stay out of the deterministic snapshot and every tick's
  budget is the full batch.  Passing ``p99_budget_ms``/``abort_budget``
  makes the pacer actually throttle under pressure, at the cost of
  byte-determinism (tests exercise that path; CI keeps the defaults).
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.witness import WitnessedLockManager
from repro.distributed.faults import (
    CoordinatorDeath,
    CoordinatorKill,
    FaultPlan,
    WorkerKill,
)
from repro.obs import trace_span
from repro.online.controller import MigrationPacer, PacingOptions
from repro.online.migration import FileJournalSink
from repro.pipeline import Pipeline, SchismOptions
from repro.routing.lookup import build_lookup_table
from repro.routing.router import Router
from repro.storage import (
    ClosedLoopDriver,
    RetryOptions,
    SqliteStorageCluster,
    StorageCoordinator,
    StorageMigrationSession,
    StorageMigrator,
    plan_storage_resize,
)
from repro.experiments.storage_resilience import _audit_point
from repro.workload.trace import Workload
from repro.workloads import TpccConfig, generate_tpcc

#: how long (seconds) a barrier waits for a killed worker's replacement.
RESTART_WAIT_S = 30.0


@dataclass
class StorageMigrationReport:
    """Outcome of one resize-under-chaos run."""

    seed: int
    old_partitions: int
    new_partitions: int
    #: live traffic accounting (summed over the rounds).
    total: int = 0
    committed: int = 0
    aborted: int = 0
    distributed_fraction: float = 0.0
    #: migration accounting (from the final journal).
    final_state: str = "planned"
    copies_planned: int = 0
    drops_planned: int = 0
    copies_done: int = 0
    drops_done: int = 0
    journal_records: int = 0
    ticks: int = 0
    #: chaos accounting.
    worker_kills_planned: int = 0
    worker_kills_fired: int = 0
    coordinator_kills_planned: int = 0
    coordinator_deaths: int = 0
    migrator_reattaches: int = 0
    restarts: int = 0
    #: consistency audits over the surviving SQLite files.
    lost_updates: int = 0
    phantom_rows: int = 0
    unreachable_tuples: int = 0
    tuple_conservation: bool = True
    #: runtime lock-order witness over the shared client/migrator manager
    #: (must be zero: no executed acquisition broke the global sorted order).
    lock_acquisitions: int = 0
    lock_order_out_of_order: int = 0
    #: wall-clock measurements (volatile; excluded from the bench payload).
    wall_s: float = 0.0
    throughput_txn_s: float = 0.0
    latency_p99_ms: float = 0.0

    @property
    def label(self) -> str:
        return f"resize-{self.old_partitions}to{self.new_partitions}"

    @property
    def violations(self) -> list[str]:
        """Acceptance failures (empty = the resize survived the chaos)."""
        failures = []
        if self.final_state != "completed":
            failures.append(f"{self.label}: migration ended {self.final_state!r}")
        if self.copies_done != self.copies_planned:
            failures.append(
                f"{self.label}: {self.copies_done}/{self.copies_planned} copies executed"
            )
        if self.drops_done != self.drops_planned:
            failures.append(
                f"{self.label}: {self.drops_done}/{self.drops_planned} drops executed"
            )
        if self.lost_updates:
            failures.append(f"{self.label}: {self.lost_updates} lost updates")
        if self.phantom_rows:
            failures.append(f"{self.label}: {self.phantom_rows} phantom rows")
        if self.unreachable_tuples:
            failures.append(
                f"{self.label}: {self.unreachable_tuples} unreachable tuples"
            )
        if not self.tuple_conservation:
            failures.append(f"{self.label}: tuple set not conserved")
        if self.worker_kills_fired != self.worker_kills_planned:
            failures.append(
                f"{self.label}: {self.worker_kills_fired}/{self.worker_kills_planned} "
                "worker kills fired"
            )
        if self.coordinator_deaths != self.coordinator_kills_planned:
            failures.append(
                f"{self.label}: {self.coordinator_deaths}/{self.coordinator_kills_planned} "
                "coordinator kills fired"
            )
        if self.coordinator_deaths and not self.migrator_reattaches:
            failures.append(f"{self.label}: coordinator died but never re-attached")
        if self.restarts < self.worker_kills_fired:
            failures.append(
                f"{self.label}: {self.worker_kills_fired} kills but only "
                f"{self.restarts} restarts"
            )
        if self.committed == 0:
            failures.append(f"{self.label}: no transaction committed")
        if self.committed + self.aborted != self.total:
            failures.append(f"{self.label}: run did not complete every transaction")
        if self.lock_order_out_of_order:
            failures.append(
                f"{self.label}: {self.lock_order_out_of_order} out-of-order "
                "lock acquisition(s) witnessed"
            )
        return failures

    def to_payload(self) -> dict:
        """Deterministic summary for the bench report (no wall-clock fields)."""
        return {
            "label": self.label,
            "seed": self.seed,
            "old_partitions": self.old_partitions,
            "new_partitions": self.new_partitions,
            "total": self.total,
            "committed": self.committed,
            "aborted": self.aborted,
            "distributed_fraction": round(self.distributed_fraction, 6),
            "final_state": self.final_state,
            "copies_planned": self.copies_planned,
            "drops_planned": self.drops_planned,
            "copies_done": self.copies_done,
            "drops_done": self.drops_done,
            "journal_records": self.journal_records,
            "worker_kills_fired": self.worker_kills_fired,
            "coordinator_deaths": self.coordinator_deaths,
            "migrator_reattaches": self.migrator_reattaches,
            "restarts": self.restarts,
            "lost_updates": self.lost_updates,
            "phantom_rows": self.phantom_rows,
            "unreachable_tuples": self.unreachable_tuples,
            "tuple_conservation": self.tuple_conservation,
            "lock_order_out_of_order": self.lock_order_out_of_order,
            "violations": self.violations,
        }


def _split_rounds(transactions: list, rounds: int) -> list[list]:
    """Split the live slice into ``rounds`` near-equal contiguous segments."""
    size, remainder = divmod(len(transactions), rounds)
    segments, start = [], 0
    for index in range(rounds):
        end = start + size + (1 if index < remainder else 0)
        segments.append(transactions[start:end])
        start = end
    return segments


def run_storage_migration(
    seed: int = 0,
    warehouses: int = 2,
    training_transactions: int = 200,
    live_transactions: int = 96,
    num_clients: int = 4,
    old_partitions: int = 2,
    new_partitions: int = 4,
    rounds: int = 4,
    batch_size: int = 4,
    coordinator_kill_record: int = 5,
    p99_budget_ms: float | None = None,
    abort_budget: float | None = None,
    directory: str | Path | None = None,
    retry_options: RetryOptions | None = None,
) -> StorageMigrationReport:
    """Resize a live Schism-deployed TPC-C cluster under the kill schedule.

    SQLite files (and the migration journal) live under ``directory`` — a
    fresh temporary directory when omitted, removed afterwards.  The
    report's :attr:`~StorageMigrationReport.violations` is the CI gate.
    """
    retry_options = retry_options or RetryOptions(timeout_ms=500, max_retries=4)
    report = StorageMigrationReport(
        seed=seed,
        old_partitions=old_partitions,
        new_partitions=new_partitions,
        worker_kills_planned=2,
        coordinator_kills_planned=1,
    )
    with trace_span(
        "experiment.storage_migration",
        seed=seed,
        old_partitions=old_partitions,
        new_partitions=new_partitions,
    ):
        cleanup = None
        if directory is None:
            cleanup = tempfile.TemporaryDirectory(prefix="repro-storage-mig-")
            directory = cleanup.name
        try:
            _run(
                report,
                Path(directory),
                seed=seed,
                warehouses=warehouses,
                training_transactions=training_transactions,
                live_transactions=live_transactions,
                num_clients=num_clients,
                rounds=rounds,
                batch_size=batch_size,
                coordinator_kill_record=coordinator_kill_record,
                p99_budget_ms=p99_budget_ms,
                abort_budget=abort_budget,
                retry_options=retry_options,
            )
        finally:
            if cleanup is not None:
                cleanup.cleanup()
    return report


def _run(
    report: StorageMigrationReport,
    base: Path,
    *,
    seed: int,
    warehouses: int,
    training_transactions: int,
    live_transactions: int,
    num_clients: int,
    rounds: int,
    batch_size: int,
    coordinator_kill_record: int,
    p99_budget_ms: float | None,
    abort_budget: float | None,
    retry_options: RetryOptions,
) -> None:
    """The orchestration body (split out so the temp-dir wrapper stays small)."""
    old_k, new_k = report.old_partitions, report.new_partitions

    # -- deploy the starting cluster at old_k via the Schism plan ------------------
    config = TpccConfig(
        warehouses=warehouses,
        districts_per_warehouse=2,
        customers_per_district=8,
        items=40,
        seed=seed,
    )
    bundle = generate_tpcc(
        config, num_transactions=training_transactions + live_transactions
    )
    training = Workload(
        f"{bundle.name}-train",
        bundle.workload.transactions[:training_transactions],
    )
    live = bundle.workload.transactions[training_transactions:]
    database = bundle.database

    run = Pipeline(SchismOptions(num_partitions=old_k)).run(database, training)
    plan = run.plan(created_by="experiments.storage_migration", workload=bundle.name)
    strategy = plan.deployment_strategy("hash")
    lookup_table = build_lookup_table(strategy.assignment)
    router = Router(strategy, database.schema, lookup_table)

    faults = FaultPlan(
        seed=seed,
        coordinator_kills=(CoordinatorKill(at_record=coordinator_kill_record),),
        # at_commit doubles as the *barrier index* here: kill partition 0
        # after round 1 and the highest new partition after round 2.
        worker_kills=(
            WorkerKill(partition=0, at_commit=1),
            WorkerKill(partition=new_k - 1, at_commit=2),
        ),
    )
    injector = faults.build()

    cluster = SqliteStorageCluster.from_database(base / "cluster", database, strategy)
    cluster.start()
    started = time.monotonic()
    try:
        coordinator = StorageCoordinator(
            cluster, router, oracle=database, retry_options=retry_options, seed=seed
        )
        # Runtime lock-order witness over the shared manager: the migrator is
        # handed the *same* (wrapped) instance below, so client commits and
        # migration batches are certified against one acquisition graph.
        witness = WitnessedLockManager(coordinator.locks)
        coordinator.locks = witness

        # -- plan the resize and attach the journaled migrator ---------------------
        journal = plan_storage_resize(
            cluster,
            new_k,
            migration_id=f"resize-{old_k}to{new_k}-seed{seed}",
            retry_options=retry_options,
            seed=seed,
        )
        report.copies_planned = len(journal.plan.copies)
        report.drops_planned = len(journal.plan.drops)
        sink = FileJournalSink(base / "resize.journal")
        sink.write(journal.dumps())
        pacer = MigrationPacer(
            PacingOptions(
                max_steps=batch_size,
                throttled_steps=max(1, batch_size // 2),
                p99_latency_budget=p99_budget_ms,
                abort_rate_budget=abort_budget,
            ),
            volatile=True,
        )

        def make_session(j) -> StorageMigrationSession:
            migrator = StorageMigrator(
                cluster,
                router,
                j,
                sink=sink,
                batch_size=batch_size,
                injector=injector,
                locks=coordinator.locks,
                retry_options=retry_options,
                seed=seed,
            )
            return StorageMigrationSession(migrator, pacer=pacer)

        holder = {"session": make_session(journal), "dead": False}
        tick_lock = threading.Lock()

        def reattach() -> None:
            """Restart the "migration coordinator" from the durable journal."""
            holder["session"] = make_session(sink.load())
            holder["dead"] = False
            report.migrator_reattaches += 1

        def in_round_safe(j) -> bool:
            """True while a tick cannot cross a phase boundary (see module doc)."""
            return (
                j.state == "copying"
                and j.copies_done + batch_size < len(j.plan.copies)
            ) or (
                j.state == "dropping"
                and j.drops_done + batch_size < len(j.plan.drops)
            )

        def on_commit(_commits: int) -> None:
            with tick_lock:
                session = holder["session"]
                if holder["dead"] or session.done:
                    return
                if not in_round_safe(session.journal):
                    return
                try:
                    session.tick()
                except CoordinatorDeath:
                    holder["dead"] = True

        def barrier(index: int) -> None:
            """Between rounds: fire kills, revive the migrator, cross phases."""
            for kill in injector.due_worker_kills(index):
                cluster.kill_worker(kill.partition)
                deadline = time.monotonic() + RESTART_WAIT_S
                while not cluster.supervisor.ping(kill.partition):
                    if time.monotonic() > deadline:
                        raise RuntimeError(
                            f"partition {kill.partition} not restarted at barrier {index}"
                        )
                    time.sleep(0.02)
            if holder["dead"]:
                reattach()
            # Advance through any phase transition (window open, flip, window
            # close, resize finalisation) while no client traffic is flowing,
            # stopping as soon as the journal is back in mid-phase territory.
            while True:
                session = holder["session"]
                if session.done or in_round_safe(session.journal):
                    return
                try:
                    session.tick(idle=True)
                except CoordinatorDeath:
                    reattach()

        driver = ClosedLoopDriver(
            coordinator,
            num_clients=num_clients,
            on_commit=on_commit,
            on_outcome=pacer.record,
        )

        # -- the run: barrier, round, barrier, round, ... then drain ---------------
        barrier(0)  # opens the dual-write window before any live traffic
        for index, segment in enumerate(_split_rounds(live, rounds)):
            round_report = driver.run(segment, txn_id_prefix=f"live-r{index}")
            report.total += round_report.total
            report.committed += round_report.committed
            report.aborted += round_report.aborted
            report.distributed_fraction += round_report.distributed_total
            report.latency_p99_ms = max(
                report.latency_p99_ms, round_report.latency_quantile(0.99)
            )
            barrier(index + 1)
        while not holder["session"].done:
            try:
                holder["session"].run_to_completion()
            except CoordinatorDeath:
                reattach()

        final = holder["session"].journal
        report.final_state = final.state
        report.copies_done = final.copies_done
        report.drops_done = final.drops_done
        report.journal_records = final.records
        report.ticks = holder["session"].ticks
        report.distributed_fraction = (
            report.distributed_fraction / report.total if report.total else 0.0
        )
        report.worker_kills_fired = injector.statistics.workers_killed
        report.coordinator_deaths = injector.statistics.coordinator_deaths
        report.restarts = cluster.restart_count()
        report.lock_acquisitions = witness.acquisitions
        report.lock_order_out_of_order = witness.out_of_order
        report.wall_s = time.monotonic() - started
        report.throughput_txn_s = (
            report.committed / report.wall_s if report.wall_s > 0 else 0.0
        )
    finally:
        cluster.close()

    _audit_point(cluster, router, database, report)


def format_storage_migration(report: StorageMigrationReport) -> str:
    """Human-readable summary (wall-clock lines marked volatile)."""
    lines = [
        f"Live resize on real storage: {report.old_partitions} -> "
        f"{report.new_partitions} partitions under kills (seed {report.seed})",
        "",
        f"  migration : {report.final_state}  "
        f"copies {report.copies_done}/{report.copies_planned}  "
        f"drops {report.drops_done}/{report.drops_planned}  "
        f"journal records {report.journal_records}  ticks {report.ticks}",
        f"  traffic   : {report.total} txns  {report.committed} committed  "
        f"{report.aborted} aborted  distributed {report.distributed_fraction:.1%}",
        f"  chaos     : {report.worker_kills_fired} worker kills  "
        f"{report.coordinator_deaths} coordinator deaths  "
        f"{report.migrator_reattaches} re-attaches  {report.restarts} restarts",
        f"  audits    : lost {report.lost_updates}  phantom {report.phantom_rows}  "
        f"unreachable {report.unreachable_tuples}  "
        f"conserved {report.tuple_conservation}",
        "",
        f"  wall-clock (volatile): {report.wall_s:.2f}s  "
        f"{report.throughput_txn_s:.1f} txn/s  p99 {report.latency_p99_ms:.1f} ms",
        "",
    ]
    if report.violations:
        lines.append("VIOLATIONS:")
        lines.extend(f"  {violation}" for violation in report.violations)
    else:
        lines.append(
            "audits clean: resize completed across two worker kills and a "
            "coordinator kill with zero lost updates, phantoms, or "
            "unreachable tuples"
        )
    return "\n".join(lines)
