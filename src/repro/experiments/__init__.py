"""Experiment harness: one module per figure/table of the paper's evaluation.

Every experiment returns plain dataclasses/dicts and has a ``format_*``
helper that prints the same rows/series the paper reports, so the benchmark
suite and the examples can share them.  Scales default to laptop-friendly
sizes; pass ``scale`` or explicit configs to approach paper sizes.
"""

from repro.experiments.figure1 import Figure1Row, format_figure1, run_figure1
from repro.experiments.figure4 import (
    Figure4Row,
    format_figure4,
    run_figure4,
    run_figure4_experiment,
    FIGURE4_EXPERIMENTS,
)
from repro.experiments.figure5 import Figure5Row, format_figure5, run_figure5
from repro.experiments.figure6 import Figure6Row, format_figure6, run_figure6
from repro.experiments.online_drift import (
    ElasticScalingReport,
    OnlineDriftReport,
    ReadHotDriftReport,
    format_elastic_scaling,
    format_online_drift,
    format_read_hot_drift,
    run_elastic_scaling,
    run_online_drift,
    run_read_hot_drift,
)
from repro.experiments.resilience import (
    ResilienceReport,
    format_resilience,
    run_resilience,
)
from repro.experiments.storage_migration import (
    StorageMigrationReport,
    format_storage_migration,
    run_storage_migration,
)
from repro.experiments.storage_resilience import (
    StorageResilienceReport,
    format_storage_resilience,
    run_storage_resilience,
)
from repro.experiments.table1 import Table1Row, format_table1, run_table1

__all__ = [
    "FIGURE4_EXPERIMENTS",
    "ElasticScalingReport",
    "Figure1Row",
    "Figure4Row",
    "Figure5Row",
    "Figure6Row",
    "OnlineDriftReport",
    "ReadHotDriftReport",
    "ResilienceReport",
    "StorageMigrationReport",
    "StorageResilienceReport",
    "Table1Row",
    "format_elastic_scaling",
    "format_figure1",
    "format_figure4",
    "format_figure5",
    "format_figure6",
    "format_online_drift",
    "format_read_hot_drift",
    "format_resilience",
    "format_storage_migration",
    "format_storage_resilience",
    "format_table1",
    "run_elastic_scaling",
    "run_figure1",
    "run_figure4",
    "run_figure4_experiment",
    "run_figure5",
    "run_figure6",
    "run_online_drift",
    "run_read_hot_drift",
    "run_resilience",
    "run_storage_migration",
    "run_storage_resilience",
    "run_table1",
]
