"""Online-drift experiment: adaptation cost vs. full re-partitioning.

Not a figure from the paper — the paper stops at the one-shot pipeline and
explicitly flags workload drift as an open problem.  This experiment closes
the loop: train offline on phase 0 of a rotating-hotspot workload, stream
phase 1 through the :class:`~repro.online.controller.OnlineSchism`
controller, and compare

* the **budgeted** adaptation (warm-started, migration-cost-aware), against
* a **from-scratch** re-partition of the same maintained graph
  (label-aligned so moves are genuine),

on two axes: the distributed-transaction fraction recovered on the drifted
traffic, and the number of tuples migrated to get there.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import evaluate_strategy
from repro.core.schism import Schism, SchismOptions, start_online
from repro.core.strategies import LookupTablePartitioning
from repro.online.controller import OnlineOptions
from repro.online.monitor import MonitorOptions
from repro.online.repartitioner import RepartitionOptions
from repro.workload.rwsets import extract_access_trace
from repro.workloads.drifting import generate_rotating_hotspot


@dataclass
class OnlineDriftReport:
    """Outcome of one online-drift run."""

    num_partitions: int
    #: distributed fraction of the drifted traffic before any adaptation.
    distributed_before: float
    #: after the budgeted adaptation.
    distributed_budgeted: float
    #: what a from-scratch re-partition would have achieved.
    distributed_full: float
    tuples_moved_budgeted: int
    tuples_moved_full: int
    cut_before: float
    cut_budgeted: float
    cut_full: float
    drift_detected: bool

    @property
    def move_fraction(self) -> float:
        """Budgeted moves as a fraction of from-scratch moves."""
        if self.tuples_moved_full == 0:
            return 0.0
        return self.tuples_moved_budgeted / self.tuples_moved_full


def run_online_drift(
    num_partitions: int = 4,
    num_rows: int = 1200,
    transactions_per_phase: int = 800,
    uniform_fraction: float = 0.3,
    seed: int = 0,
) -> OnlineDriftReport:
    """Run the drift-and-adapt scenario and return the comparison report."""
    bundle = generate_rotating_hotspot(
        num_rows=num_rows,
        transactions_per_phase=transactions_per_phase,
        num_phases=2,
        uniform_fraction=uniform_fraction,
        seed=seed,
    )
    database = bundle.database
    offline = Schism(SchismOptions(num_partitions=num_partitions)).run(
        database, bundle.training
    )
    options = OnlineOptions(
        monitor=MonitorOptions(window_size=400, min_window_fill=100),
        repartition=RepartitionOptions(
            migration_cost_weight=0.25, imbalance=0.10, max_passes=12
        ),
        batch_size=100,
    )
    controller = start_online(offline, database, options)
    drifted_trace = extract_access_trace(database, bundle.phases[1])
    observation = controller.observe(drifted_trace, auto_adapt=False)
    distributed_before = evaluate_strategy(
        controller.strategy, drifted_trace
    ).distributed_fraction
    drift_detected = any(report.drifted for report in observation.drift_reports)

    # From-scratch baseline: previewed (not applied), labels aligned.
    tuples = controller.maintainer.tuples()
    full = controller.preview_full_repartition()
    full_strategy = LookupTablePartitioning(
        num_partitions,
        controller.merged_assignment(tuples, full.assignment),
        "hash",
    )
    distributed_full = evaluate_strategy(full_strategy, drifted_trace).distributed_fraction

    record = controller.adapt()
    distributed_budgeted = evaluate_strategy(
        controller.strategy, drifted_trace
    ).distributed_fraction
    return OnlineDriftReport(
        num_partitions=num_partitions,
        distributed_before=distributed_before,
        distributed_budgeted=distributed_budgeted,
        distributed_full=distributed_full,
        tuples_moved_budgeted=record.repartition.num_moved,
        tuples_moved_full=full.num_moved,
        cut_before=record.repartition.cut_before,
        cut_budgeted=record.repartition.cut_after,
        cut_full=full.cut_after,
        drift_detected=drift_detected,
    )


def format_online_drift(report: OnlineDriftReport) -> str:
    """Render the comparison as a text table."""
    lines = [
        "Online drift: budgeted adaptation vs. from-scratch re-partition",
        f"{'':>24} {'distributed':>12} {'tuples moved':>13} {'cut':>8}",
        f"{'before adaptation':>24} {report.distributed_before:>12.1%} "
        f"{'-':>13} {report.cut_before:>8.0f}",
        f"{'budgeted adaptation':>24} {report.distributed_budgeted:>12.1%} "
        f"{report.tuples_moved_budgeted:>13} {report.cut_budgeted:>8.0f}",
        f"{'from-scratch baseline':>24} {report.distributed_full:>12.1%} "
        f"{report.tuples_moved_full:>13} {report.cut_full:>8.0f}",
        f"budgeted migration = {report.move_fraction:.1%} of from-scratch "
        f"(drift detected: {report.drift_detected})",
    ]
    return "\n".join(lines)
