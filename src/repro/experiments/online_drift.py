"""Online-drift experiments: adaptation cost, replication, elasticity.

Not figures from the paper — the paper stops at the one-shot pipeline and
explicitly flags workload drift as an open problem.  Three experiments close
the loop:

* :func:`run_online_drift` — train offline on phase 0 of a rotating-hotspot
  workload, stream phase 1 through the
  :class:`~repro.online.controller.OnlineSchism` controller, and compare the
  **budgeted** adaptation (warm-started, migration-cost-aware) against a
  **from-scratch** re-partition of the same maintained graph (label-aligned
  so moves are genuine) on distributed fraction recovered vs. tuples moved.
* :func:`run_read_hot_drift` — phase 1 of a read-hot-skew workload makes a
  few tuples read-hot; the **replication-aware** adaptation widens them into
  replica sets (at a bounded migration budget) and the distributed fraction
  of the drifted traffic collapses, while the rare writes to the replicated
  tuples keep paying the all-replica consistency cost.
* :func:`run_elastic_scaling` — offered load rises then falls; the elastic
  policy grows and then shrinks ``num_partitions`` through the live
  copy-before-drop path, keeping every tuple reachable throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost import evaluate_strategy
from repro.core.schism import start_online
from repro.core.strategies import LookupTablePartitioning
from repro.online.controller import ElasticOptions, OnlineOptions, OnlineSchism
from repro.online.monitor import MonitorOptions
from repro.online.repartitioner import RepartitionOptions
from repro.pipeline import Pipeline, SchismOptions
from repro.workload.rwsets import extract_access_trace
from repro.workload.trace import iter_chunks
from repro.workloads.drifting import generate_read_hot_skew, generate_rotating_hotspot


def _deploy_offline(
    database, training_workload, num_partitions: int, options: OnlineOptions,
    workload_name: str | None = None,
) -> OnlineSchism:
    """Run the offline pipeline and deploy its plan as a live controller.

    The offline->online handoff every experiment here shares: the pipeline
    produces a :class:`~repro.pipeline.plan.PartitionPlan`, ``start_online``
    consumes it, and the training trace warms the monitor/maintainer so the
    loop starts from what the offline phase learned.
    """
    run = Pipeline(SchismOptions(num_partitions=num_partitions)).run(
        database, training_workload
    )
    plan = run.plan(created_by="experiments.online_drift", workload=workload_name)
    return start_online(
        plan, database, options, warm_up_trace=run.state.training_trace
    )


@dataclass
class OnlineDriftReport:
    """Outcome of one online-drift run."""

    num_partitions: int
    #: distributed fraction of the drifted traffic before any adaptation.
    distributed_before: float
    #: after the budgeted adaptation.
    distributed_budgeted: float
    #: what a from-scratch re-partition would have achieved.
    distributed_full: float
    tuples_moved_budgeted: int
    tuples_moved_full: int
    cut_before: float
    cut_budgeted: float
    cut_full: float
    drift_detected: bool

    @property
    def move_fraction(self) -> float:
        """Budgeted moves as a fraction of from-scratch moves."""
        if self.tuples_moved_full == 0:
            return 0.0
        return self.tuples_moved_budgeted / self.tuples_moved_full


def run_online_drift(
    num_partitions: int = 4,
    num_rows: int = 1200,
    transactions_per_phase: int = 800,
    uniform_fraction: float = 0.3,
    seed: int = 0,
) -> OnlineDriftReport:
    """Run the drift-and-adapt scenario and return the comparison report."""
    bundle = generate_rotating_hotspot(
        num_rows=num_rows,
        transactions_per_phase=transactions_per_phase,
        num_phases=2,
        uniform_fraction=uniform_fraction,
        seed=seed,
    )
    database = bundle.database
    options = OnlineOptions(
        monitor=MonitorOptions(window_size=400, min_window_fill=100),
        repartition=RepartitionOptions(
            migration_cost_weight=0.25, imbalance=0.10, max_passes=12
        ),
        batch_size=100,
    )
    controller = _deploy_offline(
        database, bundle.training, num_partitions, options, bundle.name
    )
    drifted_trace = extract_access_trace(database, bundle.phases[1])
    observation = controller.observe(drifted_trace, auto_adapt=False)
    distributed_before = evaluate_strategy(
        controller.strategy, drifted_trace
    ).distributed_fraction
    drift_detected = any(report.drifted for report in observation.drift_reports)

    # From-scratch baseline: previewed (not applied), labels aligned.
    tuples = controller.maintainer.tuples()
    full = controller.preview_full_repartition()
    full_strategy = LookupTablePartitioning(
        num_partitions,
        controller.merged_assignment(tuples, full.assignment),
        "hash",
    )
    distributed_full = evaluate_strategy(full_strategy, drifted_trace).distributed_fraction

    record = controller.adapt()
    distributed_budgeted = evaluate_strategy(
        controller.strategy, drifted_trace
    ).distributed_fraction
    return OnlineDriftReport(
        num_partitions=num_partitions,
        distributed_before=distributed_before,
        distributed_budgeted=distributed_budgeted,
        distributed_full=distributed_full,
        tuples_moved_budgeted=record.repartition.num_moved,
        tuples_moved_full=full.num_moved,
        cut_before=record.repartition.cut_before,
        cut_budgeted=record.repartition.cut_after,
        cut_full=full.cut_after,
        drift_detected=drift_detected,
    )


@dataclass
class ReadHotDriftReport:
    """Outcome of one replication-aware read-hot drift run."""

    num_partitions: int
    #: distributed fraction of the drifted traffic before any adaptation.
    distributed_before: float
    #: after the replication-aware budgeted adaptation.
    distributed_after: float
    #: hot tuples the adaptation left replicated / total hot tuples.
    hot_replicated: int
    num_hot: int
    #: tuples whose replica set changed, and the copies that cost.
    tuples_changed: int
    replica_copies: int
    migration_budget: float
    migration_cost: float
    drift_detected: bool
    #: mean decayed read fraction of the hot tuples as the monitor saw them
    #: (the signal that makes them replication candidates).
    monitor_hot_read_fraction: float = 0.0

    @property
    def improvement(self) -> float:
        """How many times smaller the distributed fraction became."""
        if self.distributed_after <= 0.0:
            return float("inf")
        return self.distributed_before / self.distributed_after


def run_read_hot_drift(
    num_partitions: int = 4,
    num_rows: int = 1200,
    transactions_per_phase: int = 800,
    num_hot: int = 8,
    migration_budget: float = 120.0,
    seed: int = 0,
) -> ReadHotDriftReport:
    """Run the read-hot drift scenario through the replication-aware loop.

    The migration budget bounds what the adaptation may copy; the hot set is
    small, so widening it into replica sets fits comfortably while a
    whole-placement reshuffle would not.
    """
    bundle = generate_read_hot_skew(
        num_rows=num_rows,
        transactions_per_phase=transactions_per_phase,
        num_hot=num_hot,
        seed=seed,
    )
    database = bundle.database
    options = OnlineOptions(
        monitor=MonitorOptions(window_size=400, min_window_fill=100),
        repartition=RepartitionOptions(
            migration_cost_weight=0.25,
            imbalance=0.10,
            max_passes=12,
            migration_budget=migration_budget,
        ),
        batch_size=100,
        # The scenario writes each hot tuple ~5% of the time; a couple of
        # unlucky draws can push a tuple's decayed read fraction just below
        # the 0.9 default, so give the candidate filter a little slack.
        replication_min_read_fraction=0.85,
    )
    controller = _deploy_offline(
        database, bundle.training, num_partitions, options, bundle.name
    )
    drifted = extract_access_trace(database, bundle.phases[1])
    observation = controller.observe(drifted, auto_adapt=False)
    distributed_before = evaluate_strategy(
        controller.strategy, drifted
    ).distributed_fraction
    record = controller.adapt()
    distributed_after = evaluate_strategy(
        controller.strategy, drifted
    ).distributed_fraction
    hot_keys = bundle.metadata["hot_keys"]
    assignment = controller.strategy.assignment
    from repro.catalog.tuples import TupleId

    hot_replicated = sum(
        1
        for key in hot_keys
        if assignment.is_replicated(TupleId("usertable", (key,)))
    )
    monitor = controller.monitor
    hot_read_fraction = sum(
        monitor.read_fraction(TupleId("usertable", (key,))) for key in hot_keys
    ) / len(hot_keys)
    return ReadHotDriftReport(
        num_partitions=num_partitions,
        distributed_before=distributed_before,
        distributed_after=distributed_after,
        hot_replicated=hot_replicated,
        num_hot=num_hot,
        tuples_changed=record.plan.tuples_changed,
        replica_copies=record.plan.replicas_added,
        migration_budget=migration_budget,
        migration_cost=record.repartition.migration_cost,
        drift_detected=any(report.drifted for report in observation.drift_reports),
        monitor_hot_read_fraction=hot_read_fraction,
    )


def format_read_hot_drift(report: ReadHotDriftReport) -> str:
    """Render the replication-aware adaptation outcome as text."""
    return "\n".join(
        [
            "Read-hot drift: replication-aware adaptation",
            f"  distributed fraction: {report.distributed_before:.1%} -> "
            f"{report.distributed_after:.1%} ({report.improvement:.1f}x better)",
            f"  hot tuples replicated: {report.hot_replicated}/{report.num_hot} "
            f"(monitor-observed read fraction {report.monitor_hot_read_fraction:.1%})",
            f"  tuples changed: {report.tuples_changed} "
            f"({report.replica_copies} replica copies, "
            f"cost {report.migration_cost:.0f} of budget {report.migration_budget:.0f})",
            f"  drift detected: {report.drift_detected}",
        ]
    )


@dataclass
class ElasticScalingReport:
    """Outcome of one elastic grow-then-shrink run."""

    initial_partitions: int
    #: partition count after each resize, in order.
    partition_trajectory: list[int] = field(default_factory=list)
    #: (old, new, copies, drops) per resize.
    resizes: list[tuple[int, int, int, int]] = field(default_factory=list)
    #: tuples stored in the cluster that the router could not reach, checked
    #: after every resize (must stay 0 throughout).
    unreachable_tuples: int = 0

    @property
    def grew(self) -> bool:
        """Whether at least one resize added partitions."""
        return any(new > old for old, new, _, _ in self.resizes)

    @property
    def shrank(self) -> bool:
        """Whether at least one resize removed partitions."""
        return any(new < old for old, new, _, _ in self.resizes)


def run_elastic_scaling(
    num_partitions: int = 2,
    num_rows: int = 600,
    transactions_per_phase: int = 900,
    high_batch: int = 300,
    low_batch: int = 30,
    target_rate_per_partition: float = 50.0,
    seed: int = 0,
) -> ElasticScalingReport:
    """Offered load rises then falls; the elastic policy follows it.

    Phase-1 traffic of a rotating-hotspot stream is replayed twice: first in
    ``high_batch``-sized epochs (high offered load — the policy grows), then
    in ``low_batch``-sized epochs (load collapse — the policy shrinks).
    Batches are fed one at a time, so the whole cluster is audited for
    unreachable tuples immediately after every batch that resized.
    """
    bundle = generate_rotating_hotspot(
        num_rows=num_rows,
        transactions_per_phase=transactions_per_phase,
        num_phases=2,
        hot_window=150,
        seed=seed,
    )
    database = bundle.database
    options = OnlineOptions(
        monitor=MonitorOptions(window_size=400, min_window_fill=100),
        repartition=RepartitionOptions(migration_cost_weight=0.25, imbalance=0.10),
        elastic=ElasticOptions(
            enabled=True,
            target_rate_per_partition=target_rate_per_partition,
            min_partitions=2,
            max_partitions=16,
            cooldown_batches=2,
        ),
        batch_size=100,
    )
    controller = _deploy_offline(
        database, bundle.training, num_partitions, options, bundle.name
    )
    drifted = extract_access_trace(database, bundle.phases[1])
    report = ElasticScalingReport(initial_partitions=controller.num_partitions)

    def audit() -> int:
        unreachable = 0
        for tuple_id in controller.cluster.all_tuple_ids():
            placement = controller.strategy.partitions_for_tuple(tuple_id)
            if not any(
                controller.cluster.has_tuple(tuple_id, part) for part in placement
            ):
                unreachable += 1
        return unreachable

    for batch_size in (high_batch, low_batch):
        for batch in iter_chunks(drifted.accesses, batch_size):
            observation = controller.observe_batches([batch])
            for resize in observation.resizes:
                report.partition_trajectory.append(resize.new_partitions)
                report.resizes.append(
                    (
                        resize.old_partitions,
                        resize.new_partitions,
                        resize.migration.copies,
                        resize.migration.drops,
                    )
                )
            if observation.resizes:
                report.unreachable_tuples += audit()
    return report


def format_elastic_scaling(report: ElasticScalingReport) -> str:
    """Render the elastic trajectory as text."""
    trajectory = " -> ".join(
        str(k) for k in [report.initial_partitions, *report.partition_trajectory]
    )
    lines = [
        "Elastic scaling: load-driven partition count",
        f"  partitions: {trajectory}",
    ]
    for old, new, copies, drops in report.resizes:
        direction = "grow" if new > old else "shrink"
        lines.append(f"  {direction} {old} -> {new}: {copies} copies, {drops} drops")
    lines.append(f"  unreachable tuples observed: {report.unreachable_tuples}")
    return "\n".join(lines)


def format_online_drift(report: OnlineDriftReport) -> str:
    """Render the comparison as a text table."""
    lines = [
        "Online drift: budgeted adaptation vs. from-scratch re-partition",
        f"{'':>24} {'distributed':>12} {'tuples moved':>13} {'cut':>8}",
        f"{'before adaptation':>24} {report.distributed_before:>12.1%} "
        f"{'-':>13} {report.cut_before:>8.0f}",
        f"{'budgeted adaptation':>24} {report.distributed_budgeted:>12.1%} "
        f"{report.tuples_moved_budgeted:>13} {report.cut_budgeted:>8.0f}",
        f"{'from-scratch baseline':>24} {report.distributed_full:>12.1%} "
        f"{report.tuples_moved_full:>13} {report.cut_full:>8.0f}",
        f"budgeted migration = {report.move_fraction:.1%} of from-scratch "
        f"(drift detected: {report.drift_detected})",
    ]
    return "\n".join(lines)
