"""Real-storage resilience under process kills: the chaos experiment.

A 2- and 4-partition TPC-C deployment runs on the **real** storage backend —
every partition a SQLite file owned by a worker process — under sustained
concurrent closed-loop clients, while the seeded
:class:`~repro.distributed.faults.FaultPlan` ``SIGKILL``\\ s two worker
processes at chosen commit ticks.  The supervisor must restart every killed
worker (WAL recovery on reopen), the coordinator's retry/backoff/fallback
machinery must ride through the outage windows, and at the end the files on
disk are audited row by row against a single-node oracle that mirrored every
committed transaction:

* **zero lost committed updates** — each replica of each tuple equals the
  oracle row (a write acknowledged but not durably applied, or applied twice
  through a retry, would show up here);
* **zero unreachable tuples** — every stored tuple is resident at a
  partition its routed placement names;
* **tuple conservation** — the cluster's tuple set equals the oracle's;
* **supervision** — every injected kill was matched by a supervisor restart
  and the run completed (no wedged clients).

Each point measures its distributed-transaction fraction, so the run
doubles as a Figure-1-style wall-clock probe: the same workload deployed
via the Schism plan (few distributed transactions) and via hash partitioning
(many) at k=2 and k=4, recording throughput / latency / abort rate as that
fraction varies.  Wall-clock numbers are inherently volatile and are kept
out of the deterministic payload the bench harness records.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.distributed.faults import FaultPlan, WorkerKill
from repro.obs import trace_span
from repro.pipeline import Pipeline, SchismOptions
from repro.routing.lookup import build_lookup_table
from repro.analysis.witness import WitnessedLockManager
from repro.routing.router import Router
from repro.storage import (
    ClosedLoopDriver,
    RetryOptions,
    SqliteStorageCluster,
    StorageCoordinator,
)
from repro.workload.trace import Workload
from repro.workloads import TpccConfig, generate_tpcc


@dataclass
class StoragePointReport:
    """One (strategy, partition count) deployment under the chaos schedule."""

    label: str
    strategy: str
    num_partitions: int
    #: traffic accounting (deterministic given the interleaving-independent
    #: audits; individual counts like fallbacks may vary run to run).
    total: int = 0
    committed: int = 0
    aborted: int = 0
    write_fast_fails: int = 0
    read_fallbacks: int = 0
    in_doubt_completed: int = 0
    distributed_fraction: float = 0.0
    #: chaos accounting.
    kills_planned: int = 0
    kills_fired: int = 0
    restarts: int = 0
    #: consistency audits over the SQLite files (must all be zero/True).
    lost_updates: int = 0
    phantom_rows: int = 0
    unreachable_tuples: int = 0
    tuple_conservation: bool = True
    #: runtime lock-order witness (must be zero: every executed acquisition
    #: respected the global sorted order).
    lock_acquisitions: int = 0
    lock_order_out_of_order: int = 0
    #: wall-clock measurements (volatile; excluded from the bench payload).
    wall_s: float = 0.0
    throughput_txn_s: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0

    @property
    def violations(self) -> list[str]:
        """Acceptance failures of this point (empty = pass)."""
        failures = []
        if self.lost_updates:
            failures.append(f"{self.label}: {self.lost_updates} lost updates")
        if self.phantom_rows:
            failures.append(f"{self.label}: {self.phantom_rows} phantom rows")
        if self.unreachable_tuples:
            failures.append(f"{self.label}: {self.unreachable_tuples} unreachable tuples")
        if not self.tuple_conservation:
            failures.append(f"{self.label}: tuple set not conserved")
        if self.kills_fired != self.kills_planned:
            failures.append(
                f"{self.label}: {self.kills_fired}/{self.kills_planned} planned kills fired"
            )
        if self.restarts < self.kills_fired:
            failures.append(
                f"{self.label}: {self.kills_fired} kills but only {self.restarts} restarts"
            )
        if self.committed == 0:
            failures.append(f"{self.label}: no transaction committed")
        if self.committed + self.aborted != self.total:
            failures.append(f"{self.label}: run did not complete every transaction")
        if self.lock_order_out_of_order:
            failures.append(
                f"{self.label}: {self.lock_order_out_of_order} out-of-order "
                "lock acquisition(s) witnessed"
            )
        return failures

    def to_payload(self) -> dict:
        """Deterministic summary for the bench report (no wall-clock fields)."""
        return {
            "label": self.label,
            "strategy": self.strategy,
            "num_partitions": self.num_partitions,
            "total": self.total,
            "committed": self.committed,
            "aborted": self.aborted,
            "distributed_fraction": round(self.distributed_fraction, 6),
            "kills_fired": self.kills_fired,
            "restarts": self.restarts,
            "lost_updates": self.lost_updates,
            "phantom_rows": self.phantom_rows,
            "unreachable_tuples": self.unreachable_tuples,
            "tuple_conservation": self.tuple_conservation,
            "lock_order_out_of_order": self.lock_order_out_of_order,
        }


@dataclass
class StorageResilienceReport:
    """Outcome of the full storage-resilience sweep."""

    seed: int
    points: list[StoragePointReport] = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        """Every acceptance failure across the sweep's points."""
        failures: list[str] = []
        for point in self.points:
            failures.extend(point.violations)
        return failures

    def to_payload(self) -> dict:
        """Deterministic summary for ``BENCH_partitioner.json``."""
        return {
            "seed": self.seed,
            "points": [point.to_payload() for point in self.points],
            "violations": self.violations,
        }


def _audit_point(
    cluster: SqliteStorageCluster, router: Router, oracle, point: StoragePointReport
) -> None:
    """Compare the closed cluster's SQLite files against the oracle, row by row."""
    schema = oracle.schema
    stores = {
        partition: cluster.open_store(partition)
        for partition in range(cluster.num_partitions)
    }
    try:
        rows = {
            partition: {table.name: store.all_rows(table.name) for table in schema.tables}
            for partition, store in stores.items()
        }
        locations: dict = {}
        for partition, store in stores.items():
            for tuple_id in store.tuple_ids():
                locations.setdefault(tuple_id, set()).add(partition)
        for tuple_id, resident in locations.items():
            oracle_row = oracle.get_row(tuple_id)
            if oracle_row is None:
                point.phantom_rows += 1
                continue
            for partition in resident:
                if rows[partition][tuple_id.table].get(tuple(tuple_id.key)) != oracle_row:
                    point.lost_updates += 1
            placement = router.placement_of(tuple_id)
            if not any(partition in resident for partition in placement):
                point.unreachable_tuples += 1
        point.tuple_conservation = set(locations) == set(oracle.all_tuple_ids())
    finally:
        for store in stores.values():
            store.close()


def _run_point(
    label: str,
    strategy_name: str,
    num_partitions: int,
    seed: int,
    warehouses: int,
    training_transactions: int,
    live_transactions: int,
    num_clients: int,
    directory: Path,
    retry_options: RetryOptions,
) -> StoragePointReport:
    """Deploy one (strategy, k) point, drive it through the kills, audit it."""
    # A fresh bundle per point: the oracle database is mutated by the
    # committed traffic, so points must not share it.
    config = TpccConfig(
        warehouses=warehouses,
        districts_per_warehouse=2,
        customers_per_district=8,
        items=40,
        seed=seed,
    )
    bundle = generate_tpcc(
        config, num_transactions=training_transactions + live_transactions
    )
    training = Workload(
        f"{bundle.name}-train", bundle.workload.transactions[:training_transactions]
    )
    live = bundle.workload.transactions[training_transactions:]
    database = bundle.database

    if strategy_name == "schism":
        run = Pipeline(SchismOptions(num_partitions=num_partitions)).run(
            database, training
        )
        plan = run.plan(created_by="experiments.storage_resilience", workload=bundle.name)
        strategy = plan.deployment_strategy("hash")
        lookup_table = build_lookup_table(strategy.assignment)
    else:
        from repro.core.strategies import HashPartitioning

        strategy = HashPartitioning(num_partitions)
        lookup_table = None
    router = Router(strategy, database.schema, lookup_table)

    # Two kills per point: an early one on partition 0 and a mid-run one on
    # the last partition, pinned to cluster-wide commit counts — trigger
    # points the thread interleaving cannot move.
    faults = FaultPlan(
        seed=seed,
        worker_kills=(
            WorkerKill(partition=0, at_commit=max(3, live_transactions // 5)),
            WorkerKill(
                partition=num_partitions - 1, at_commit=max(6, live_transactions // 2)
            ),
        ),
    )
    injector = faults.build()
    point = StoragePointReport(
        label=label,
        strategy=strategy_name,
        num_partitions=num_partitions,
        kills_planned=len(faults.worker_kills),
    )

    cluster = SqliteStorageCluster.from_database(
        directory / label, database, strategy
    ).start()
    try:
        coordinator = StorageCoordinator(
            cluster,
            router,
            oracle=database,
            retry_options=retry_options,
            seed=seed,
        )
        # Runtime lock-order witness: certify that the interleaving this run
        # actually executed never acquired tokens out of global sorted order
        # (the static lock-order pass proves the call sites; this proves the
        # traffic).
        witness = WitnessedLockManager(coordinator.locks)
        coordinator.locks = witness

        def on_commit(commits: int) -> None:
            for kill in injector.due_worker_kills(commits):
                cluster.kill_worker(kill.partition)

        driver = ClosedLoopDriver(
            coordinator, num_clients=num_clients, on_commit=on_commit
        )
        report = driver.run(live, txn_id_prefix=f"{label}-txn")
    finally:
        cluster.close()

    point.total = report.total
    point.committed = report.committed
    point.aborted = report.aborted
    point.write_fast_fails = report.write_fast_fails
    point.read_fallbacks = report.read_fallbacks
    point.in_doubt_completed = report.in_doubt_completed
    point.distributed_fraction = report.distributed_fraction
    point.kills_fired = injector.statistics.workers_killed
    point.restarts = cluster.restart_count()
    point.lock_acquisitions = witness.acquisitions
    point.lock_order_out_of_order = witness.out_of_order
    point.wall_s = report.wall_s
    point.throughput_txn_s = report.throughput_txn_s
    point.latency_p50_ms = report.latency_quantile(0.50)
    point.latency_p99_ms = report.latency_quantile(0.99)
    _audit_point(cluster, router, database, point)
    return point


def run_storage_resilience(
    seed: int = 0,
    warehouses: int = 2,
    training_transactions: int = 200,
    live_transactions: int = 80,
    num_clients: int = 4,
    partition_counts: tuple[int, ...] = (2, 4),
    directory: str | Path | None = None,
    retry_options: RetryOptions | None = None,
) -> StorageResilienceReport:
    """Run the storage-resilience sweep: (schism, hash) x ``partition_counts``.

    SQLite files live under ``directory`` (a fresh temporary directory when
    omitted, removed afterwards).  Every point endures two seeded worker
    kills; the report's :attr:`~StorageResilienceReport.violations` is the
    CI gate.
    """
    retry_options = retry_options or RetryOptions(timeout_ms=500, max_retries=4)
    report = StorageResilienceReport(seed=seed)
    with trace_span("experiment.storage_resilience", seed=seed, warehouses=warehouses):
        cleanup = None
        if directory is None:
            cleanup = tempfile.TemporaryDirectory(prefix="repro-storage-")
            directory = cleanup.name
        try:
            base = Path(directory)
            for num_partitions in partition_counts:
                for strategy_name in ("schism", "hash"):
                    label = f"{strategy_name}-k{num_partitions}"
                    report.points.append(
                        _run_point(
                            label,
                            strategy_name,
                            num_partitions,
                            seed,
                            warehouses,
                            training_transactions,
                            live_transactions,
                            num_clients,
                            base,
                            retry_options,
                        )
                    )
        finally:
            if cleanup is not None:
                cleanup.cleanup()
    return report


def format_storage_resilience(report: StorageResilienceReport) -> str:
    """Human-readable table of the sweep (wall-clock columns marked volatile)."""
    lines = [
        f"Storage resilience under process kills (seed {report.seed})",
        "",
        f"{'point':<12} {'k':>2} {'txns':>5} {'commit':>6} {'abort':>5} "
        f"{'dist%':>6} {'kills':>5} {'restarts':>8} {'lost':>4} {'unreach':>7} {'conserved':>9}",
    ]
    for point in report.points:
        lines.append(
            f"{point.label:<12} {point.num_partitions:>2} {point.total:>5} "
            f"{point.committed:>6} {point.aborted:>5} "
            f"{point.distributed_fraction:>6.1%} {point.kills_fired:>5} "
            f"{point.restarts:>8} {point.lost_updates:>4} "
            f"{point.unreachable_tuples:>7} {str(point.tuple_conservation):>9}"
        )
    lines.append("")
    lines.append("wall-clock (volatile, machine-dependent):")
    for point in report.points:
        lines.append(
            f"  {point.label:<12} {point.throughput_txn_s:>8.1f} txn/s   "
            f"p50 {point.latency_p50_ms:>7.1f} ms   p99 {point.latency_p99_ms:>7.1f} ms   "
            f"fallbacks {point.read_fallbacks}  fast-fails {point.write_fast_fails}  "
            f"in-doubt {point.in_doubt_completed}"
        )
    lines.append("")
    if report.violations:
        lines.append("VIOLATIONS:")
        lines.extend(f"  {violation}" for violation in report.violations)
    else:
        lines.append(
            "audits clean: zero lost updates, zero unreachable tuples, "
            "every killed worker restarted"
        )
    return "\n".join(lines)
