"""Shared utilities: seeded randomness, Zipfian sampling, timers."""

from repro.utils.rng import SeededRng, ZipfianGenerator, ScrambledZipfianGenerator
from repro.utils.timer import Timer

__all__ = [
    "SeededRng",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "Timer",
]
