"""Small wall-clock timing helper used by experiments and the partitioner.

``Timer`` is a thin alias of :class:`repro.obs.clock.Stopwatch` — the one
timing primitive of the telemetry layer — kept for import compatibility.
"""

from __future__ import annotations

from repro.obs.clock import Stopwatch


class Timer(Stopwatch):
    """Context-manager stopwatch (alias of :class:`~repro.obs.clock.Stopwatch`).

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ()
