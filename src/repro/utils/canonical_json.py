"""Streaming canonical JSON: byte-identical to sort-key ``json.dumps``.

The plan artifact (and the migration journal) serialise as canonical JSON —
sorted object keys, ``indent=1`` — so that ``save -> load -> save`` is
byte-identical.  Passing ``indent`` to :func:`json.dumps` forces the pure
Python encoder (the C accelerator only handles compact output), which is
roughly an order of magnitude slower than ``loads``; this module re-emits
exactly the same bytes with the C-accelerated string escaper and one
``str.join`` per scalar-only container, and can stream the output in bounded
chunks instead of materialising one giant string.

>>> import json
>>> payload = {"b": [1, 2.5, None], "a": {"nested": True, "s": "café"}}
>>> dumps_canonical(payload) == json.dumps(payload, sort_keys=True, indent=1)
True
"""

from __future__ import annotations

from json.encoder import encode_basestring_ascii
from typing import Callable, Iterator

_INFINITY = float("inf")

#: cached '\n' + one space per indent level (indent=1).
_PADS: list[str] = ["\n"]


def _pad(level: int) -> str:
    while len(_PADS) <= level:
        _PADS.append("\n" + " " * len(_PADS))
    return _PADS[level]


def _float_token(value: float) -> str:
    # Mirrors json.encoder.floatstr with allow_nan=True.
    if value != value:
        return "NaN"
    if value == _INFINITY:
        return "Infinity"
    if value == -_INFINITY:
        return "-Infinity"
    return float.__repr__(value)


def _token(value: object, level: int) -> str | None:
    """The complete JSON text of ``value``, or None when it must stream.

    Covers scalars and "simple" containers (lists/tuples whose leaves are
    scalars) in one joined string — the shape of every placement row and
    journal step, which is where the volume is.  Non-empty dicts return None
    immediately, so the bail-out cost on mixed trees stays O(1) per item.
    Scalar dispatch is on the exact class (with an isinstance fallback for
    subclasses) because this runs once per leaf of a plan-sized tree.
    """
    cls = value.__class__
    if cls is str:
        return encode_basestring_ascii(value)
    if cls is int:
        return int.__repr__(value)
    if cls is float:
        return _float_token(value)
    if cls is bool:
        return "true" if value else "false"
    if value is None:
        return "null"
    if isinstance(value, (list, tuple)):
        if not value:
            return "[]"
        pad = _pad(level + 1)
        parts: list[str] = []
        append = parts.append
        for item in value:
            item_cls = item.__class__
            if item_cls is str:
                append(encode_basestring_ascii(item))
            elif item_cls is int:
                append(int.__repr__(item))
            else:
                part = _token(item, level + 1)
                if part is None:
                    return None
                append(part)
        return "[" + pad + ("," + pad).join(parts) + _pad(level) + "]"
    if isinstance(value, dict):
        if not value:
            return "{}"
        return None
    # Scalar subclasses (IntEnum, str subclasses) mirror json.dumps exactly.
    if isinstance(value, str):
        return encode_basestring_ascii(value)
    if isinstance(value, int):
        return int.__repr__(value)
    if isinstance(value, float):
        return _float_token(value)
    raise TypeError(f"Object of type {type(value).__name__} is not JSON serializable")


def _encode(value: object, emit: Callable[[str], None], level: int) -> None:
    token = _token(value, level)
    if token is not None:
        emit(token)
        return
    if isinstance(value, (list, tuple)):
        pad = _pad(level + 1)
        emit("[")
        first = True
        for item in value:
            prefix = pad if first else "," + pad
            first = False
            item_token = _token(item, level + 1)
            if item_token is not None:
                emit(prefix + item_token)
            else:
                emit(prefix)
                _encode(item, emit, level + 1)
        emit(_pad(level) + "]")
        return
    # Only a non-empty dict reaches here (everything else tokenised above).
    for key in value:
        if not isinstance(key, str):
            raise TypeError(
                f"canonical JSON object keys must be str, got {type(key).__name__}"
            )
    pad = _pad(level + 1)
    emit("{")
    first = True
    for key, item in sorted(value.items()):
        prefix = (pad if first else "," + pad) + encode_basestring_ascii(key) + ": "
        first = False
        item_token = _token(item, level + 1)
        if item_token is not None:
            emit(prefix + item_token)
        else:
            emit(prefix)
            _encode(item, emit, level + 1)
    emit(_pad(level) + "}")


def iter_canonical(value: object, chunk_size: int = 1 << 16) -> Iterator[str]:
    """Yield the canonical JSON text of ``value`` in bounded chunks."""
    parts: list[str] = []
    size = 0

    chunks: list[str] = []

    def emit(fragment: str) -> None:
        nonlocal size
        parts.append(fragment)
        size += len(fragment)
        if size >= chunk_size:
            chunks.append("".join(parts))
            parts.clear()
            size = 0

    _encode(value, emit, 0)
    if parts:
        chunks.append("".join(parts))
    # The encoder is fully recursive (no laziness to preserve), so buffering
    # first and yielding after keeps emit() free of generator overhead.
    yield from chunks


def dumps_canonical(value: object) -> str:
    """Canonical JSON text of ``value``.

    Byte-identical to ``json.dumps(value, sort_keys=True, indent=1)`` for
    JSON-native trees (dict/list/tuple/str/int/float/bool/None).
    """
    parts: list[str] = []
    _encode(value, parts.append, 0)
    return "".join(parts)


def write_canonical(value: object, fp, chunk_size: int = 1 << 16) -> None:
    """Stream the canonical JSON text of ``value`` to a file-like object."""
    for chunk in iter_canonical(value, chunk_size):
        fp.write(chunk)
