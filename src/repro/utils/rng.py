"""Deterministic random number utilities.

Every stochastic component in the library (workload generators, sampling
heuristics, partitioner tie-breaking) receives an explicit seed so that
experiments are reproducible run-to-run.  ``SeededRng`` is a thin wrapper
around :class:`random.Random` adding a convenience ``fork`` method used to
derive independent sub-streams, and the Zipfian generators implement the
skewed key-selection used by the YCSB workloads.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Sequence, TypeVar

T = TypeVar("T")

#: Multiplicative constant used by YCSB's scrambled Zipfian (FNV hash prime).
_FNV_OFFSET_BASIS_64 = 0xCBF29CE484222325
_FNV_PRIME_64 = 0x100000001B3


class SeededRng:
    """A seeded random source with support for derived sub-streams.

    Parameters
    ----------
    seed:
        Seed for the underlying :class:`random.Random`.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, salt: object) -> "SeededRng":
        """Return an independent generator derived from this one.

        The derived stream depends only on the parent seed and ``salt``,
        not on how many numbers have been drawn so far, which keeps
        components independent of each other's consumption order.  The
        derivation uses a content hash (not Python's salted ``hash``) so the
        stream is identical across processes and runs.
        """
        digest = hashlib.blake2b(
            repr((self.seed, salt)).encode("utf-8"), digest_size=8
        ).digest()
        return SeededRng(int.from_bytes(digest, "big") & 0x7FFFFFFFFFFFFFFF)

    # -- thin delegation helpers -------------------------------------------------
    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly choose one element of ``items``."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Sample ``count`` distinct elements without replacement."""
        return self._random.sample(items, count)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        """Gaussian sample."""
        return self._random.gauss(mu, sigma)

    def bernoulli(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        return self._random.random() < probability


class ZipfianGenerator:
    """Draws integers in ``[0, item_count)`` with a Zipfian distribution.

    Low ranks are the most popular.  Uses the rejection-inversion style
    approximation popularised by Gray et al. and used in YCSB, which avoids
    materialising the full CDF and therefore works for large item counts.
    """

    def __init__(self, item_count: int, theta: float = 0.99, rng: SeededRng | None = None) -> None:
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.item_count = item_count
        self.theta = theta
        self._rng = rng or SeededRng(0)
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / item_count) ** (1.0 - theta)) / (1.0 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n, Euler-Maclaurin style approximation for large n to
        # keep construction O(1)-ish for multi-million item tables.
        if n <= 10_000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 10_001))
        # integral approximation of the tail sum_{10001}^{n} x^-theta dx
        tail = ((n + 0.5) ** (1.0 - theta) - (10_000.5) ** (1.0 - theta)) / (1.0 - theta)
        return head + tail

    def next_value(self) -> int:
        """Return the next Zipfian-distributed value in ``[0, item_count)``."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count * (self._eta * u - self._eta + 1.0) ** self._alpha)


class ScrambledZipfianGenerator:
    """Zipfian popularity spread over the key space via FNV hashing.

    YCSB uses this so that the popular keys are not clustered at the start of
    the table; the partitioner must discover the hot set rather than finding
    it in a contiguous range.
    """

    def __init__(self, item_count: int, theta: float = 0.99, rng: SeededRng | None = None) -> None:
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, theta=theta, rng=rng)

    @staticmethod
    def _fnv_hash(value: int) -> int:
        digest = _FNV_OFFSET_BASIS_64
        for _ in range(8):
            octet = value & 0xFF
            digest = (digest ^ octet) * _FNV_PRIME_64 & 0xFFFFFFFFFFFFFFFF
            value >>= 8
        return digest

    def next_value(self) -> int:
        """Return the next scrambled Zipfian value in ``[0, item_count)``."""
        raw = self._zipf.next_value()
        return self._fnv_hash(raw) % self.item_count


def weighted_choice(rng: SeededRng, weighted_items: Sequence[tuple[T, float]]) -> T:
    """Choose an item given ``(item, weight)`` pairs with positive weights."""
    total = sum(weight for _, weight in weighted_items)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    target = rng.random() * total
    cumulative = 0.0
    for item, weight in weighted_items:
        cumulative += weight
        if target < cumulative:
            return item
    return weighted_items[-1][0]


def zipf_pmf(item_count: int, theta: float) -> list[float]:
    """Return the exact Zipfian probability mass function (small ``item_count``)."""
    weights = [1.0 / ((i + 1) ** theta) for i in range(item_count)]
    norm = math.fsum(weights)
    return [w / norm for w in weights]
