"""Workload representation: transactions, traces, read/write sets, sampling."""

from repro.workload.trace import StatementAccess, Transaction, TransactionAccess, Workload
from repro.workload.rwsets import AccessTrace, extract_access_trace
from repro.workload.sampling import (
    filter_blanket_statements,
    filter_rare_tuples,
    sample_transactions,
    sample_tuples,
)
from repro.workload.analysis import (
    AttributeFrequency,
    WorkloadStatistics,
    frequent_attributes,
    workload_statistics,
)
from repro.workload.splitter import split_workload

__all__ = [
    "AccessTrace",
    "AttributeFrequency",
    "StatementAccess",
    "Transaction",
    "TransactionAccess",
    "Workload",
    "WorkloadStatistics",
    "extract_access_trace",
    "filter_blanket_statements",
    "filter_rare_tuples",
    "frequent_attributes",
    "sample_transactions",
    "sample_tuples",
    "split_workload",
    "workload_statistics",
]
