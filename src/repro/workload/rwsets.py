"""Read/write-set extraction.

The paper (Section 5.3) rewrites SQL statements from a trace into SELECTs that
return the primary keys of the tuples each statement accesses.  Our substrate
is the in-memory engine, so extraction simply executes the workload against a
loaded :class:`~repro.engine.database.Database` and records the tuple ids each
statement touched.  Write statements are executed for real so that later
statements in the trace observe their effects, exactly as the online
extraction mode of the paper would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.catalog.tuples import TupleId
from repro.engine.database import Database
from repro.workload.trace import (
    StatementAccess,
    Transaction,
    TransactionAccess,
    Workload,
    iter_chunks,
)


@dataclass
class AccessTrace:
    """The result of extracting read/write sets for a workload."""

    workload_name: str
    accesses: list[TransactionAccess] = field(default_factory=list)

    def __iter__(self) -> Iterator[TransactionAccess]:
        return iter(self.accesses)

    def __len__(self) -> int:
        return len(self.accesses)

    def all_tuples(self) -> set[TupleId]:
        """Every tuple referenced anywhere in the trace."""
        tuples: set[TupleId] = set()
        for access in self.accesses:
            tuples.update(access.touched)
        return tuples

    def access_counts(self) -> dict[TupleId, int]:
        """Number of transactions that touch each tuple."""
        counts: dict[TupleId, int] = {}
        for access in self.accesses:
            for tuple_id in access.touched:
                counts[tuple_id] = counts.get(tuple_id, 0) + 1
        return counts

    def write_counts(self) -> dict[TupleId, int]:
        """Number of transactions that write each tuple."""
        counts: dict[TupleId, int] = {}
        for access in self.accesses:
            for tuple_id in access.write_set:
                counts[tuple_id] = counts.get(tuple_id, 0) + 1
        return counts

    def replace(self, accesses: Sequence[TransactionAccess]) -> "AccessTrace":
        """Return a new trace with the same name and different accesses."""
        return AccessTrace(self.workload_name, list(accesses))

    def iter_batches(self, batch_size: int) -> Iterator[list[TransactionAccess]]:
        """Stream the trace as chunked batches of transaction accesses.

        The online monitor ingests through this, the batch pipeline consumes
        the whole list — both see the same ordering and chunking semantics
        (see :func:`repro.workload.trace.iter_chunks`).
        """
        return iter_chunks(self.accesses, batch_size)


def extract_access_trace(
    database: Database,
    workload: Workload,
    skip_empty: bool = True,
) -> AccessTrace:
    """Execute ``workload`` against ``database`` recording per-statement accesses.

    Parameters
    ----------
    database:
        A loaded database.  Write statements mutate it; callers that need the
        original contents afterwards should extract on a throwaway copy.
    workload:
        The workload whose read/write sets to compute.
    skip_empty:
        Drop transactions that end up touching no tuples (e.g. selects that
        matched nothing); they carry no information for partitioning.
    """
    trace = AccessTrace(workload.name)
    for transaction in workload:
        statement_accesses = []
        for statement in transaction.statements:
            result = database.execute(statement)
            statement_accesses.append(
                StatementAccess(
                    statement,
                    frozenset(result.read_set),
                    frozenset(result.write_set),
                )
            )
        access = TransactionAccess(transaction, tuple(statement_accesses))
        if skip_empty and not access.touched:
            continue
        trace.accesses.append(access)
    return trace


def access_from_tuple_sets(
    transaction: Transaction,
    read_set: Sequence[TupleId],
    write_set: Sequence[TupleId] = (),
) -> TransactionAccess:
    """Build a :class:`TransactionAccess` directly from tuple sets.

    Convenience used by tests and by synthetic traces where the read/write
    sets are known without executing SQL.
    """
    return TransactionAccess(
        transaction,
        (
            StatementAccess(
                transaction.statements[0],
                frozenset(read_set),
                frozenset(write_set),
            ),
        ),
    )
