"""Graph-size reduction heuristics from Section 5.1 of the paper.

All functions are pure: they take an :class:`~repro.workload.rwsets.AccessTrace`
and return a new, reduced trace.  The graph builder applies them before
constructing nodes and edges, which is where the reduction in partitioning
time comes from.
"""

from __future__ import annotations

from repro.catalog.tuples import TupleId
from repro.utils.rng import SeededRng
from repro.workload.rwsets import AccessTrace


def sample_transactions(trace: AccessTrace, fraction: float, rng: SeededRng | None = None) -> AccessTrace:
    """Transaction-level sampling: keep each transaction with probability ``fraction``.

    Reduces the number of edges in the graph while preserving the relative
    frequency of co-access patterns.
    """
    _check_fraction(fraction)
    if fraction >= 1.0:
        return trace.replace(list(trace.accesses))
    rng = rng or SeededRng(0)
    kept = [access for access in trace.accesses if rng.random() < fraction]
    if not kept and trace.accesses:
        # Never return an empty trace for a non-empty input: keep one transaction
        # so downstream phases have something to work with.
        kept = [trace.accesses[0]]
    return trace.replace(kept)


def sample_tuples(trace: AccessTrace, fraction: float, rng: SeededRng | None = None) -> AccessTrace:
    """Tuple-level sampling: restrict the trace to a random subset of tuples.

    Reduces the number of nodes in the graph.  Transactions that lose all of
    their tuples are dropped.
    """
    _check_fraction(fraction)
    if fraction >= 1.0:
        return trace.replace(list(trace.accesses))
    rng = rng or SeededRng(0)
    all_tuples = sorted(trace.all_tuples())
    kept_tuples = {tuple_id for tuple_id in all_tuples if rng.random() < fraction}
    reduced = []
    for access in trace.accesses:
        restricted = access.restricted_to(kept_tuples)
        if restricted.touched:
            reduced.append(restricted)
    return trace.replace(reduced)


def filter_blanket_statements(trace: AccessTrace, max_tuples_per_statement: int = 50) -> AccessTrace:
    """Blanket-statement filtering: drop statements that scan a large slice of a table.

    Such statements produce a quadratic number of low-information edges and
    parallelise well anyway (the per-partition work dwarfs the coordination
    overhead), so the paper removes them from the graph.
    """
    if max_tuples_per_statement <= 0:
        raise ValueError("max_tuples_per_statement must be positive")
    reduced = []
    for access in trace.accesses:
        dropped = {
            position
            for position, statement_access in enumerate(access.statement_accesses)
            if len(statement_access.touched) > max_tuples_per_statement
        }
        filtered = access.without_statements(dropped) if dropped else access
        if filtered.touched:
            reduced.append(filtered)
    return trace.replace(reduced)


def filter_rare_tuples(trace: AccessTrace, min_access_count: int = 2) -> AccessTrace:
    """Relevance filtering: drop tuples accessed by fewer than ``min_access_count`` transactions.

    Rarely-accessed tuples carry little information about co-access structure;
    removing them shrinks the graph.  They are later placed by the final
    strategy's default rule (hash, range catch-all, or replication).
    """
    if min_access_count <= 1:
        return trace.replace(list(trace.accesses))
    counts = trace.access_counts()
    frequent: set[TupleId] = {
        tuple_id for tuple_id, count in counts.items() if count >= min_access_count
    }
    reduced = []
    for access in trace.accesses:
        restricted = access.restricted_to(frequent)
        if restricted.touched:
            reduced.append(restricted)
    return trace.replace(reduced)


def _check_fraction(fraction: float) -> None:
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
