"""Workload trace types.

A :class:`Workload` is an ordered list of :class:`Transaction` objects, each a
sequence of mini-SQL statements.  After read/write-set extraction (see
:mod:`repro.workload.rwsets`) every transaction gains a
:class:`TransactionAccess` recording exactly which tuples each statement read
and wrote — the "data pre-processing" step of the paper's pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, TypeVar

from repro.catalog.tuples import TupleId
from repro.sqlparse.ast import Statement, is_write

_T = TypeVar("_T")


def iter_chunks(items: Iterable[_T], chunk_size: int) -> Iterator[list[_T]]:
    """Yield ``items`` in order as lists of at most ``chunk_size`` elements.

    The single chunking primitive shared by the batch pipeline
    (:func:`repro.workload.splitter.stream_workload`) and the online
    monitor's ingest path, so both consume traces through one code path.
    Works on any iterable — including generators — without materialising it.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    chunk: list[_T] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


@dataclass(frozen=True)
class Transaction:
    """An ordered group of statements executed atomically."""

    statements: tuple[Statement, ...]
    transaction_id: int = 0
    kind: str = ""

    def __post_init__(self) -> None:
        if not self.statements:
            raise ValueError("a transaction must contain at least one statement")

    @property
    def is_read_only(self) -> bool:
        """Whether no statement modifies data."""
        return not any(is_write(statement) for statement in self.statements)

    def __len__(self) -> int:
        return len(self.statements)


class Workload:
    """A named, ordered collection of transactions."""

    def __init__(self, name: str, transactions: Iterable[Transaction] = ()) -> None:
        self.name = name
        self.transactions: list[Transaction] = list(transactions)

    def add(self, transaction: Transaction) -> None:
        """Append a transaction to the workload."""
        self.transactions.append(transaction)

    def add_statements(self, statements: Sequence[Statement], kind: str = "") -> Transaction:
        """Create a transaction from ``statements`` and append it."""
        transaction = Transaction(tuple(statements), transaction_id=len(self.transactions), kind=kind)
        self.transactions.append(transaction)
        return transaction

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def __len__(self) -> int:
        return len(self.transactions)

    def iter_batches(self, batch_size: int) -> Iterator[list[Transaction]]:
        """Stream the workload as chunked transaction batches (in order)."""
        return iter_chunks(self.transactions, batch_size)

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, {len(self.transactions)} transactions)"


@dataclass(frozen=True)
class StatementAccess:
    """Tuples read and written by a single statement."""

    statement: Statement
    read_set: frozenset[TupleId]
    write_set: frozenset[TupleId]

    @property
    def touched(self) -> frozenset[TupleId]:
        """All tuples the statement accessed."""
        return self.read_set | self.write_set


@dataclass(frozen=True)
class TransactionAccess:
    """Read/write sets of one transaction, broken down per statement."""

    transaction: Transaction
    statement_accesses: tuple[StatementAccess, ...] = field(default_factory=tuple)

    @property
    def read_set(self) -> frozenset[TupleId]:
        """All tuples read by the transaction."""
        read: set[TupleId] = set()
        for access in self.statement_accesses:
            read.update(access.read_set)
        return frozenset(read)

    @property
    def write_set(self) -> frozenset[TupleId]:
        """All tuples written by the transaction."""
        written: set[TupleId] = set()
        for access in self.statement_accesses:
            written.update(access.write_set)
        return frozenset(written)

    @property
    def touched(self) -> frozenset[TupleId]:
        """All tuples accessed by the transaction."""
        return self.read_set | self.write_set

    def without_statements(self, dropped: set[int]) -> "TransactionAccess":
        """Return a copy with the statement accesses at positions ``dropped`` removed."""
        kept = tuple(
            access
            for position, access in enumerate(self.statement_accesses)
            if position not in dropped
        )
        return TransactionAccess(self.transaction, kept)

    def restricted_to(self, tuple_ids: set[TupleId]) -> "TransactionAccess":
        """Return a copy whose read/write sets only mention ``tuple_ids``."""
        restricted = tuple(
            StatementAccess(
                access.statement,
                frozenset(tid for tid in access.read_set if tid in tuple_ids),
                frozenset(tid for tid in access.write_set if tid in tuple_ids),
            )
            for access in self.statement_accesses
        )
        return TransactionAccess(self.transaction, restricted)
