"""Train/test splitting and streaming of workloads.

The paper trains the partitioner and the explanation classifier on a training
slice of the trace and reports the distributed-transaction fraction on a
held-out test slice.  ``split_workload`` reproduces that protocol;
``stream_workload`` exposes the same workload as an ordered stream of
chunked sub-workloads, which is how the online monitor consumes live
traffic (both paths share :func:`repro.workload.trace.iter_chunks`).
"""

from __future__ import annotations

from typing import Iterator

from repro.utils.rng import SeededRng
from repro.workload.trace import Workload, iter_chunks


def split_workload(
    workload: Workload,
    train_fraction: float = 0.7,
    rng: SeededRng | None = None,
    shuffle: bool = True,
) -> tuple[Workload, Workload]:
    """Split ``workload`` into (train, test) workloads.

    Parameters
    ----------
    workload:
        The full workload.
    train_fraction:
        Fraction of transactions assigned to the training workload.
    rng:
        Source of randomness for shuffling; defaults to a fixed seed so the
        split is deterministic.
    shuffle:
        When False the split is a simple prefix/suffix split, preserving the
        original transaction order.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    transactions = list(workload.transactions)
    if shuffle:
        rng = rng or SeededRng(0)
        rng.shuffle(transactions)
    cut = max(1, int(round(len(transactions) * train_fraction)))
    cut = min(cut, len(transactions) - 1) if len(transactions) > 1 else cut
    train = Workload(f"{workload.name}-train", transactions[:cut])
    test = Workload(f"{workload.name}-test", transactions[cut:])
    return train, test


def stream_workload(workload: Workload, batch_size: int) -> Iterator[Workload]:
    """Stream ``workload`` as ordered chunks of at most ``batch_size`` transactions.

    Each chunk is itself a :class:`Workload` (named ``<name>-batch<i>``) so
    that anything consuming workloads — trace extraction, the monitor's
    ingest path, experiment harnesses — can process a live stream and a
    recorded trace through the same code.
    """
    for index, chunk in enumerate(iter_chunks(workload.transactions, batch_size)):
        yield Workload(f"{workload.name}-batch{index}", chunk)
