"""Workload analysis: frequent WHERE-clause attributes and summary statistics.

The explanation phase (Section 4.3) only considers attributes that appear
frequently in the workload's WHERE clauses — predicates over rarely-used
attributes could never be used to route queries.  ``frequent_attributes``
computes, per table, the fraction of statements touching that table whose
WHERE clause constrains each attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlparse.ast import InsertStatement, SelectStatement, is_write, statement_tables
from repro.sqlparse.predicates import referenced_attributes
from repro.workload.trace import Workload


@dataclass(frozen=True)
class AttributeFrequency:
    """How often attribute ``column`` of ``table`` appears in WHERE clauses."""

    table: str
    column: str
    occurrences: int
    statement_count: int

    @property
    def frequency(self) -> float:
        """Fraction of the table's statements that reference the attribute."""
        if self.statement_count == 0:
            return 0.0
        return self.occurrences / self.statement_count


def frequent_attributes(
    workload: Workload,
    schema_tables: dict[str, tuple[str, ...]] | None = None,
    min_frequency: float = 0.1,
) -> dict[str, list[AttributeFrequency]]:
    """Return, per table, the attributes used in at least ``min_frequency`` of statements.

    Parameters
    ----------
    workload:
        The workload to analyse.
    schema_tables:
        Optional mapping of table name to its column names, used to resolve
        unqualified column references to their table.  Without it, unqualified
        references are attributed to every table in the statement's FROM list
        that is not otherwise resolvable, which is correct for single-table
        statements (the overwhelmingly common OLTP case).
    min_frequency:
        Minimum fraction of a table's statements that must reference the
        attribute for it to be reported.
    """
    occurrences: dict[tuple[str, str], int] = {}
    statements_per_table: dict[str, int] = {}
    for transaction in workload:
        for statement in transaction.statements:
            tables = statement_tables(statement)
            for table in tables:
                statements_per_table[table] = statements_per_table.get(table, 0) + 1
            attributes = referenced_attributes(statement)
            resolved = _resolve_attributes(attributes, tables, schema_tables)
            for table, column in resolved:
                occurrences[(table, column)] = occurrences.get((table, column), 0) + 1
    result: dict[str, list[AttributeFrequency]] = {}
    for (table, column), count in occurrences.items():
        statement_count = statements_per_table.get(table, 0)
        frequency = AttributeFrequency(table, column, count, statement_count)
        if frequency.frequency >= min_frequency:
            result.setdefault(table, []).append(frequency)
    for table in result:
        result[table].sort(key=lambda item: (-item.occurrences, item.column))
    return result


def _resolve_attributes(
    attributes: list[tuple[str | None, str]],
    statement_table_names: tuple[str, ...],
    schema_tables: dict[str, tuple[str, ...]] | None,
) -> set[tuple[str, str]]:
    resolved: set[tuple[str, str]] = set()
    for table, column in attributes:
        if table is not None:
            resolved.add((table, column))
            continue
        if schema_tables is not None:
            owners = [
                candidate
                for candidate in statement_table_names
                if column in schema_tables.get(candidate, ())
            ]
            if owners:
                for owner in owners:
                    resolved.add((owner, column))
                continue
        if len(statement_table_names) == 1:
            resolved.add((statement_table_names[0], column))
        else:
            for candidate in statement_table_names:
                resolved.add((candidate, column))
    return resolved


@dataclass
class WorkloadStatistics:
    """Summary statistics for a workload (handy for reports and sanity tests)."""

    transaction_count: int = 0
    statement_count: int = 0
    read_statement_count: int = 0
    write_statement_count: int = 0
    insert_count: int = 0
    statements_per_transaction: float = 0.0
    tables_touched: dict[str, int] = field(default_factory=dict)

    @property
    def write_fraction(self) -> float:
        """Fraction of statements that modify data."""
        if self.statement_count == 0:
            return 0.0
        return self.write_statement_count / self.statement_count


def workload_statistics(workload: Workload) -> WorkloadStatistics:
    """Compute :class:`WorkloadStatistics` for ``workload``."""
    stats = WorkloadStatistics()
    stats.transaction_count = len(workload)
    for transaction in workload:
        for statement in transaction.statements:
            stats.statement_count += 1
            if is_write(statement):
                stats.write_statement_count += 1
            else:
                stats.read_statement_count += 1
            if isinstance(statement, InsertStatement):
                stats.insert_count += 1
            for table in statement_tables(statement):
                stats.tables_touched[table] = stats.tables_touched.get(table, 0) + 1
            if isinstance(statement, SelectStatement) and statement.is_join:
                stats.tables_touched.setdefault("<joins>", 0)
                stats.tables_touched["<joins>"] += 1
    if stats.transaction_count:
        stats.statements_per_transaction = stats.statement_count / stats.transaction_count
    return stats
