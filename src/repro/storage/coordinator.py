"""Routed transaction execution against the durable cluster.

:class:`StorageCoordinator` is the client-facing layer: it routes each
transaction's statements with the existing
:class:`~repro.routing.router.Router`, executes reads (falling back across
the plan's replica set when the chosen replica's worker is unreachable),
applies writes partition by partition under the seeded retry/backoff
policy, and mirrors every committed write into an in-memory **oracle**
database for the post-run audits.

**Commit point and in-doubt completion.**  A transaction's writes are
applied to its participants in sorted partition order; the transaction is
logically committed the moment the *first* participant durably applied its
batch.  Before that point a retry-budget exhaustion aborts cleanly (the
per-partition dedup table proves nothing landed); after it, the classic 2PC
in-doubt rule applies — the only safe direction is forward, so remaining
participants are completed with patient retries that ride through worker
restarts.  Exactly-once application on each partition (dedup by ``txn_id``)
is what makes those blind retries safe.

**Write ordering.**  Concurrent clients applying non-commutative writes
(TPC-C's delta updates) must reach the cluster and the oracle in the same
per-key order, or the audit would flag false lost updates.  The coordinator
holds per-key write locks (plus shared/exclusive table locks for statements
that do not pin a primary key) from before the first partition apply until
after the oracle mirror; tokens are acquired in a global sort order, so
concurrent transactions cannot deadlock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.catalog.schema import Schema
from repro.catalog.tuples import TupleId
from repro.engine.database import Database
from repro.obs import get_telemetry
from repro.routing.router import Router, RoutingDecision
from repro.sqlparse.ast import InsertStatement, Statement, is_write
from repro.sqlparse.predicates import conjunctive_conditions, statement_where
from repro.storage.cluster import SqliteStorageCluster
from repro.storage.retry import RetryBudgetExhausted, RetryOptions, RetryPolicy
from repro.storage.sqlite_store import StoreConstraintError
from repro.storage.worker import RemoteStoreError, WorkerTimeout, WorkerUnavailable
from repro.workload.trace import Transaction

#: attempts/backoff-cap of the patient loops (in-doubt completion and
#: commit-point confirmation) — sized to ride through several supervisor
#: restart cycles before giving up loudly.
PATIENT_ATTEMPTS = 60
PATIENT_DELAY_S = 0.05


class InDoubtError(RuntimeError):
    """A committed transaction could not be completed on every participant."""


@dataclass
class StorageOutcome:
    """What happened to one routed transaction."""

    txn_id: str
    status: str  # "committed" | "aborted"
    scope: str  # "single" | "distributed"
    participants: tuple[int, ...]
    reason: str = ""
    in_doubt_completed: bool = False
    read_fallbacks: int = 0

    @property
    def committed(self) -> bool:
        """Whether the transaction reached its commit point."""
        return self.status == "committed"


# -- write-lock tokens -----------------------------------------------------------------
class _TableLock:
    """Shared/exclusive lock of one table (no fairness; client counts are small)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._shared = 0
        self._exclusive = False

    def acquire(self, exclusive: bool) -> None:
        with self._cond:
            if exclusive:
                while self._exclusive or self._shared:
                    self._cond.wait()
                self._exclusive = True
            else:
                while self._exclusive:
                    self._cond.wait()
                self._shared += 1

    def release(self, exclusive: bool) -> None:
        with self._cond:
            if exclusive:
                self._exclusive = False
            else:
                self._shared -= 1
            self._cond.notify_all()


class LockManager:
    """Token locks ordering concurrent writers.

    Tokens are ``("key", table, key)`` (exclusive mutex per tuple),
    ``("table-s", table)`` (shared: a key-pinned write), and
    ``("table-x", table)`` (exclusive: a write that could touch any row).
    Acquisition follows the tokens' global sort order and holds everything
    until release, so no cycle — and therefore no deadlock — can form.
    """

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._key_locks: dict[tuple, threading.Lock] = {}
        self._table_locks: dict[str, _TableLock] = {}

    def _key_lock(self, token: tuple) -> threading.Lock:
        with self._guard:
            return self._key_locks.setdefault(token, threading.Lock())

    def _table_lock(self, table: str) -> _TableLock:
        with self._guard:
            return self._table_locks.setdefault(table, _TableLock())

    def acquire(self, tokens: Sequence[tuple]) -> list[tuple]:
        """Acquire ``tokens`` (pre-sorted); returns them for :meth:`release`."""
        for token in tokens:
            if token[0] == "key":
                self._key_lock(token).acquire()
            else:
                self._table_lock(token[1]).acquire(exclusive=token[0] == "table-x")
        return list(tokens)

    def release(self, tokens: Sequence[tuple]) -> None:
        """Release ``tokens`` in reverse acquisition order."""
        for token in reversed(tokens):
            if token[0] == "key":
                self._key_lock(token).release()
            else:
                self._table_lock(token[1]).release(exclusive=token[0] == "table-x")


def pinned_write_keys(statement: Statement, schema: Schema) -> list[tuple[object, ...]] | None:
    """Primary keys a write statement pins, or ``None`` if it could touch any row."""
    if isinstance(statement, InsertStatement):
        try:
            return [schema.table(statement.table).primary_key_of(statement.row)]
        except KeyError:
            return None
    primary_key = schema.table(statement.table).primary_key
    values: dict[str, tuple[object, ...]] = {}
    for condition in conjunctive_conditions(statement_where(statement)):
        if condition.table in (None, statement.table) and condition.column in primary_key:
            candidates = condition.candidate_values()
            if candidates:
                values[condition.column] = candidates
    if set(values) != set(primary_key):
        return None
    keys: list[tuple[object, ...]] = [()]
    for column in primary_key:
        keys = [key + (value,) for key in keys for value in values[column]]
    return keys


def write_lock_tokens(transaction: Transaction, schema: Schema) -> list[tuple]:
    """The sorted lock tokens guarding a transaction's writes."""
    tokens: set[tuple] = set()
    for statement in transaction.statements:
        if not is_write(statement):
            continue
        table = statement.table
        keys = pinned_write_keys(statement, schema)
        if keys is None:
            tokens.add(("table-x", table))
        else:
            tokens.add(("table-s", table))
            for key in keys:
                tokens.add(("key", table, tuple(key)))
    return sorted(tokens, key=repr)


# -- the coordinator -------------------------------------------------------------------
class StorageCoordinator:
    """Routes, retries, locks, and audits transactions over the real cluster."""

    def __init__(
        self,
        cluster: SqliteStorageCluster,
        router: Router,
        *,
        oracle: Database | None = None,
        retry_options: RetryOptions | None = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.cluster = cluster
        self.router = router
        self.oracle = oracle
        self.policy = RetryPolicy(retry_options, seed=seed, sleep=sleep)
        self.locks = LockManager()
        self._oracle_lock = threading.Lock()
        self._sleep = sleep
        metrics = get_telemetry().metrics
        self._requests = metrics.counter(
            "storage.requests",
            "routed worker requests by operation and outcome",
            labels=("op", "outcome"),
        )
        self._transactions = metrics.counter(
            "storage.transactions",
            "routed transactions by outcome and partition scope",
            labels=("outcome", "scope"),
        )
        self._read_fallbacks = metrics.counter(
            "storage.read_fallbacks", "reads answered by a fallback replica"
        )
        self._write_fast_fails = metrics.counter(
            "storage.write_fast_fails",
            "write transactions aborted after exhausting the retry budget",
        )

    # -- worker plumbing ---------------------------------------------------------------
    def _attempt(self, partition: int, op: str, payload: object) -> object:
        """One worker request, always through the *current* handle."""
        handle = self.cluster.handle(partition)
        try:
            result = handle.request(op, payload, timeout_s=self.policy.options.timeout_s)
        except Exception:
            self._requests.inc(op=op, outcome="error")
            raise
        self._requests.inc(op=op, outcome="ok")
        return result

    def _apply_with_retries(self, partition: int, txn_id: str, statements: list[Statement]) -> str:
        return self.policy.run(
            "apply",
            (txn_id, partition),
            lambda: self._attempt(partition, "apply", (txn_id, list(statements))),
        )

    def _patiently(self, describe: str, attempt: Callable[[], object]) -> object:
        """Retry ``attempt`` through worker restarts; raise :class:`InDoubtError` only
        after the patience budget — this loop runs *past* the commit point, where
        giving up would mean a partially-applied committed transaction."""
        last_error: BaseException | None = None
        for _ in range(PATIENT_ATTEMPTS):
            try:
                return attempt()
            except (WorkerUnavailable, WorkerTimeout, RetryBudgetExhausted, OSError) as error:
                last_error = error
            except RemoteStoreError as error:
                if error.kind != "retryable":
                    raise
                last_error = error
            self._sleep(PATIENT_DELAY_S)
        raise InDoubtError(f"{describe}: gave up after {PATIENT_ATTEMPTS} attempts ({last_error!r})")

    def _confirm_applied(self, partition: int, txn_id: str) -> bool:
        """Whether ``txn_id`` durably applied on ``partition`` (patient probe).

        Authoritative despite earlier timeouts: the worker serves its pipe
        serially, so this probe is answered after any still-in-flight apply;
        and if the worker was restarted instead, the in-flight apply died
        with it and the fresh worker reads the recovered WAL state.
        """
        return bool(
            self._patiently(
                f"confirm txn {txn_id} on partition {partition}",
                lambda: self._attempt(partition, "has_txn", txn_id),
            )
        )

    # -- reads -------------------------------------------------------------------------
    def _read_fallback_partitions(self, decision: RoutingDecision) -> list[int]:
        """Replica-set fallbacks of a single-replica read, nearest-first."""
        keys = None
        statement = decision.statement
        tables = [statement.tables[0]] if getattr(statement, "tables", None) else []
        if len(tables) == 1:
            schema = self.router.schema
            if schema is not None and schema.has_table(tables[0]):
                primary_key = schema.table(tables[0]).primary_key
                values: dict[str, tuple[object, ...]] = {}
                for condition in conjunctive_conditions(statement_where(statement)):
                    if condition.table in (None, tables[0]) and condition.column in primary_key:
                        candidates = condition.candidate_values()
                        if candidates:
                            values[condition.column] = candidates
                if set(values) == set(primary_key):
                    keys = [()]
                    for column in primary_key:
                        keys = [key + (value,) for key in keys for value in values[column]]
        replicas: set[int] = set()
        if keys:
            for key in keys:
                replicas.update(self.router.placement_of(TupleId(tables[0], tuple(key))))
        replicas -= decision.partitions
        return sorted(replicas)

    def _execute_read(self, decision: RoutingDecision, outcome: StorageOutcome) -> list[tuple]:
        """Run a read on its routed partitions, falling back across replicas."""
        rows: list[tuple] = []
        for partition in sorted(decision.partitions):
            try:
                result = self.policy.run(
                    "read",
                    (outcome.txn_id, "read", partition, repr(decision.statement)),
                    lambda p=partition: self._attempt(p, "read", decision.statement),
                )
            except RetryBudgetExhausted:
                fallbacks = (
                    self._read_fallback_partitions(decision)
                    if len(decision.partitions) == 1
                    else []
                )
                result = None
                for fallback in fallbacks:
                    try:
                        result = self.policy.run(
                            "read",
                            (outcome.txn_id, "read-fallback", fallback, repr(decision.statement)),
                            lambda p=fallback: self._attempt(p, "read", decision.statement),
                        )
                    except RetryBudgetExhausted:
                        continue
                    self._read_fallbacks.inc()
                    outcome.read_fallbacks += 1
                    break
                if result is None:
                    raise
            rows.extend(result)
        return rows

    # -- transactions ------------------------------------------------------------------
    def execute_transaction(self, transaction: Transaction, txn_id: str) -> StorageOutcome:
        """Route and execute one transaction; returns its outcome.

        Reads run in statement order; writes are batched per participant and
        applied at commit, in sorted partition order, under the transaction's
        write locks.  Committed writes are mirrored into the oracle before
        the locks release, so cluster and oracle agree on per-key order.
        """
        decisions = self.router.route_transaction(transaction)
        participants: set[int] = set()
        for decision in decisions:
            participants.update(decision.partitions)
        scope = "single" if len(participants) <= 1 else "distributed"
        outcome = StorageOutcome(
            txn_id=txn_id,
            status="committed",
            scope=scope,
            participants=tuple(sorted(participants)),
        )
        write_batches: dict[int, list[Statement]] = {}
        write_statements: list[Statement] = []
        for decision in decisions:
            if is_write(decision.statement):
                write_statements.append(decision.statement)
                for partition in sorted(decision.partitions):
                    write_batches.setdefault(partition, []).append(decision.statement)
        tokens = (
            write_lock_tokens(transaction, self.router.schema)
            if write_batches and self.router.schema is not None
            else []
        )
        self.locks.acquire(tokens)
        try:
            try:
                for decision in decisions:
                    if not is_write(decision.statement):
                        self._execute_read(decision, outcome)
            except RetryBudgetExhausted as error:
                outcome.status = "aborted"
                outcome.reason = f"read unavailable: {error.operation}"
                self._transactions.inc(outcome="aborted", scope=scope)
                return outcome
            if write_batches:
                self._apply_writes(outcome, write_batches, write_statements)
            self._transactions.inc(outcome=outcome.status, scope=scope)
            return outcome
        finally:
            self.locks.release(tokens)

    def _apply_writes(
        self,
        outcome: StorageOutcome,
        write_batches: dict[int, list[Statement]],
        write_statements: list[Statement],
    ) -> None:
        ordered = sorted(write_batches)
        committed = False  # flips once the first participant durably applied
        for index, partition in enumerate(ordered):
            statements = write_batches[partition]
            try:
                if not committed:
                    self._apply_with_retries(partition, outcome.txn_id, statements)
                    committed = True
                else:
                    outcome.in_doubt_completed = (
                        self._complete_forward(partition, outcome.txn_id, statements)
                        or outcome.in_doubt_completed
                    )
            except StoreConstraintError as error:
                if committed:  # pragma: no cover - workload never splits constraints
                    raise InDoubtError(
                        f"constraint violation after commit point on partition {partition}"
                    ) from error
                outcome.status = "aborted"
                outcome.reason = f"constraint: {error}"
                return
            except RemoteStoreError as error:
                if error.kind == "fatal":
                    if committed:  # pragma: no cover - as above
                        raise InDoubtError(
                            f"fatal error after commit point on partition {partition}"
                        ) from error
                    outcome.status = "aborted"
                    outcome.reason = f"fatal: {error}"
                    return
                raise  # pragma: no cover - retryable RemoteStoreError is consumed by the policy
            except RetryBudgetExhausted:
                # The budget ran out on the would-be first participant; a
                # timed-out attempt may still have landed, so ask the dedup
                # table which side of the commit point we are on.
                if self._confirm_applied(partition, outcome.txn_id):
                    committed = True
                    continue
                outcome.status = "aborted"
                outcome.reason = "write fast-fail: retry budget exhausted"
                self._write_fast_fails.inc()
                return
        if committed and self.oracle is not None:
            with self._oracle_lock:
                for statement in write_statements:
                    self.oracle.execute(statement)

    def _complete_forward(self, partition: int, txn_id: str, statements: list[Statement]) -> bool:
        """Apply one participant's batch past the commit point (patiently).

        Returns whether completion needed the patient path (the normal
        retry budget did not suffice)."""
        try:
            self._apply_with_retries(partition, txn_id, statements)
            return False
        except RetryBudgetExhausted:
            self._patiently(
                f"forward-complete txn {txn_id} on partition {partition}",
                lambda: self._attempt(partition, "apply", (txn_id, list(statements))),
            )
            return True
