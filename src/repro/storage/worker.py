"""Partition worker process and its parent-side handle.

Each partition's SQLite file is owned by exactly one **worker process**; the
parent talks to it over a duplex pipe with a sequence-numbered
request/response protocol.  Processes use the ``spawn`` start method — a
fresh interpreter per worker, no inherited locks or connections — so killing
one with ``SIGKILL`` is a faithful crash: the parent sees a broken pipe, the
file is left wherever SQLite's WAL put it, and a replacement worker opening
the same path recovers the last committed state.

Protocol (all values picklable): requests are ``(seq, op, payload)``, the
reply to request ``seq`` is ``(seq, "ok", result)`` or
``(seq, "error", kind, message)`` where ``kind`` is the retry
classification (:data:`~repro.storage.retry.RETRYABLE` /
:data:`~repro.storage.retry.FATAL`).  The handle discards stale replies
whose ``seq`` belongs to a request that already timed out, so one slow
response does not desynchronise the stream.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from multiprocessing.connection import Connection
from pathlib import Path

from repro.catalog.schema import Schema
from repro.storage.retry import FATAL, RETRYABLE
from repro.storage.sqlite_store import SqlitePartitionStore, StoreConstraintError

#: the spawn context every worker uses (safe with a threaded parent).
SPAWN_CONTEXT = multiprocessing.get_context("spawn")


class WorkerUnavailable(ConnectionError):
    """The worker process is dead or its pipe is broken (retryable)."""

    def __init__(self, partition: int, detail: str = "") -> None:
        super().__init__(
            f"partition {partition} worker unavailable" + (f": {detail}" if detail else "")
        )
        self.partition = partition


class WorkerTimeout(TimeoutError):
    """A request missed its per-attempt deadline (retryable)."""

    def __init__(self, partition: int, op: str, timeout_s: float) -> None:
        super().__init__(
            f"partition {partition} {op!r} request timed out after {timeout_s:.3f}s"
        )
        self.partition = partition
        self.op = op


class RemoteStoreError(RuntimeError):
    """An error raised inside the worker, carrying its retry classification."""

    def __init__(self, partition: int, kind: str, message: str) -> None:
        super().__init__(f"partition {partition}: {message}")
        self.partition = partition
        self.kind = kind


def worker_main(connection: Connection, db_path: str, schema: Schema) -> None:
    """Entry point of the worker process: serve requests until ``stop``.

    Opening the store is itself the recovery step — SQLite replays the WAL
    left behind by a killed predecessor before the first request is served.
    """
    store = SqlitePartitionStore(db_path, schema)
    try:
        while True:
            try:
                seq, op, payload = connection.recv()
            except (EOFError, OSError):
                break
            try:
                if op == "ping":
                    result: object = "pong"
                elif op == "apply":
                    txn_id, statements = payload
                    result = store.apply_transaction(txn_id, statements)
                elif op == "read":
                    result = store.execute_read(payload)
                elif op == "has_txn":
                    result = store.has_transaction(payload)
                elif op == "row_count":
                    result = store.row_count()
                elif op == "export_row":
                    table, key = payload
                    result = store.export_row(table, key)
                elif op == "migrate_in":
                    txn_id, table, key, row = payload
                    result = store.migrate_in(txn_id, table, key, row)
                elif op == "migrate_out":
                    txn_id, table, key = payload
                    result = store.migrate_out(txn_id, table, key)
                elif op == "tuple_ids":
                    result = [
                        [tuple_id.table, list(tuple_id.key)]
                        for tuple_id in store.tuple_ids()
                    ]
                elif op == "stop":
                    connection.send((seq, "ok", "stopping"))
                    break
                else:
                    raise ValueError(f"unknown worker op {op!r}")
            except StoreConstraintError as error:
                connection.send((seq, "error", FATAL, str(error)))
                continue
            except Exception as error:  # pragma: no cover - defensive envelope
                kind = RETRYABLE if isinstance(error, OSError) else FATAL
                connection.send((seq, "error", kind, f"{type(error).__name__}: {error}"))
                continue
            connection.send((seq, "ok", result))
    finally:
        store.close()
        connection.close()


class WorkerHandle:
    """Parent-side handle of one worker process.

    Thread-safe: concurrent clients serialise on the handle's lock for the
    duration of one request/response exchange (SQLite is single-writer per
    file anyway, so the pipe is not the bottleneck).  ``generation`` counts
    restarts of the partition — the supervisor swaps a fresh handle in after
    a crash, and stale handles refuse further use.
    """

    def __init__(self, partition: int, db_path: str | Path, schema: Schema, generation: int = 0) -> None:
        self.partition = partition
        self.db_path = str(db_path)
        self.generation = generation
        parent_end, child_end = SPAWN_CONTEXT.Pipe()
        self._connection: Connection = parent_end
        self.process = SPAWN_CONTEXT.Process(
            target=worker_main,
            args=(child_end, self.db_path, schema),
            daemon=True,
            name=f"repro-partition-{partition}",
        )
        self.process.start()
        child_end.close()
        self._lock = threading.Lock()
        self._seq = 0
        self._closed = False

    @property
    def alive(self) -> bool:
        """Whether the worker process is currently running."""
        return not self._closed and self.process.is_alive()

    def request(self, op: str, payload: object = None, timeout_s: float = 1.0) -> object:
        """One request/response exchange with a deadline.

        Raises :class:`WorkerUnavailable` on a dead process or broken pipe,
        :class:`WorkerTimeout` on a missed deadline, and
        :class:`RemoteStoreError` for errors raised inside the worker.
        """
        with self._lock:
            if self._closed:
                raise WorkerUnavailable(self.partition, "handle closed")
            self._seq += 1
            seq = self._seq
            try:
                self._connection.send((seq, op, payload))
            except (OSError, ValueError) as error:
                raise WorkerUnavailable(self.partition, str(error)) from error
            deadline = time.monotonic() + timeout_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise WorkerTimeout(self.partition, op, timeout_s)
                try:
                    if not self._connection.poll(remaining):
                        raise WorkerTimeout(self.partition, op, timeout_s)
                    reply = self._connection.recv()
                except (EOFError, OSError) as error:
                    raise WorkerUnavailable(self.partition, str(error)) from error
                if reply[0] != seq:
                    # A reply to an earlier, timed-out request: discard it and
                    # keep waiting for ours.
                    continue
                if reply[1] == "ok":
                    return reply[2]
                _, _, kind, message = reply
                raise RemoteStoreError(self.partition, kind, message)

    def kill(self) -> None:
        """SIGKILL the worker process (the chaos harness's crash primitive)."""
        self.process.kill()

    def close(self, timeout_s: float = 2.0) -> None:
        """Graceful stop: request shutdown, join, escalate to kill."""
        if self._closed:
            return
        try:
            self.request("stop", timeout_s=min(0.5, timeout_s))
        except (WorkerUnavailable, WorkerTimeout, RemoteStoreError):
            pass
        self.process.join(timeout_s)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout_s)
        self._closed = True
        self._connection.close()

    def abandon(self) -> None:
        """Mark a crashed handle dead without joining (supervisor path)."""
        self._closed = True
        try:
            self._connection.close()
        except OSError:  # pragma: no cover - close on a broken pipe
            pass
        if self.process.is_alive():  # pragma: no cover - crash already happened
            self.process.kill()
        self.process.join(0.5)
