"""Journaled live migration over the real SQLite worker cluster.

This is the integration seam between the two halves of the repo: the
crash-safe migration state machine of :mod:`repro.online.migration` (journal,
dual-write window, pacing, rollback) executing against the worker-process
storage backend of :mod:`repro.storage` (durable SQLite files, supervised
restarts, exactly-once application).

:class:`SqliteMigrationBackend` adapts a running
:class:`~repro.storage.cluster.SqliteStorageCluster` to the
:class:`~repro.online.migration.MigrationBackend` contract.  Three properties
make the steps safe under concurrent client traffic and SIGKILLs:

* **Exactly-once movement.**  Every copy/drop step applies through the
  partition's ``_repro_applied`` dedup table with a transaction id derived
  from the journal's ``migration_id`` plus the step's (action, tuple,
  partitions) — stable across resumes, unique across successive migrations.
  A step replayed after a crash reports ``duplicate``/``present``/``absent``
  and is counted as a skip, exactly like the simulated backend.
* **Step atomicity vs live writers.**  A copy reads the source replica and
  writes the destination as two worker round-trips; a client update landing
  between them would be lost at the destination after the flip.  The backend
  therefore acquires the same :class:`~repro.storage.coordinator.LockManager`
  tokens a single-key writer takes, for the duration of the step — share the
  coordinator's lock manager and copies serialise with conflicting client
  writes.  Tokens are acquired in the global sort order and only one tuple's
  tokens are held at a time, so no deadlock can form.
* **Crash patience.**  Worker requests ride the seeded
  :class:`~repro.storage.retry.RetryPolicy` and, like the coordinator, keep
  waiting out a supervisor restart window patiently rather than failing the
  migration on the first exhausted budget.

:class:`StorageMigrator` is the :class:`~repro.online.migration.JournaledMigrator`
bound to that backend; :func:`plan_storage_resize` builds a resize journal
from the cluster's *actual* tuple locations; and
:class:`StorageMigrationSession` paces ticks between live transactions the
way the simulated controller's session does.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.catalog.tuples import TupleId
from repro.core.strategies import hash_home
from repro.distributed.faults import FaultInjector
from repro.graph.assignment import PartitionAssignment
from repro.obs import get_telemetry
from repro.online.controller import MigrationPacer
from repro.online.migration import (
    FileJournalSink,
    JournaledMigrator,
    MemoryJournalSink,
    MigrationJournal,
    MigrationReport,
    plan_migration,
)
from repro.routing.router import Router
from repro.storage.cluster import SqliteStorageCluster
from repro.storage.coordinator import (
    PATIENT_ATTEMPTS,
    PATIENT_DELAY_S,
    LockManager,
)
from repro.storage.retry import RetryBudgetExhausted, RetryOptions, RetryPolicy
from repro.utils.canonical_json import dumps_canonical


class SqliteMigrationBackend:
    """Adapts the worker cluster to the migration executor's backend contract."""

    def __init__(
        self,
        cluster: SqliteStorageCluster,
        *,
        migration_id: str,
        locks: LockManager | None = None,
        retry_options: RetryOptions | None = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.cluster = cluster
        self.migration_id = migration_id
        self.locks = locks if locks is not None else LockManager()
        self.policy = RetryPolicy(retry_options, seed=seed, sleep=sleep)
        self._sleep = sleep

    # -- cluster shape -----------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return self.cluster.num_partitions

    def grow_to(self, num_partitions: int) -> None:
        self.cluster.grow_to(num_partitions)

    def shrink_to(self, num_partitions: int) -> None:
        self.cluster.shrink_to(num_partitions)

    # -- worker requests ---------------------------------------------------------------
    def _request(self, partition: int, op: str, payload: object) -> object:
        return self.cluster.handle(partition).request(
            op, payload, timeout_s=self.policy.options.timeout_s
        )

    def _patiently(self, operation: str, key: object, attempt: Callable[[], object]) -> object:
        """Retry through restart windows like the coordinator's apply path."""
        last_error: RetryBudgetExhausted | None = None
        for _ in range(PATIENT_ATTEMPTS):
            try:
                return self.policy.run(operation, key, attempt)
            except RetryBudgetExhausted as error:
                last_error = error
                self._sleep(PATIENT_DELAY_S)
        assert last_error is not None
        raise last_error

    # -- step execution ----------------------------------------------------------------
    def _tokens(self, tuple_id: TupleId) -> list[tuple]:
        # The same tokens a single-key client write takes (see
        # write_lock_tokens), in the same global sort order.
        return sorted(
            [("key", tuple_id.table, tuple(tuple_id.key)), ("table-s", tuple_id.table)],
            key=repr,
        )

    def copy_tuple(self, tuple_id: TupleId, source: int, target: int) -> int | None:
        """Move one replica: export from ``source``, exactly-once apply to
        ``target``.  ``None`` = vanished at source, ``0`` = already present
        at target (dedup replay, or a dual-write landed it first)."""
        key = tuple(tuple_id.key)
        txn_id = (
            f"{self.migration_id}:copy:{tuple_id.table}:{key!r}:{source}->{target}"
        )
        tokens = self.locks.acquire(self._tokens(tuple_id))
        try:
            row = self._patiently(
                "migrate-export",
                (txn_id, "export"),
                lambda: self._request(source, "export_row", (tuple_id.table, key)),
            )
            if row is None:
                return None
            outcome = self._patiently(
                "migrate-in",
                (txn_id, "apply"),
                lambda: self._request(
                    target, "migrate_in", (txn_id, tuple_id.table, key, row)
                ),
            )
            if outcome == "applied":
                return len(dumps_canonical(row))
            return 0
        finally:
            self.locks.release(tokens)

    def drop_tuple(self, tuple_id: TupleId, partition: int) -> bool:
        """Exactly-once removal of a stale replica; ``False`` = already gone."""
        key = tuple(tuple_id.key)
        txn_id = f"{self.migration_id}:drop:{tuple_id.table}:{key!r}:{partition}"
        tokens = self.locks.acquire(self._tokens(tuple_id))
        try:
            outcome = self._patiently(
                "migrate-out",
                (txn_id, "apply"),
                lambda: self._request(
                    partition, "migrate_out", (txn_id, tuple_id.table, key)
                ),
            )
            return outcome == "applied"
        finally:
            self.locks.release(tokens)

    def tuple_locations_map(self) -> dict[TupleId, frozenset[int]]:
        """Where every tuple physically lives, by asking each worker."""
        locations: dict[TupleId, set[int]] = {}
        for partition in range(self.cluster.num_partitions):
            rows = self._patiently(
                "migrate-locations",
                ("locations", partition),
                lambda p=partition: self._request(p, "tuple_ids", None),
            )
            for table, key in rows:
                tuple_id = TupleId(table, tuple(key))
                locations.setdefault(tuple_id, set()).add(partition)
        return {
            tuple_id: frozenset(partitions)
            for tuple_id, partitions in locations.items()
        }


class StorageMigrator(JournaledMigrator):
    """A :class:`JournaledMigrator` executing against the real worker cluster.

    Identical state machine, journal format, and crash model as the
    simulated executor — only the step primitives differ.  Pass the
    coordinator's ``locks`` so migration steps serialise with concurrent
    client writes on the same tuples.
    """

    def __init__(
        self,
        cluster: SqliteStorageCluster,
        router: Router,
        journal: MigrationJournal,
        sink: MemoryJournalSink | FileJournalSink | None = None,
        batch_size: int = 64,
        injector: FaultInjector | None = None,
        *,
        locks: LockManager | None = None,
        retry_options: RetryOptions | None = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.storage_cluster = cluster
        self.backend = SqliteMigrationBackend(
            cluster,
            migration_id=journal.migration_id,
            locks=locks,
            retry_options=retry_options,
            seed=seed,
            sleep=sleep,
        )
        super().__init__(
            self.backend,
            router,
            journal,
            sink=sink,
            batch_size=batch_size,
            injector=injector,
        )


def plan_storage_resize(
    cluster: SqliteStorageCluster,
    new_num_partitions: int,
    *,
    migration_id: str,
    lookup_backend: str = "dict",
    default_policy: str = "hash",
    retry_options: RetryOptions | None = None,
    seed: int = 0,
) -> MigrationJournal:
    """Build the resize journal for a running cluster from its real contents.

    Singleton tuples re-home to their hash placement at the new partition
    count (the same target rule as the simulated controller's resize);
    replicated tuples keep every location that survives the resize.  The
    returned journal has ``backend="storage"`` and carries ``migration_id``,
    so any later :class:`StorageMigrator` — including one attached after a
    crash — derives the same exactly-once transaction ids.
    """
    if new_num_partitions <= 0:
        raise ValueError("new_num_partitions must be positive")
    backend = SqliteMigrationBackend(
        cluster, migration_id=migration_id, retry_options=retry_options, seed=seed
    )
    locations = backend.tuple_locations_map()
    assignment = PartitionAssignment(new_num_partitions)
    for tuple_id, resident in sorted(locations.items()):
        if len(resident) > 1:
            surviving = frozenset(
                partition for partition in resident if partition < new_num_partitions
            )
            assignment.assign(
                tuple_id, surviving or hash_home(tuple_id, new_num_partitions)
            )
        else:
            assignment.assign(tuple_id, hash_home(tuple_id, new_num_partitions))
    plan = plan_migration(lambda tuple_id: locations[tuple_id], assignment)
    return MigrationJournal.for_plan(
        plan,
        kind="resize",
        flip_mode="swap",
        old_num_partitions=cluster.num_partitions,
        new_num_partitions=new_num_partitions,
        lookup_backend=lookup_backend,
        default_policy=default_policy,
        migration_id=migration_id,
        backend="storage",
    )


class StorageMigrationSession:
    """Paced ticks of a :class:`StorageMigrator` between live transactions.

    The storage-side mirror of the controller's
    :class:`~repro.online.controller.MigrationSession`: a traffic loop (or
    the driver's commit hook) calls :meth:`tick` between transactions; an
    attached :class:`~repro.online.controller.MigrationPacer` — fed the
    live :class:`~repro.storage.driver.DriverReport` latency/abort stream —
    gates each tick's step budget, holding the migration still while the
    SLO recovers.
    """

    def __init__(
        self,
        migrator: StorageMigrator,
        *,
        pacer: MigrationPacer | None = None,
    ) -> None:
        if migrator.journal.kind != "resize":
            raise ValueError("StorageMigrationSession drives resize journals")
        self.migrator = migrator
        self.journal = migrator.journal
        self.pacer = pacer
        self.ticks = 0
        self.steps_executed = 0

    @property
    def report(self) -> MigrationReport:
        """Execution report of (this attempt at) the migration."""
        return self.migrator.report

    @property
    def done(self) -> bool:
        """Whether the journal reached a terminal state."""
        return self.journal.is_terminal

    def tick(self, idle: bool = False) -> int:
        """Advance by one paced batch; returns the steps executed."""
        if self.journal.is_terminal:
            return 0
        self.ticks += 1
        budget: int | None = None
        if self.pacer is not None:
            budget = self.pacer.plan_steps(idle=idle)
            if budget == 0:
                return 0
        tracer = get_telemetry().tracer
        with tracer.span(
            "migration.tick", state=self.journal.state, budget=budget
        ) as span:
            executed = self.migrator.step(budget)
            span.set_attribute("executed", executed)
        self.steps_executed += executed
        return executed

    def cancel(self) -> None:
        """Switch the migration onto the rollback branch (see the journal)."""
        self.migrator.cancel()

    def run_to_completion(self, max_ticks: int = 1_000_000) -> MigrationReport:
        """Idle-tick the migration to a terminal state (the drain phase)."""
        stalled = 0
        for _ in range(max_ticks):
            if self.journal.is_terminal:
                return self.migrator.report
            executed = self.tick(idle=True)
            if executed == 0 and not self.journal.is_terminal:
                stalled += 1
                if stalled > 10_000:
                    raise RuntimeError(
                        f"migration stalled at {self.journal.progress_summary()}"
                    )
            else:
                stalled = 0
        raise RuntimeError("migration did not terminate within max_ticks")
