"""The durable cluster: one SQLite file per partition, workers supervised.

:class:`SqliteStorageCluster` owns a directory of ``partition-N.sqlite``
files and the :class:`~repro.storage.supervisor.WorkerSupervisor` running a
worker process over each.  Bulk loading happens in the parent *before* the
workers start (each file is opened once, filled in one transaction, and
closed), so workers begin life on an already-consistent snapshot — the same
placement semantics as the simulated
:meth:`repro.distributed.cluster.Cluster.from_database`, with replicated
tuples landing on every partition their placement names.

After :meth:`close`, :meth:`open_store` reopens a partition's file directly
for the audit walks — reading the bytes that actually survived, not any
in-memory mirror.
"""

from __future__ import annotations

from pathlib import Path

from repro.catalog.schema import Schema
from repro.catalog.tuples import TupleId
from repro.engine.database import Database
from repro.obs import get_telemetry
from repro.storage.sqlite_store import SqlitePartitionStore
from repro.storage.supervisor import WorkerSupervisor
from repro.storage.worker import WorkerHandle


def partition_path(directory: str | Path, partition: int) -> Path:
    """The SQLite file backing ``partition`` inside ``directory``."""
    return Path(directory) / f"partition-{partition}.sqlite"


class SqliteStorageCluster:
    """A set of supervised partition workers over durable SQLite files."""

    def __init__(
        self,
        directory: str | Path,
        schema: Schema,
        num_partitions: int,
        *,
        journal_sink: object | None = None,
        health_interval_s: float = 0.05,
        startup_deadline_s: float = 30.0,
    ) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.schema = schema
        self.num_partitions = num_partitions
        self.paths = {
            partition: partition_path(self.directory, partition)
            for partition in range(num_partitions)
        }
        self.supervisor = WorkerSupervisor(
            {partition: str(path) for partition, path in self.paths.items()},
            schema,
            journal_sink=journal_sink,
            health_interval_s=health_interval_s,
            startup_deadline_s=startup_deadline_s,
        )
        self._started = False
        self._closed = False
        self._kills = get_telemetry().metrics.counter(
            "storage.worker_kills", "worker processes killed by the chaos harness"
        )

    @classmethod
    def from_database(
        cls,
        directory: str | Path,
        database: Database,
        placement,
        **kwargs: object,
    ) -> "SqliteStorageCluster":
        """Materialise and load a cluster by placing every tuple of ``database``.

        ``placement`` is a :class:`~repro.core.strategies.PartitioningStrategy`
        or a :class:`~repro.pipeline.plan.PartitionPlan`; replicated tuples
        are copied to every partition in their placement set.  Workers are
        *not* started — call :meth:`start` once loading is done.
        """
        from repro.pipeline.plan import PartitionPlan

        strategy = (
            placement.build_strategy()
            if isinstance(placement, PartitionPlan)
            else placement
        )
        cluster = cls(directory, database.schema, strategy.num_partitions, **kwargs)
        per_partition: dict[int, dict[str, list[dict]]] = {
            partition: {} for partition in range(strategy.num_partitions)
        }
        for table in database.schema.tables:
            storage = database.storage(table.name)
            for key, row in storage.rows():
                placements = strategy.partitions_for_tuple(TupleId(table.name, key), row)
                for partition in placements:
                    per_partition[partition].setdefault(table.name, []).append(dict(row))
        for partition, tables in per_partition.items():
            with SqlitePartitionStore(cluster.paths[partition], database.schema) as store:
                for table_name, rows in tables.items():
                    store.bulk_load(table_name, rows)
        return cluster

    # -- lifecycle ---------------------------------------------------------------------
    def start(self) -> "SqliteStorageCluster":
        """Start every worker process and the supervisor's health loop."""
        if self._started:
            return self
        self.supervisor.start()
        self._started = True
        return self

    def close(self) -> None:
        """Stop the supervisor and every worker; files stay on disk."""
        if self._closed:
            return
        self.supervisor.close()
        self._closed = True

    def __enter__(self) -> "SqliteStorageCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- access ------------------------------------------------------------------------
    def handle(self, partition: int) -> WorkerHandle:
        """The live handle of ``partition`` (via the supervisor)."""
        return self.supervisor.handle(partition)

    def kill_worker(self, partition: int) -> None:
        """SIGKILL one partition's worker process (chaos entry point)."""
        self.supervisor.kill_worker(partition)
        self._kills.inc()

    def restart_count(self) -> int:
        """Worker restarts the supervisor has performed."""
        return self.supervisor.restart_count()

    # -- elastic resizing --------------------------------------------------------------
    def grow_to(self, num_partitions: int) -> None:
        """Add empty partitions (with live workers when started) up to
        ``num_partitions``.  Idempotent: re-attaching a resumed migration
        finds the partitions already present and does nothing."""
        if num_partitions <= self.num_partitions:
            return
        for partition in range(self.num_partitions, num_partitions):
            path = partition_path(self.directory, partition)
            # Run the DDL in the parent so the worker's own open (and any
            # direct audit open) finds the schema already materialised.
            SqlitePartitionStore(path, self.schema).close()
            self.paths[partition] = path
            self.supervisor.add_partition(partition, str(path))
        self.num_partitions = num_partitions

    def shrink_to(self, num_partitions: int) -> None:
        """Remove the evacuated partitions above ``num_partitions`` — their
        workers stop and their files are deleted.  Idempotent like
        :meth:`grow_to`."""
        if num_partitions >= self.num_partitions:
            return
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        for partition in range(num_partitions, self.num_partitions):
            self.supervisor.remove_partition(partition)
            path = self.paths.pop(partition, None)
            if path is None:
                continue
            for suffix in ("", "-wal", "-shm"):
                sidecar = path.with_name(path.name + suffix)
                if sidecar.exists():
                    sidecar.unlink()
        self.num_partitions = num_partitions

    def open_store(self, partition: int) -> SqlitePartitionStore:
        """Open a partition's file directly (audits; cluster must be closed)."""
        if self._started and not self._closed:
            raise RuntimeError("close the cluster before opening stores directly")
        return SqlitePartitionStore(self.paths[partition], self.schema)
