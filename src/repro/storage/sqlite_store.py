"""One partition's durable store: a SQLite database file in WAL mode.

The store owns exactly one file and provides the operations the worker
process serves: exactly-once transaction application, reads, and the audit
walks.  Crash safety comes from SQLite itself — ``journal_mode=WAL`` plus
``synchronous=FULL`` means a ``SIGKILL`` at any instruction leaves the file
in the last committed state, and the next open replays the WAL.

**Exactly-once application.**  Each partition keeps a dedup table
(``_repro_applied``) of transaction ids it has durably applied.  A
transaction's statements for this partition are executed and the dedup row
inserted inside *one* SQLite transaction, so a crash either persists both or
neither; a retried apply whose id is already present is a no-op reporting
``"duplicate"``.  This is what makes the coordinator's retry loop safe: a
timeout tells the client nothing about whether the write landed, and the
dedup table resolves the ambiguity instead of double-applying delta updates.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Sequence

from repro.catalog.schema import Schema
from repro.catalog.tuples import TupleId
from repro.sqlparse.ast import Statement
from repro.storage.sql import compile_statement, create_schema_sql, quote_identifier

#: dedup table name; underscore-prefixed so it can never collide with a
#: catalog table (catalog identifiers are plain words).
APPLIED_TABLE = "_repro_applied"


class StoreConstraintError(ValueError):
    """A statement violated a constraint (duplicate key, type error).

    Non-retryable by definition: re-running the statement can only fail the
    same way, so the retry policy classifies it fatal.
    """


class SqlitePartitionStore:
    """One partition's SQLite database (WAL mode, schema from the catalog)."""

    def __init__(self, path: str | Path, schema: Schema, *, synchronous: str = "FULL") -> None:
        self.path = Path(path)
        self.schema = schema
        self._connection = sqlite3.connect(str(self.path))
        self._connection.isolation_level = None  # explicit BEGIN/COMMIT only
        cursor = self._connection.cursor()
        cursor.execute("PRAGMA journal_mode=WAL")
        cursor.execute(f"PRAGMA synchronous={synchronous}")
        cursor.execute("PRAGMA busy_timeout=5000")
        for ddl in create_schema_sql(schema):
            cursor.execute(ddl)
        cursor.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(APPLIED_TABLE)} "
            "(txn_id TEXT PRIMARY KEY)"
        )
        self._connection.commit()

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "SqlitePartitionStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writes ------------------------------------------------------------------------
    def apply_transaction(self, txn_id: str, statements: Sequence[Statement]) -> str:
        """Apply this partition's share of one transaction, exactly once.

        Returns ``"applied"`` on first application and ``"duplicate"`` when
        ``txn_id`` was already durably applied (the retried-after-timeout
        case).  All statements plus the dedup marker commit atomically; any
        failure rolls the whole batch back, so a fatal error leaves this
        partition untouched by the transaction.
        """
        cursor = self._connection.cursor()
        cursor.execute("BEGIN IMMEDIATE")
        try:
            cursor.execute(
                f"SELECT 1 FROM {quote_identifier(APPLIED_TABLE)} WHERE txn_id = ?",
                (txn_id,),
            )
            if cursor.fetchone() is not None:
                cursor.execute("ROLLBACK")
                return "duplicate"
            for statement in statements:
                sql, params = compile_statement(statement)
                cursor.execute(sql, params)
            cursor.execute(
                f"INSERT INTO {quote_identifier(APPLIED_TABLE)} (txn_id) VALUES (?)",
                (txn_id,),
            )
            cursor.execute("COMMIT")
            return "applied"
        except sqlite3.IntegrityError as error:
            cursor.execute("ROLLBACK")
            raise StoreConstraintError(str(error)) from error
        except Exception:
            cursor.execute("ROLLBACK")
            raise

    # -- migration primitives ----------------------------------------------------------
    def _pk_predicate(self, table: str) -> tuple[tuple[str, ...], str]:
        meta = self.schema.table(table)
        predicate = " AND ".join(
            f"{quote_identifier(column)} = ?" for column in meta.primary_key
        )
        return meta.primary_key, predicate

    def export_row(self, table: str, key: Sequence[object]) -> dict[str, object] | None:
        """The row of ``table`` at primary key ``key``, or ``None`` if absent.

        The bulk-export read of the migration copy path: the migrator reads
        the source replica here and ships it to the destination's
        :meth:`migrate_in`.
        """
        meta = self.schema.table(table)
        columns = meta.column_names
        _, predicate = self._pk_predicate(table)
        selected = ", ".join(quote_identifier(column) for column in columns)
        values = self._connection.execute(
            f"SELECT {selected} FROM {quote_identifier(table)} WHERE {predicate}",
            tuple(key),
        ).fetchone()
        if values is None:
            return None
        return dict(zip(columns, values))

    def migrate_in(
        self, txn_id: str, table: str, key: Sequence[object], row: dict[str, object]
    ) -> str:
        """Land a migrated replica of ``row`` exactly once.

        The check, the insert, and the dedup marker commit in one SQLite
        transaction.  Returns ``"applied"`` on first application,
        ``"present"`` when a row with this key already exists (a dual-write
        landed it first, or a crashed copy is being replayed without its
        marker — either way the resident row is newer-or-equal and must win),
        and ``"duplicate"`` when ``txn_id``'s marker is already durable.
        """
        meta = self.schema.table(table)
        columns = meta.column_names
        _, predicate = self._pk_predicate(table)
        cursor = self._connection.cursor()
        cursor.execute("BEGIN IMMEDIATE")
        try:
            cursor.execute(
                f"SELECT 1 FROM {quote_identifier(APPLIED_TABLE)} WHERE txn_id = ?",
                (txn_id,),
            )
            if cursor.fetchone() is not None:
                cursor.execute("ROLLBACK")
                return "duplicate"
            cursor.execute(
                f"SELECT 1 FROM {quote_identifier(table)} WHERE {predicate}",
                tuple(key),
            )
            outcome = "present"
            if cursor.fetchone() is None:
                cursor.execute(
                    f"INSERT INTO {quote_identifier(table)} "
                    f"({', '.join(quote_identifier(column) for column in columns)}) "
                    f"VALUES ({', '.join('?' for _ in columns)})",
                    [row[column] for column in columns],
                )
                outcome = "applied"
            cursor.execute(
                f"INSERT INTO {quote_identifier(APPLIED_TABLE)} (txn_id) VALUES (?)",
                (txn_id,),
            )
            cursor.execute("COMMIT")
            return outcome
        except sqlite3.IntegrityError as error:
            cursor.execute("ROLLBACK")
            raise StoreConstraintError(str(error)) from error
        except Exception:
            cursor.execute("ROLLBACK")
            raise

    def migrate_out(self, txn_id: str, table: str, key: Sequence[object]) -> str:
        """Remove a stale replica exactly once (the migration drop path).

        Returns ``"applied"`` when the row was deleted, ``"absent"`` when no
        row with this key exists (already dropped before the marker landed),
        ``"duplicate"`` when ``txn_id``'s marker is already durable.  Delete
        and marker commit atomically, like :meth:`migrate_in`.
        """
        _, predicate = self._pk_predicate(table)
        cursor = self._connection.cursor()
        cursor.execute("BEGIN IMMEDIATE")
        try:
            cursor.execute(
                f"SELECT 1 FROM {quote_identifier(APPLIED_TABLE)} WHERE txn_id = ?",
                (txn_id,),
            )
            if cursor.fetchone() is not None:
                cursor.execute("ROLLBACK")
                return "duplicate"
            cursor.execute(
                f"DELETE FROM {quote_identifier(table)} WHERE {predicate}",
                tuple(key),
            )
            outcome = "applied" if cursor.rowcount else "absent"
            cursor.execute(
                f"INSERT INTO {quote_identifier(APPLIED_TABLE)} (txn_id) VALUES (?)",
                (txn_id,),
            )
            cursor.execute("COMMIT")
            return outcome
        except Exception:
            cursor.execute("ROLLBACK")
            raise

    def has_transaction(self, txn_id: str) -> bool:
        """Whether ``txn_id`` was durably applied on this partition."""
        cursor = self._connection.execute(
            f"SELECT 1 FROM {quote_identifier(APPLIED_TABLE)} WHERE txn_id = ?",
            (txn_id,),
        )
        return cursor.fetchone() is not None

    # -- reads -------------------------------------------------------------------------
    def execute_read(self, statement: Statement) -> list[tuple]:
        """Execute a read statement, returning its raw rows."""
        sql, params = compile_statement(statement)
        return self._connection.execute(sql, params).fetchall()

    # -- audit walks -------------------------------------------------------------------
    def all_rows(self, table: str) -> dict[tuple[object, ...], dict[str, object]]:
        """Every row of ``table`` keyed by primary key (audit surface)."""
        meta = self.schema.table(table)
        columns = meta.column_names
        selected = ", ".join(quote_identifier(column) for column in columns)
        rows: dict[tuple[object, ...], dict[str, object]] = {}
        for values in self._connection.execute(
            f"SELECT {selected} FROM {quote_identifier(table)}"
        ):
            row = dict(zip(columns, values))
            rows[meta.primary_key_of(row)] = row
        return rows

    def tuple_ids(self) -> list[TupleId]:
        """Every tuple stored on this partition."""
        out: list[TupleId] = []
        for table in self.schema.tables:
            out.extend(
                TupleId(table.name, key) for key in self.all_rows(table.name)
            )
        return out

    def row_count(self) -> int:
        """Total rows stored across the catalog tables (dedup table excluded)."""
        total = 0
        for table in self.schema.tables:
            (count,) = self._connection.execute(
                f"SELECT COUNT(*) FROM {quote_identifier(table.name)}"
            ).fetchone()
            total += count
        return total

    # -- bulk loading ------------------------------------------------------------------
    def bulk_load(self, table: str, rows) -> int:
        """Insert ``rows`` (mapping iterable) in one transaction; returns count."""
        meta = self.schema.table(table)
        columns = meta.column_names
        sql = (
            f"INSERT INTO {quote_identifier(table)} "
            f"({', '.join(quote_identifier(column) for column in columns)}) "
            f"VALUES ({', '.join('?' for _ in columns)})"
        )
        cursor = self._connection.cursor()
        cursor.execute("BEGIN IMMEDIATE")
        count = 0
        try:
            for row in rows:
                cursor.execute(sql, [row[column] for column in columns])
                count += 1
            cursor.execute("COMMIT")
        except Exception:
            cursor.execute("ROLLBACK")
            raise
        return count
