"""Supervision of partition worker processes.

The supervisor owns the mapping ``partition -> WorkerHandle`` and is the
only component allowed to replace a handle.  A background health-check
thread polls liveness (``Process.is_alive`` plus a ``ping`` round-trip) and
restarts any worker that died — the replacement opens the same SQLite file,
which replays the WAL and resumes from the last committed state.  Restarts
are generation-guarded: a client holding a stale handle gets
``WorkerUnavailable`` and re-fetches through the supervisor on its next
retry attempt.

Every lifecycle event (start, crash detection, restart) is journaled as a
snapshot through a journal sink — by default the fsync'd
:class:`~repro.online.migration.FileJournalSink` — so a post-mortem can
reconstruct the crash/recovery timeline even if the parent itself dies.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Mapping

from repro.catalog.schema import Schema
from repro.obs import get_telemetry
from repro.storage.worker import WorkerHandle, WorkerTimeout, WorkerUnavailable

#: the protocol a journal sink satisfies (``write(text)``); both
#: MemoryJournalSink and FileJournalSink qualify.
JournalSink = object


class WorkerSupervisor:
    """Starts, health-checks, and restarts the partition workers."""

    def __init__(
        self,
        paths: Mapping[int, str],
        schema: Schema,
        *,
        journal_sink: object | None = None,
        health_interval_s: float = 0.05,
        ping_timeout_s: float = 1.0,
        startup_deadline_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._paths = dict(paths)
        self._schema = schema
        self._journal_sink = journal_sink
        self._health_interval_s = health_interval_s
        self._ping_timeout_s = ping_timeout_s
        self._startup_deadline_s = startup_deadline_s
        self._clock = clock
        self._started = False
        self._lock = threading.Lock()
        self._handles: dict[int, WorkerHandle] = {}
        self._generations: dict[int, int] = {partition: 0 for partition in self._paths}
        self._events: list[dict[str, object]] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        metrics = get_telemetry().metrics
        self._restarts = metrics.counter(
            "storage.worker_restarts",
            "worker processes restarted by the supervisor",
            labels=("reason",),
        )
        self._alive_gauge = metrics.gauge(
            "storage.workers_alive", "worker processes currently alive"
        )

    # -- lifecycle ---------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every worker and begin health-checking."""
        with self._lock:
            for partition, path in sorted(self._paths.items()):
                handle = WorkerHandle(partition, path, self._schema, generation=0)
                self._handles[partition] = handle
                self._record_event("start", partition, 0)
        try:
            self._probe_all()
        except Exception:
            # Never leak live worker processes behind a failed start — they
            # would pin the SQLite files and survive the parent.
            with self._lock:
                handles = list(self._handles.values())
                self._handles.clear()
            for handle in handles:
                handle.close()
            raise
        self._alive_gauge.set(len(self._handles))
        self._thread = threading.Thread(
            target=self._health_loop, name="repro-storage-supervisor", daemon=True
        )
        self._thread.start()
        self._started = True

    def close(self) -> None:
        """Stop health-checking, then stop every worker."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            handle.close()
        self._alive_gauge.set(0)

    # -- handle access -----------------------------------------------------------------
    @property
    def partitions(self) -> list[int]:
        """The supervised partition ids, sorted."""
        return sorted(self._paths)

    def handle(self, partition: int) -> WorkerHandle:
        """The current handle of ``partition`` (restarts swap it out)."""
        with self._lock:
            try:
                return self._handles[partition]
            except KeyError:
                raise WorkerUnavailable(partition, "unknown partition") from None

    def add_partition(self, partition: int, path: str) -> None:
        """Begin supervising a new (empty) partition — the elastic grow path.

        When the supervisor is already running, the worker is spawned and
        probed immediately; otherwise it joins the next :meth:`start`.
        """
        with self._lock:
            if partition in self._paths:
                return
            self._paths[partition] = path
            self._generations[partition] = 0
            if self._started:
                self._handles[partition] = WorkerHandle(
                    partition, path, self._schema, generation=0
                )
                self._record_event("start", partition, 0)
        if self._started:
            self._probe_all([partition])
            with self._lock:
                alive = sum(1 for handle in self._handles.values() if handle.alive)
            self._alive_gauge.set(alive)

    def remove_partition(self, partition: int) -> None:
        """Stop supervising ``partition`` and shut its worker down — the
        elastic shrink path (caller has already evacuated the data)."""
        with self._lock:
            if partition not in self._paths:
                return
            del self._paths[partition]
            self._generations.pop(partition, None)
            handle = self._handles.pop(partition, None)
            generation = handle.generation if handle is not None else 0
            self._record_event("stop", partition, generation)
        if handle is not None:
            handle.close()
        with self._lock:
            alive = sum(1 for h in self._handles.values() if h.alive)
        self._alive_gauge.set(alive)

    def kill_worker(self, partition: int) -> None:
        """SIGKILL ``partition``'s worker (chaos-harness entry point).

        The supervisor's health loop notices and restarts it; callers see
        retryable errors in the window between kill and restart.
        """
        self.handle(partition).kill()

    # -- health checking ---------------------------------------------------------------
    def check_once(self) -> list[int]:
        """One health-check sweep; returns the partitions restarted."""
        restarted = []
        with self._lock:
            dead = [
                (partition, handle)
                for partition, handle in self._handles.items()
                if not handle.alive
            ]
        for partition, handle in dead:
            if self._restart(partition, handle, reason="crash"):
                restarted.append(partition)
        return restarted

    def ping(self, partition: int) -> bool:
        """Round-trip liveness probe of one worker."""
        try:
            return self.handle(partition).request("ping", timeout_s=self._ping_timeout_s) == "pong"
        except (WorkerUnavailable, WorkerTimeout):
            return False

    def _probe_all(
        self, partitions: list[int] | None = None, deadline_s: float | None = None
    ) -> None:
        """Wait for every worker's first ping (spawned interpreters boot slowly
        — hundreds of milliseconds each, more under load — so the startup
        probe retries against a deadline — the constructor's
        ``startup_deadline_s`` by default — instead of one strict shot)."""
        if deadline_s is None:
            deadline_s = self._startup_deadline_s
        deadline = self._clock() + deadline_s
        for partition in self.partitions if partitions is None else partitions:
            while True:
                if self.ping(partition):
                    break
                if not self.handle(partition).process.is_alive():  # pragma: no cover
                    raise WorkerUnavailable(partition, "died during startup")
                if self._clock() >= deadline:
                    raise WorkerUnavailable(partition, "did not answer startup ping")

    def _restart(self, partition: int, dead_handle: WorkerHandle, reason: str) -> bool:
        with self._lock:
            # Generation guard: only the thread that observed the *current*
            # handle dead performs the restart; racing observers no-op.  A
            # partition removed (elastic shrink) between observation and here
            # must not be resurrected.
            if self._handles.get(partition) is not dead_handle:
                return False
            if partition not in self._paths:
                return False
            generation = self._generations[partition] + 1
            self._generations[partition] = generation
            dead_handle.abandon()
            self._record_event("crash-detected", partition, generation - 1)
            replacement = WorkerHandle(
                partition, self._paths[partition], self._schema, generation=generation
            )
            self._handles[partition] = replacement
            self._record_event("restart", partition, generation)
        self._restarts.inc(reason=reason)
        return True

    def _health_loop(self) -> None:
        while not self._stop.wait(self._health_interval_s):
            try:
                self.check_once()
            except Exception:  # pragma: no cover - supervision must not die
                pass
            with self._lock:
                alive = sum(1 for handle in self._handles.values() if handle.alive)
            self._alive_gauge.set(alive)

    # -- journaling --------------------------------------------------------------------
    @property
    def events(self) -> list[dict[str, object]]:
        """The lifecycle event log (copies; oldest first)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def restart_count(self) -> int:
        """Restarts performed so far (every crash must map to one)."""
        return sum(1 for event in self.events if event["event"] == "restart")

    def _record_event(self, event: str, partition: int, generation: int) -> None:
        # Caller holds the lock (or is in single-threaded start()).
        self._events.append(
            {
                "event": event,
                "partition": partition,
                "generation": generation,
                "at_s": round(self._clock(), 6),
            }
        )
        if self._journal_sink is not None:
            payload = {"format": "repro-storage-supervisor/1", "events": self._events}
            self._journal_sink.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
