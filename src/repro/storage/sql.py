"""Compile the mini-dialect statement ASTs to parameterised SQLite SQL.

The workload generators and the parser both produce
:data:`repro.sqlparse.ast.Statement` values; this module turns them into
``(sql, params)`` pairs for :mod:`sqlite3`.  Values always travel as bind
parameters — never interpolated — so the compiled text depends only on the
statement *shape* and SQLite's statement cache can actually hit.

The dialect is intentionally small (conjunctions/disjunctions of
comparisons, implicit joins, delta updates); anything outside it is a
programming error and raises :class:`UnsupportedStatementError` rather than
guessing.
"""

from __future__ import annotations

from repro.catalog.schema import ColumnType, Schema, Table
from repro.sqlparse.ast import (
    And,
    ColumnRef,
    Comparison,
    DeleteStatement,
    InsertStatement,
    JoinCondition,
    Or,
    Predicate,
    SelectStatement,
    Statement,
    UpdateStatement,
)


class UnsupportedStatementError(ValueError):
    """The statement uses a construct the SQLite backend cannot compile."""


def quote_identifier(name: str) -> str:
    """Quote an identifier for SQLite (doubling embedded quotes)."""
    return '"' + name.replace('"', '""') + '"'


def _column_sql(column: ColumnRef) -> str:
    if column.table:
        return f"{quote_identifier(column.table)}.{quote_identifier(column.name)}"
    return quote_identifier(column.name)


def compile_predicate(predicate: Predicate) -> tuple[str, list[object]]:
    """Compile a predicate tree to ``(sql, params)``."""
    if isinstance(predicate, Comparison):
        column = _column_sql(predicate.column)
        if predicate.operator == "between":
            return f"{column} BETWEEN ? AND ?", [predicate.low, predicate.high]
        if predicate.operator == "in":
            if not predicate.values:
                # An empty IN list matches nothing; SQLite has no literal for
                # that, so emit a constant-false predicate.
                return "0 = 1", []
            marks = ", ".join("?" for _ in predicate.values)
            return f"{column} IN ({marks})", list(predicate.values)
        return f"{column} {predicate.operator} ?", [predicate.value]
    if isinstance(predicate, JoinCondition):
        return f"{_column_sql(predicate.left)} = {_column_sql(predicate.right)}", []
    if isinstance(predicate, (And, Or)):
        keyword = " AND " if isinstance(predicate, And) else " OR "
        parts: list[str] = []
        params: list[object] = []
        for child in predicate.children:
            child_sql, child_params = compile_predicate(child)
            parts.append(f"({child_sql})")
            params.extend(child_params)
        return keyword.join(parts), params
    raise UnsupportedStatementError(f"cannot compile predicate {predicate!r}")


def compile_statement(statement: Statement) -> tuple[str, list[object]]:
    """Compile one statement AST to ``(sql, params)`` for SQLite."""
    if isinstance(statement, SelectStatement):
        columns = (
            ", ".join(_column_sql(column) for column in statement.columns)
            if statement.columns
            else "*"
        )
        tables = ", ".join(quote_identifier(table) for table in statement.tables)
        sql = f"SELECT {columns} FROM {tables}"
        params: list[object] = []
        if statement.where is not None:
            where_sql, params = compile_predicate(statement.where)
            sql += f" WHERE {where_sql}"
        if statement.limit is not None:
            sql += f" LIMIT {int(statement.limit)}"
        return sql, params
    if isinstance(statement, InsertStatement):
        if not statement.row:
            raise UnsupportedStatementError("INSERT with no columns")
        columns = ", ".join(quote_identifier(column) for column in statement.row)
        marks = ", ".join("?" for _ in statement.row)
        sql = f"INSERT INTO {quote_identifier(statement.table)} ({columns}) VALUES ({marks})"
        return sql, list(statement.row.values())
    if isinstance(statement, UpdateStatement):
        if not statement.assignments:
            raise UnsupportedStatementError("UPDATE with no assignments")
        parts = []
        params = []
        for column, value in statement.assignments.items():
            quoted = quote_identifier(column)
            if isinstance(value, tuple) and len(value) == 2 and value[0] == "delta":
                parts.append(f"{quoted} = {quoted} + ?")
                params.append(value[1])
            else:
                parts.append(f"{quoted} = ?")
                params.append(value)
        sql = f"UPDATE {quote_identifier(statement.table)} SET {', '.join(parts)}"
        if statement.where is not None:
            where_sql, where_params = compile_predicate(statement.where)
            sql += f" WHERE {where_sql}"
            params.extend(where_params)
        return sql, params
    if isinstance(statement, DeleteStatement):
        sql = f"DELETE FROM {quote_identifier(statement.table)}"
        params = []
        if statement.where is not None:
            where_sql, params = compile_predicate(statement.where)
            sql += f" WHERE {where_sql}"
        return sql, params
    raise UnsupportedStatementError(f"cannot compile statement {statement!r}")


_TYPE_AFFINITY = {
    ColumnType.INTEGER: "INTEGER",
    ColumnType.FLOAT: "REAL",
    ColumnType.STRING: "TEXT",
}


def create_table_sql(table: Table) -> str:
    """``CREATE TABLE IF NOT EXISTS`` DDL for one catalog table."""
    columns = [
        f"{quote_identifier(column.name)} {_TYPE_AFFINITY[column.column_type]}"
        for column in table.columns
    ]
    primary_key = ", ".join(quote_identifier(name) for name in table.primary_key)
    columns.append(f"PRIMARY KEY ({primary_key})")
    return (
        f"CREATE TABLE IF NOT EXISTS {quote_identifier(table.name)} "
        f"({', '.join(columns)})"
    )


def create_schema_sql(schema: Schema) -> list[str]:
    """DDL statements materialising ``schema`` (tables + secondary indexes).

    Mirrors :class:`~repro.engine.database.Database`'s default indexing:
    primary-key prefix columns come with the table's primary key; foreign-key
    columns get explicit secondary indexes, since OLTP statements
    overwhelmingly filter on them.
    """
    statements = []
    for table in schema.tables:
        statements.append(create_table_sql(table))
        indexed: set[str] = set()
        for foreign_key in table.foreign_keys:
            for column in foreign_key.columns:
                if column in indexed:
                    continue
                indexed.add(column)
                index_name = quote_identifier(f"idx_{table.name}_{column}")
                statements.append(
                    f"CREATE INDEX IF NOT EXISTS {index_name} ON "
                    f"{quote_identifier(table.name)} ({quote_identifier(column)})"
                )
    return statements
