"""Closed-loop load driver over the storage coordinator.

``num_clients`` worker threads pull transactions from a shared cursor and
execute them back-to-back (closed loop: a client issues its next transaction
the moment the previous one finishes), measuring wall-clock throughput,
latency quantiles, and abort rate.  Latencies are real time and therefore
**not** deterministic — they land in a ``volatile`` metric family excluded
from the default snapshot, while every count the audits rely on (commits,
aborts, fallbacks, restarts) stays exact.

Chaos plugs in through the ``on_commit`` hook: the driver calls it with the
global commit count after every commit, and the storage-resilience
experiment uses that to fire :class:`~repro.distributed.faults.WorkerKill`
entries at seeded commit ticks — deterministic trigger *points* even though
thread interleaving varies run to run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs import get_telemetry
from repro.storage.coordinator import StorageCoordinator, StorageOutcome
from repro.workload.trace import Transaction


@dataclass
class DriverReport:
    """Aggregate results of one closed-loop run."""

    total: int = 0
    committed: int = 0
    aborted: int = 0
    write_fast_fails: int = 0
    read_fallbacks: int = 0
    in_doubt_completed: int = 0
    distributed_committed: int = 0
    distributed_total: int = 0
    wall_s: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    outcomes: list[StorageOutcome] = field(default_factory=list)

    @property
    def throughput_txn_s(self) -> float:
        """Committed transactions per wall-clock second."""
        return self.committed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def abort_rate(self) -> float:
        """Fraction of issued transactions that aborted."""
        return self.aborted / self.total if self.total else 0.0

    @property
    def distributed_fraction(self) -> float:
        """Fraction of issued transactions touching more than one partition."""
        return self.distributed_total / self.total if self.total else 0.0

    def latency_quantile(self, q: float) -> float:
        """Latency quantile in milliseconds (nearest-rank)."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def to_payload(self) -> dict:
        """Deterministic summary (wall-clock fields rounded, kept separate)."""
        return {
            "total": self.total,
            "committed": self.committed,
            "aborted": self.aborted,
            "write_fast_fails": self.write_fast_fails,
            "read_fallbacks": self.read_fallbacks,
            "in_doubt_completed": self.in_doubt_completed,
            "distributed_total": self.distributed_total,
            "distributed_committed": self.distributed_committed,
            "distributed_fraction": round(self.distributed_fraction, 6),
            "abort_rate": round(self.abort_rate, 6),
        }


class ClosedLoopDriver:
    """Runs a workload through the coordinator with concurrent clients."""

    def __init__(
        self,
        coordinator: StorageCoordinator,
        *,
        num_clients: int = 4,
        on_commit: Callable[[int], None] | None = None,
        on_outcome: Callable[[float, bool], None] | None = None,
    ) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        self.coordinator = coordinator
        self.num_clients = num_clients
        self.on_commit = on_commit
        #: called with (latency_ms, aborted) after every transaction — the
        #: live SLO stream a MigrationPacer records to throttle under real
        #: contention.  Wall-clock values: route them only into volatile
        #: instruments.  May run concurrently from client threads.
        self.on_outcome = on_outcome
        self._latency = get_telemetry().metrics.histogram(
            "storage.txn_latency_ms",
            "wall-clock transaction latency in milliseconds",
            volatile=True,
        )

    def run(self, transactions: Sequence[Transaction], txn_id_prefix: str = "txn") -> DriverReport:
        """Execute ``transactions`` to completion; returns the report.

        Transaction ids are positional (``{prefix}-{index}``), so a given
        workload always produces the same id for the same transaction —
        which is what makes the dedup table meaningful across retries.
        """
        report = DriverReport(total=len(transactions))
        cursor_lock = threading.Lock()
        report_lock = threading.Lock()
        state = {"next": 0, "commits": 0}
        errors: list[BaseException] = []

        def next_index() -> int | None:
            with cursor_lock:
                index = state["next"]
                if index >= len(transactions):
                    return None
                state["next"] = index + 1
                return index

        def client() -> None:
            while True:
                index = next_index()
                if index is None:
                    return
                transaction = transactions[index]
                txn_id = f"{txn_id_prefix}-{index}"
                started = time.monotonic()
                try:
                    outcome = self.coordinator.execute_transaction(transaction, txn_id)
                except BaseException as error:  # surfaced after the join
                    with report_lock:
                        errors.append(error)
                    return
                latency_ms = (time.monotonic() - started) * 1000.0
                self._latency.observe(latency_ms)
                if self.on_outcome is not None:
                    self.on_outcome(latency_ms, not outcome.committed)
                commits_now = None
                with report_lock:
                    report.outcomes.append(outcome)
                    report.latencies_ms.append(latency_ms)
                    report.read_fallbacks += outcome.read_fallbacks
                    if outcome.scope == "distributed":
                        report.distributed_total += 1
                    if outcome.committed:
                        report.committed += 1
                        if outcome.in_doubt_completed:
                            report.in_doubt_completed += 1
                        if outcome.scope == "distributed":
                            report.distributed_committed += 1
                        state["commits"] += 1
                        commits_now = state["commits"]
                    else:
                        report.aborted += 1
                        if outcome.reason.startswith("write fast-fail"):
                            report.write_fast_fails += 1
                if commits_now is not None and self.on_commit is not None:
                    self.on_commit(commits_now)

        started = time.monotonic()
        threads = [
            threading.Thread(target=client, name=f"repro-client-{i}", daemon=True)
            for i in range(self.num_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.wall_s = time.monotonic() - started
        if errors:
            raise errors[0]
        return report
