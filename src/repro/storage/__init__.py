"""Real-storage cluster backend: SQLite partitions behind worker processes.

This package is the physical counterpart of :mod:`repro.distributed`: where
the simulated layer *counts* messages against in-memory dicts, here every
partition is a real SQLite database file (WAL mode) owned by a worker
**process**, crashes are processes dying (``SIGKILL``), and recovery is
SQLite's write-ahead log doing its job when a supervised replacement worker
reopens the file.

Layers, bottom to top:

* :mod:`repro.storage.sql` — compiles the mini-dialect statement ASTs to
  parameterised SQLite SQL;
* :mod:`repro.storage.sqlite_store` — one partition's database file: DDL
  from the catalog :class:`~repro.catalog.schema.Schema`, WAL journaling,
  and exactly-once transaction application via a dedup table;
* :mod:`repro.storage.worker` — the worker process owning one store, plus
  the parent-side :class:`~repro.storage.worker.WorkerHandle` speaking a
  sequence-numbered pipe protocol with per-request deadlines;
* :mod:`repro.storage.supervisor` — health-checks workers and restarts
  crashed ones, journaling each restart through the fsync'd
  :class:`~repro.online.migration.FileJournalSink`;
* :mod:`repro.storage.retry` — seeded retry/timeout/backoff policy whose
  schedules are byte-deterministic (:class:`~repro.utils.rng.SeededRng`
  fork per operation key), with retryable-vs-fatal error classification;
* :mod:`repro.storage.cluster` — the set of partition workers plus their
  supervisor, bulk loading, and chaos (:meth:`SqliteStorageCluster.kill_worker`);
* :mod:`repro.storage.coordinator` — routes statements with the existing
  :class:`~repro.routing.router.Router`, holds per-key write locks, retries
  with backoff, falls back to replicas for reads, and completes in-doubt
  transactions forward;
* :mod:`repro.storage.driver` — closed-loop concurrent clients measuring
  wall-clock throughput/latency/abort-rate, with the process-kill chaos
  hook;
* :mod:`repro.storage.migrator` — the journaled live-migration executor
  over this backend: exactly-once cross-partition row movement through the
  dedup table, the dual-write window on the coordinator's router, and paced
  sessions resumable after coordinator or worker kills.
"""

from repro.storage.cluster import SqliteStorageCluster
from repro.storage.coordinator import StorageCoordinator, StorageOutcome
from repro.storage.driver import ClosedLoopDriver, DriverReport
from repro.storage.migrator import (
    SqliteMigrationBackend,
    StorageMigrationSession,
    StorageMigrator,
    plan_storage_resize,
)
from repro.storage.retry import (
    FATAL,
    RETRYABLE,
    RetryBudgetExhausted,
    RetryOptions,
    RetryPolicy,
    classify_error,
)
from repro.storage.sqlite_store import SqlitePartitionStore, StoreConstraintError
from repro.storage.supervisor import WorkerSupervisor
from repro.storage.worker import WorkerHandle, WorkerTimeout, WorkerUnavailable

__all__ = [
    "SqliteStorageCluster",
    "StorageCoordinator",
    "StorageOutcome",
    "ClosedLoopDriver",
    "DriverReport",
    "SqliteMigrationBackend",
    "StorageMigrator",
    "StorageMigrationSession",
    "plan_storage_resize",
    "RetryOptions",
    "RetryPolicy",
    "RetryBudgetExhausted",
    "RETRYABLE",
    "FATAL",
    "classify_error",
    "SqlitePartitionStore",
    "StoreConstraintError",
    "WorkerSupervisor",
    "WorkerHandle",
    "WorkerTimeout",
    "WorkerUnavailable",
]
