"""Retry/timeout/backoff policy for routed storage operations.

Every statement routed to a worker runs under this policy: a per-attempt
deadline, a bounded retry budget, exponential backoff between attempts with
**seeded** jitter, and a retryable-vs-fatal error classification so a
constraint violation is never retried while a dead worker is.

Determinism: the backoff *schedule* of an operation is a pure function of
``(seed, operation key)`` — each schedule draws its jitter from a
:meth:`repro.utils.rng.SeededRng.fork` sub-stream salted with the key, so
concurrent clients never race on a shared generator and two runs of the same
scenario produce byte-identical schedules on either array backend.  Only the
*durations actually slept* are wall-clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.obs import get_telemetry
from repro.utils.rng import SeededRng

T = TypeVar("T")

#: classification outcomes.
RETRYABLE = "retryable"
FATAL = "fatal"
#: table-only marker: the error instance carries its own classification
#: (``RemoteStoreError.kind`` travels from the worker process).
CARRIED = "carried"

#: The classification table: every exception type the storage layer raises,
#: registered retryable-or-fatal **by class name**.  :func:`classify_error`
#: resolves an instance by walking its MRO and taking the first registered
#: name, so subclasses inherit their base's classification unless they
#: register themselves.  The ``exception-classification`` invariant pass
#: (``tools/check_invariants.py``) audits that every ``raise`` under
#: ``src/repro/storage/`` names a registered type — an unregistered error
#: would otherwise default to FATAL silently, and a *wrong* default turns a
#: new error type into an infinite-retry loop or a dropped commit.
EXCEPTION_CLASSIFICATION: dict[str, str] = {
    # Transport-layer failures: the worker is dead, slow, or mid-restart —
    # a later attempt can legitimately succeed.
    "WorkerUnavailable": RETRYABLE,
    "WorkerTimeout": RETRYABLE,
    "BrokenPipeError": RETRYABLE,
    "ConnectionError": RETRYABLE,
    "TimeoutError": RETRYABLE,
    "EOFError": RETRYABLE,
    "OSError": RETRYABLE,
    # The worker classified the error itself; the instance carries it.
    "RemoteStoreError": CARRIED,
    # Data/logic errors: retrying reproduces the failure identically
    # (retrying a duplicate-key insert only burns the budget).
    "StoreConstraintError": FATAL,
    "UnsupportedStatementError": FATAL,
    "ValueError": FATAL,
    "RuntimeError": FATAL,
    # Terminal policy outcomes: already *past* retrying — re-entering the
    # policy with one of these would loop the budget on itself.
    "RetryBudgetExhausted": FATAL,
    "InDoubtError": FATAL,
}


@dataclass
class RetryOptions:
    """Knobs of the storage retry policy.

    Mirrors :class:`~repro.graph.partitioner.PartitionerOptions` hygiene:
    count/duration knobs are clamped to sane floors on construction (zero or
    negative timeouts would otherwise turn every request into an instant
    failure), ratio knobs are validated outright.
    """

    #: per-attempt deadline for one worker request, in milliseconds.
    timeout_ms: float = 1000.0
    #: retry budget: total attempts are ``max_retries + 1``.
    max_retries: int = 4
    #: backoff before the first retry, in milliseconds.
    backoff_base_ms: float = 25.0
    #: backoff growth per retry (exponential).
    backoff_multiplier: float = 2.0
    #: upper bound on a single backoff delay, in milliseconds.
    backoff_cap_ms: float = 1000.0
    #: fraction of each delay that is jittered: the drawn delay lies in
    #: ``[delay * (1 - jitter), delay]``.  0 disables jitter.
    jitter: float = 0.5

    def __post_init__(self) -> None:
        self.timeout_ms = max(1.0, float(self.timeout_ms))
        self.max_retries = max(0, int(self.max_retries))
        self.backoff_base_ms = max(0.0, float(self.backoff_base_ms))
        self.backoff_multiplier = max(1.0, float(self.backoff_multiplier))
        self.backoff_cap_ms = max(self.backoff_base_ms, float(self.backoff_cap_ms))
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    @property
    def timeout_s(self) -> float:
        """Per-attempt deadline in seconds."""
        return self.timeout_ms / 1000.0


class RetryBudgetExhausted(RuntimeError):
    """Every attempt of an operation failed with a retryable error."""

    def __init__(self, operation: str, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"{operation}: retry budget exhausted after {attempts} attempts "
            f"(last error: {last_error!r})"
        )
        self.operation = operation
        self.attempts = attempts
        self.last_error = last_error


def classify_error(error: BaseException) -> str:
    """Classify an operation failure as :data:`RETRYABLE` or :data:`FATAL`.

    Resolution walks the instance's MRO against
    :data:`EXCEPTION_CLASSIFICATION`: the first registered class name wins,
    so ``ConnectionResetError`` inherits ``ConnectionError``'s RETRYABLE and
    ``StoreConstraintError`` overrides its ``ValueError`` base explicitly.
    A :data:`CARRIED` entry defers to the instance's own ``kind`` (the
    worker process classified the error before shipping it over the pipe).
    Unregistered types default to FATAL — the conservative direction (a
    dropped retry surfaces loudly; an infinite retry wedges a client) — and
    the static audit keeps that default from ever being exercised by code
    in the storage layer itself.
    """
    for klass in type(error).__mro__:
        classification = EXCEPTION_CLASSIFICATION.get(klass.__name__)
        if classification == CARRIED:
            return getattr(error, "kind", FATAL)
        if classification is not None:
            return classification
    return FATAL


class RetryPolicy:
    """Executes operations under :class:`RetryOptions` with seeded backoff."""

    def __init__(
        self,
        options: RetryOptions | None = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.options = options or RetryOptions()
        self.seed = seed
        self._sleep = sleep
        metrics = get_telemetry().metrics
        self._retries = metrics.counter(
            "storage.retries", "routed-operation retries by operation kind", labels=("op",)
        )
        self._backoff = metrics.histogram(
            "storage.backoff_ms", "scheduled backoff delays in milliseconds"
        )

    def schedule_for(self, key: object) -> tuple[float, ...]:
        """Backoff delays (ms) for the operation identified by ``key``.

        A pure function of ``(seed, key)``: the jitter draws come from a
        forked sub-stream salted with the key, independent of any other
        operation's draws and of thread interleaving.
        """
        options = self.options
        rng = SeededRng(self.seed).fork(("storage-retry", repr(key)))
        delays = []
        for attempt in range(options.max_retries):
            delay = min(
                options.backoff_cap_ms,
                options.backoff_base_ms * options.backoff_multiplier**attempt,
            )
            if options.jitter > 0.0:
                delay *= 1.0 - options.jitter * rng.random()
            delays.append(delay)
        return tuple(delays)

    def run(self, operation: str, key: object, attempt: Callable[[], T]) -> T:
        """Run ``attempt`` under the policy; returns its result.

        Fatal errors propagate immediately (never retried); retryable errors
        consume the budget with the scheduled backoff between attempts, and
        exhaustion raises :class:`RetryBudgetExhausted` wrapping the last
        error.
        """
        schedule = self.schedule_for(key)
        last_error: BaseException | None = None
        for index in range(len(schedule) + 1):
            try:
                return attempt()
            except BaseException as error:
                if classify_error(error) != RETRYABLE:
                    raise
                last_error = error
                if index < len(schedule):
                    self._retries.inc(op=operation)
                    delay_ms = schedule[index]
                    self._backoff.observe(delay_ms)
                    if delay_ms > 0.0:
                        self._sleep(delay_ms / 1000.0)
        assert last_error is not None
        raise RetryBudgetExhausted(operation, len(schedule) + 1, last_error)
