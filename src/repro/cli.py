"""``python -m repro`` — drive the pipeline end-to-end from workload names.

Four subcommands around the :class:`~repro.pipeline.plan.PartitionPlan`
artifact:

* ``run``    — generate a named workload, run the staged pipeline, write the
  plan file (``--out``) and print its summary;
* ``deploy`` — load a plan file, materialise the cluster, start the online
  controller, stream the workload through it, report routing statistics, and
  optionally re-export the (possibly adapted) live placement as a new plan;
* ``diff``   — compare two plan files (moved/replicated tuples, strategy and
  partition-count changes);
* ``bench``  — run one of the paper's experiments and print its table.

Two observability surfaces ride alongside them: ``status`` renders the state
of a journaled migration (and ``journal inspect`` replays its journal into a
timeline), and ``run``/``deploy``/``bench`` accept ``--metrics-out`` to dump
a canonical-JSON metrics snapshot of everything the invocation did.

Examples::

    python -m repro run --workload simplecount --partitions 4 --out plan.json
    python -m repro diff plan.json plan.json
    python -m repro deploy plan.json --workload simplecount --export live.json
    python -m repro bench --experiment figure1
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro.core.config import default_options
from repro.core.schism import start_online
from repro.experiments.figure4 import FIGURE4_EXPERIMENTS
from repro.obs import Telemetry, get_telemetry, set_telemetry
from repro.pipeline import PartitionPlan, Pipeline
from repro.utils.rng import SeededRng
from repro.workload.rwsets import extract_access_trace
from repro.workload.splitter import split_workload
from repro.workloads import WorkloadBundle, generate_simplecount


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def _simplecount(scale: float, seed: int) -> WorkloadBundle:
    blocks = 5
    return generate_simplecount(
        num_rows=blocks * _scaled(300, scale),
        num_transactions=_scaled(2000, scale),
        num_blocks=blocks,
        seed=seed,
    )


#: the Figure-4 bundle factories, keyed by experiment name — one source of
#: truth for workload sizes shared by `repro run` and `repro bench`.
_FIGURE4_FACTORIES = {
    experiment.key: experiment.bundle_factory for experiment in FIGURE4_EXPERIMENTS
}

#: workload name -> factory(scale, seed).
WORKLOADS: dict[str, Callable[[float, int], WorkloadBundle]] = {
    "simplecount": _simplecount,
    "ycsb-a": _FIGURE4_FACTORIES["ycsb-a"],
    "ycsb-e": _FIGURE4_FACTORIES["ycsb-e"],
    "tpcc": _FIGURE4_FACTORIES["tpcc-2w"],
    "tpce": _FIGURE4_FACTORIES["tpce"],
    "epinions": _FIGURE4_FACTORIES["epinions-2p"],
    "random": _FIGURE4_FACTORIES["random"],
}


def _build_bundle(name: str, scale: float, seed: int) -> WorkloadBundle:
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise SystemExit(
            f"unknown workload {name!r}; choose from {', '.join(sorted(WORKLOADS))}"
        )
    return factory(scale, seed)


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def cmd_run(args: argparse.Namespace) -> int:
    bundle = _build_bundle(args.workload, args.scale, args.seed)
    print(
        f"generated {bundle.name}: {bundle.database.row_count()} tuples, "
        f"{len(bundle.workload)} transactions"
    )
    train, test = split_workload(
        bundle.workload, args.train_fraction, rng=SeededRng(args.seed)
    )
    options = default_options(args.partitions, seed=args.seed)
    if bundle.hash_columns:
        options.hash_columns = bundle.hash_columns
    run = Pipeline(options).run(bundle.database, train, test)
    plan = run.plan(created_by="repro-cli", workload=bundle.name)
    print()
    print(plan.describe())
    if args.out:
        path = plan.save(args.out)
        print(f"\nwrote {path} ({len(plan)} placements, "
              f"fingerprint {plan.content_fingerprint()[:12]})")
    return 0


def _deploy_sqlite(args: argparse.Namespace, plan: PartitionPlan, bundle: WorkloadBundle) -> int:
    """Deploy a plan onto the real SQLite-backed cluster and drive the workload."""
    import tempfile
    import threading

    from repro.routing.lookup import build_lookup_table
    from repro.routing.router import Router
    from repro.storage import (
        ClosedLoopDriver,
        RetryOptions,
        SqliteStorageCluster,
        StorageCoordinator,
    )

    if args.adapt or args.export:
        raise SystemExit("--adapt/--export apply to the in-memory backend only")
    if args.resize is not None and args.resize <= 0:
        raise SystemExit("--resize must be a positive partition count")
    try:
        retry_options = RetryOptions(
            timeout_ms=args.timeout_ms,
            max_retries=args.max_retries,
            backoff_base_ms=args.backoff_base_ms,
        )
    except ValueError as error:
        raise SystemExit(f"invalid retry options: {error}")
    strategy = plan.deployment_strategy("hash")
    lookup_table = build_lookup_table(strategy.assignment)
    router = Router(strategy, bundle.database.schema, lookup_table)
    cleanup = None
    directory = args.storage_dir
    if directory is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-deploy-")
        directory = cleanup.name
    try:
        cluster = SqliteStorageCluster.from_database(
            directory, bundle.database, strategy
        ).start()
        try:
            row_counts = [
                cluster.handle(partition).request("row_count")
                for partition in range(cluster.num_partitions)
            ]
            print(
                f"\nmaterialised {cluster.num_partitions} SQLite partitions "
                f"under {directory}: row counts {row_counts}"
            )
            print(
                f"retry policy: timeout {retry_options.timeout_ms:.0f} ms, "
                f"{retry_options.max_retries} retries, backoff base "
                f"{retry_options.backoff_base_ms:.0f} ms"
            )
            coordinator = StorageCoordinator(
                cluster, router, retry_options=retry_options, seed=args.seed
            )
            session = None
            on_commit = None
            on_outcome = None
            if args.resize is not None:
                from repro.online.controller import MigrationPacer, PacingOptions
                from repro.online.migration import FileJournalSink
                from repro.storage import (
                    StorageMigrationSession,
                    StorageMigrator,
                    plan_storage_resize,
                )

                journal = plan_storage_resize(
                    cluster,
                    args.resize,
                    migration_id=f"cli-resize-{args.resize}-seed{args.seed}",
                    retry_options=retry_options,
                    seed=args.seed,
                )
                journal_path = Path(directory) / "resize.journal"
                sink = FileJournalSink(journal_path)
                sink.write(journal.dumps())
                pacer = MigrationPacer(PacingOptions(max_steps=16), volatile=True)
                migrator = StorageMigrator(
                    cluster,
                    router,
                    journal,
                    sink=sink,
                    batch_size=16,
                    locks=coordinator.locks,
                    retry_options=retry_options,
                    seed=args.seed,
                )
                session = StorageMigrationSession(migrator, pacer=pacer)
                tick_lock = threading.Lock()

                def on_commit(_commits: int) -> None:
                    with tick_lock:
                        if not session.done:
                            session.tick()

                on_outcome = pacer.record
                print(
                    f"live resize {journal.old_num_partitions} -> {args.resize} "
                    f"partitions: {len(journal.plan.copies)} copies, "
                    f"{len(journal.plan.drops)} drops, journal {journal_path}"
                )
            driver = ClosedLoopDriver(
                coordinator,
                num_clients=args.clients,
                on_commit=on_commit,
                on_outcome=on_outcome,
            )
            report = driver.run(bundle.workload.transactions)
            if session is not None:
                session.run_to_completion()
        finally:
            cluster.close()
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    print(
        f"streamed {report.total} transactions with {args.clients} clients: "
        f"{report.committed} committed, {report.aborted} aborted, "
        f"{report.distributed_fraction:.1%} distributed"
    )
    print(
        f"throughput {report.throughput_txn_s:.1f} txn/s (wall-clock), "
        f"p99 latency {report.latency_quantile(0.99):.1f} ms, "
        f"read fallbacks {report.read_fallbacks}, "
        f"in-doubt completed {report.in_doubt_completed}"
    )
    if session is not None:
        journal = session.journal
        print(
            f"resize {journal.old_num_partitions} -> {journal.new_num_partitions} "
            f"partitions {journal.state}: "
            f"copies {journal.copies_done}/{len(journal.plan.copies)}, "
            f"drops {journal.drops_done}/{len(journal.plan.drops)}, "
            f"{journal.records} journal records, "
            f"{session.ticks} ticks"
        )
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    plan = PartitionPlan.load(args.plan)
    print(f"loaded {args.plan}:")
    print(plan.describe())
    bundle = _build_bundle(args.workload, args.scale, args.seed)
    if args.storage == "sqlite":
        return _deploy_sqlite(args, plan, bundle)
    controller = start_online(plan, bundle.database)
    cluster = controller.cluster
    print(
        f"\nmaterialised {cluster.num_partitions} partitions: "
        f"row counts {cluster.row_counts()} (imbalance {cluster.imbalance():.2f})"
    )
    trace = extract_access_trace(bundle.database, bundle.workload)
    observation = controller.observe(trace, auto_adapt=args.adapt)
    stats = controller.monitor.window_stats()
    print(
        f"streamed {observation.transactions} transactions in "
        f"{observation.batches} batches: {stats.distributed_fraction:.1%} distributed, "
        f"load skew {stats.load_skew:.2f}"
    )
    drifted = sum(1 for report in observation.drift_reports if report.drifted)
    print(
        f"drift reports: {len(observation.drift_reports)} ({drifted} drifted), "
        f"adaptations: {len(observation.adaptations)}"
    )
    for record in observation.adaptations:
        print(f"  {record.describe()}")
    if args.export:
        exported = controller.export_plan(created_by="repro-cli deploy")
        exported.save(args.export)
        delta = plan.diff(exported)
        print(f"exported live placement to {args.export}")
        if delta.identical:
            print("live placement matches the deployed plan")
        else:
            print("live placement differs from the deployed plan:")
            for line in delta.describe().splitlines():
                print(f"  {line}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    old = PartitionPlan.load(args.old)
    new = PartitionPlan.load(args.new)
    diff = old.diff(new)
    print(diff.describe())
    if args.fail_on_change and not diff.identical:
        return 1
    return 0


def _bench_figure1(args: argparse.Namespace) -> str:
    from repro.experiments import format_figure1, run_figure1

    return format_figure1(run_figure1())


def _bench_figure4(args: argparse.Namespace) -> str:
    from repro.experiments import format_figure4, run_figure4

    return format_figure4(run_figure4(scale=args.scale, seed=args.seed))


def _bench_figure5(args: argparse.Namespace) -> str:
    from repro.experiments import format_figure5, run_figure5

    return format_figure5(run_figure5(seed=args.seed))


def _bench_figure6(args: argparse.Namespace) -> str:
    from repro.experiments import format_figure6, run_figure6

    fixed = run_figure6(seed=args.seed)
    per_machine = run_figure6(warehouses_per_machine=16, seed=args.seed)
    return format_figure6(fixed, per_machine)


def _bench_table1(args: argparse.Namespace) -> str:
    from repro.experiments import format_table1, run_table1

    return format_table1(run_table1(scale=args.scale, seed=args.seed))


def _bench_online_drift(args: argparse.Namespace) -> str:
    from repro.experiments import format_online_drift, run_online_drift

    return format_online_drift(run_online_drift(seed=args.seed))


def _bench_read_hot(args: argparse.Namespace) -> str:
    from repro.experiments.online_drift import format_read_hot_drift, run_read_hot_drift

    return format_read_hot_drift(run_read_hot_drift(seed=args.seed))


def _bench_elastic(args: argparse.Namespace) -> str:
    from repro.experiments.online_drift import format_elastic_scaling, run_elastic_scaling

    return format_elastic_scaling(run_elastic_scaling(seed=args.seed))


def _bench_resilience(args: argparse.Namespace) -> str:
    from repro.experiments.resilience import format_resilience, run_resilience

    report = run_resilience(seed=args.seed)
    text = format_resilience(report)
    if report.violations:
        # Chaos smoke is a hard gate: any lost update, unreachable tuple, or
        # unresumed crash fails the invocation, not just the printout.
        raise SystemExit(text)
    return text


def _bench_storage_resilience(args: argparse.Namespace) -> str:
    from repro.experiments.storage_resilience import (
        format_storage_resilience,
        run_storage_resilience,
    )

    report = run_storage_resilience(seed=args.seed)
    text = format_storage_resilience(report)
    if report.violations:
        # Same hard gate as the simulated resilience run: a lost update, an
        # unreachable tuple, or an unrestarted worker fails the invocation.
        raise SystemExit(text)
    return text


def _bench_storage_migration(args: argparse.Namespace) -> str:
    from repro.experiments.storage_migration import (
        format_storage_migration,
        run_storage_migration,
    )

    report = run_storage_migration(seed=args.seed)
    text = format_storage_migration(report)
    if report.violations:
        # Hard gate: an unfinished resize, a lost update, a phantom or
        # unreachable tuple, or an unfired kill fails the invocation.
        raise SystemExit(text)
    return text


BENCH_EXPERIMENTS: dict[str, Callable[[argparse.Namespace], str]] = {
    "figure1": _bench_figure1,
    "figure4": _bench_figure4,
    "figure5": _bench_figure5,
    "figure6": _bench_figure6,
    "table1": _bench_table1,
    "online-drift": _bench_online_drift,
    "read-hot-drift": _bench_read_hot,
    "elastic": _bench_elastic,
    "resilience": _bench_resilience,
    "storage-resilience": _bench_storage_resilience,
    "storage-migration": _bench_storage_migration,
}


def cmd_bench(args: argparse.Namespace) -> int:
    print(BENCH_EXPERIMENTS[args.experiment](args))
    return 0


def _load_journal(path_text: str):
    """Load a migration journal from ``path_text``.

    Accepts either the journal file itself or a plan file, in which case the
    journal is looked up at its conventional sibling path (``<plan>.journal``).
    Anything that is not a parseable journal — a plan without a sibling
    journal, a non-JSON file — exits with a friendly message naming the path
    that was probed, never a traceback.
    """
    import json

    from repro.online.migration import (
        JournalFormatError,
        MigrationJournal,
        default_journal_path,
    )

    path = Path(path_text)
    if not path.exists():
        raise SystemExit(f"no such file: {path}")
    try:
        return MigrationJournal.loads(path.read_text(encoding="utf-8"))
    except (JournalFormatError, json.JSONDecodeError, UnicodeDecodeError):
        journal_path = default_journal_path(path)
        if journal_path.exists():
            try:
                return MigrationJournal.loads(journal_path.read_text(encoding="utf-8"))
            except (JournalFormatError, json.JSONDecodeError, UnicodeDecodeError) as error:
                raise SystemExit(
                    f"no journal found: {journal_path} exists but is not a "
                    f"readable migration journal ({error})"
                )
        raise SystemExit(
            f"no journal found: {path} is not a migration journal and nothing "
            f"exists at the probed sibling path {journal_path}"
        )


def cmd_status(args: argparse.Namespace) -> int:
    from repro.obs.status import render_status

    print(render_status(_load_journal(args.path)))
    return 0


def cmd_journal_inspect(args: argparse.Namespace) -> int:
    from repro.obs.status import inspect_journal

    print(inspect_journal(_load_journal(args.path)))
    return 0


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Schism partitioning pipeline: run, deploy, diff, bench.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run the pipeline on a named workload and write a plan file"
    )
    run_parser.add_argument(
        "--workload", required=True, choices=sorted(WORKLOADS), help="workload name"
    )
    run_parser.add_argument("--partitions", type=int, required=True)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--scale", type=float, default=1.0, help="workload size multiplier"
    )
    run_parser.add_argument("--train-fraction", type=float, default=0.7)
    run_parser.add_argument("--out", default=None, help="where to write the plan JSON")
    run_parser.add_argument(
        "--metrics-out",
        default=None,
        help="write a canonical-JSON metrics snapshot of the run here",
    )
    run_parser.set_defaults(handler=cmd_run)

    deploy_parser = subparsers.add_parser(
        "deploy", help="deploy a plan file and stream a workload through it"
    )
    deploy_parser.add_argument("plan", help="plan JSON written by `repro run`")
    deploy_parser.add_argument(
        "--workload", required=True, choices=sorted(WORKLOADS), help="workload name"
    )
    deploy_parser.add_argument("--seed", type=int, default=0)
    deploy_parser.add_argument("--scale", type=float, default=1.0)
    deploy_parser.add_argument(
        "--adapt", action="store_true", help="let the controller adapt on drift"
    )
    deploy_parser.add_argument(
        "--export", default=None, help="re-export the live placement as a plan file"
    )
    deploy_parser.add_argument(
        "--metrics-out",
        default=None,
        help="write a canonical-JSON metrics snapshot of the deployment here",
    )
    deploy_parser.add_argument(
        "--storage",
        choices=("memory", "sqlite"),
        default="memory",
        help="cluster backend: in-memory simulation or real SQLite worker processes",
    )
    deploy_parser.add_argument(
        "--storage-dir",
        default=None,
        help="directory for the SQLite partition files (default: a temp dir)",
    )
    deploy_parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="closed-loop client threads for --storage sqlite",
    )
    deploy_parser.add_argument(
        "--timeout-ms",
        type=float,
        default=1000.0,
        help="per-attempt worker request deadline (sqlite backend)",
    )
    deploy_parser.add_argument(
        "--max-retries",
        type=int,
        default=4,
        help="retry budget per routed operation (sqlite backend)",
    )
    deploy_parser.add_argument(
        "--backoff-base-ms",
        type=float,
        default=25.0,
        help="base backoff before the first retry (sqlite backend)",
    )
    deploy_parser.add_argument(
        "--resize",
        type=int,
        default=None,
        metavar="K",
        help="live-resize the sqlite cluster to K partitions while the "
        "workload runs (journaled dual-write migration)",
    )
    deploy_parser.set_defaults(handler=cmd_deploy)

    diff_parser = subparsers.add_parser("diff", help="compare two plan files")
    diff_parser.add_argument("old")
    diff_parser.add_argument("new")
    diff_parser.add_argument(
        "--fail-on-change",
        action="store_true",
        help="exit 1 when the plans differ (for CI gates)",
    )
    diff_parser.set_defaults(handler=cmd_diff)

    bench_parser = subparsers.add_parser(
        "bench", help="run one of the paper's experiments and print its table"
    )
    bench_parser.add_argument(
        "--experiment", required=True, choices=sorted(BENCH_EXPERIMENTS)
    )
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.add_argument("--scale", type=float, default=1.0)
    bench_parser.add_argument(
        "--metrics-out",
        default=None,
        help="write a canonical-JSON metrics snapshot of the experiment here",
    )
    bench_parser.set_defaults(handler=cmd_bench)

    status_parser = subparsers.add_parser(
        "status", help="render the state of a journaled migration"
    )
    status_parser.add_argument(
        "path", help="migration journal (or plan file with a sibling journal)"
    )
    status_parser.set_defaults(handler=cmd_status)

    journal_parser = subparsers.add_parser(
        "journal", help="inspect migration journal files"
    )
    journal_subparsers = journal_parser.add_subparsers(
        dest="journal_command", required=True
    )
    inspect_parser = journal_subparsers.add_parser(
        "inspect", help="replay a journal into a human-readable timeline"
    )
    inspect_parser.add_argument(
        "path", help="migration journal (or plan file with a sibling journal)"
    )
    inspect_parser.set_defaults(handler=cmd_journal_inspect)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    When ``--metrics-out`` is given, an enabled telemetry registry is
    installed *before* the handler constructs any instrumented objects (they
    resolve their metric handles at construction time) and the snapshot is
    written even when the handler exits via :class:`SystemExit` — the
    resilience gate must not suppress the evidence of the run it failed.
    """
    args = build_parser().parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    if not metrics_out:
        return args.handler(args)
    previous = set_telemetry(Telemetry.create(seed=getattr(args, "seed", 0)))
    try:
        return args.handler(args)
    finally:
        snapshot = get_telemetry().metrics.dumps()
        Path(metrics_out).write_text(snapshot, encoding="utf-8")
        set_telemetry(previous)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
