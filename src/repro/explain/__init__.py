"""The explanation phase: turn a per-tuple partitioning into range predicates.

Mirrors Sections 4.3 and 5.2 of the paper: build a training set of
``(tuple attributes, partition label)`` pairs, keep only attributes that are
frequently used in WHERE clauses and correlated with the label, train a
C4.5-style decision tree, and read the tree back as range-predicate rules.
"""

from repro.explain.dataset import Dataset, LabeledSample, build_training_sets
from repro.explain.decision_tree import DecisionTree, DecisionTreeOptions
from repro.explain.feature_selection import select_attributes, symmetrical_uncertainty
from repro.explain.rules import PredicateRule, RuleCondition, RuleSet
from repro.explain.crossval import cross_validate
from repro.explain.explainer import Explainer, ExplainerOptions, Explanation, TableExplanation

__all__ = [
    "Dataset",
    "DecisionTree",
    "DecisionTreeOptions",
    "Explainer",
    "ExplainerOptions",
    "Explanation",
    "LabeledSample",
    "PredicateRule",
    "RuleCondition",
    "RuleSet",
    "TableExplanation",
    "build_training_sets",
    "cross_validate",
    "select_attributes",
    "symmetrical_uncertainty",
]
