"""K-fold cross-validation for the explanation classifier.

Used as an over-fitting guard (Section 4.3): explanations whose
cross-validated accuracy is poor are discarded in favour of the fine-grained
lookup table or the simpler baseline strategies.
"""

from __future__ import annotations

from typing import Sequence

from repro.explain.dataset import LabeledSample
from repro.explain.decision_tree import DecisionTree, DecisionTreeOptions
from repro.utils.rng import SeededRng


def cross_validate(
    samples: Sequence[LabeledSample],
    attribute_names: Sequence[str],
    folds: int = 5,
    options: DecisionTreeOptions | None = None,
    rng: SeededRng | None = None,
) -> float:
    """Return the mean held-out accuracy over ``folds`` folds.

    Falls back to fitting on everything (accuracy on the training set) when
    there are too few samples to make folding meaningful.
    """
    samples = list(samples)
    if len(samples) < folds * 2:
        tree = DecisionTree(options).fit(samples, attribute_names)
        return tree.accuracy(samples)
    rng = rng or SeededRng(0)
    shuffled = list(samples)
    rng.shuffle(shuffled)
    fold_size = len(shuffled) // folds
    accuracies: list[float] = []
    for fold in range(folds):
        start = fold * fold_size
        end = start + fold_size if fold < folds - 1 else len(shuffled)
        held_out = shuffled[start:end]
        training = shuffled[:start] + shuffled[end:]
        if not training or not held_out:
            continue
        tree = DecisionTree(options).fit(training, attribute_names)
        accuracies.append(tree.accuracy(held_out))
    if not accuracies:
        return 0.0
    return sum(accuracies) / len(accuracies)
