"""Attribute selection for the explanation phase.

Implements a correlation-based feature selection (CFS) in the style of the
Weka component the paper uses: attributes are scored by their symmetrical
uncertainty with the partition label, and a greedy forward search maximises
the CFS merit, which rewards attributes correlated with the class and
penalises attributes correlated with each other.  For TPC-C's ``stock`` table
this is the step that discards ``s_i_id`` and keeps ``s_w_id``.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.explain.dataset import LabeledSample


def symmetrical_uncertainty(
    samples: Sequence[LabeledSample],
    attribute: str,
    other_attribute: str | None = None,
    bins: int = 10,
) -> float:
    """Symmetrical uncertainty between an attribute and the label (or another attribute).

    Numeric attributes are discretised into equal-frequency bins.  Returns a
    value in [0, 1]: 0 means independent, 1 means perfectly predictive.
    """
    first = [_discretise([s.attributes.get(attribute) for s in samples], bins)]
    if other_attribute is None:
        second = [[sample.label for sample in samples]]
    else:
        second = [_discretise([s.attributes.get(other_attribute) for s in samples], bins)]
    x_values = first[0]
    y_values = second[0]
    entropy_x = _entropy_of(x_values)
    entropy_y = _entropy_of(y_values)
    if entropy_x <= 1e-12 and entropy_y <= 1e-12:
        return 0.0
    mutual_information = entropy_x + entropy_y - _joint_entropy(x_values, y_values)
    denominator = entropy_x + entropy_y
    if denominator <= 1e-12:
        return 0.0
    return max(0.0, 2.0 * mutual_information / denominator)


def cfs_merit(
    samples: Sequence[LabeledSample],
    attributes: Sequence[str],
    class_correlations: dict[str, float],
    pairwise_cache: dict[tuple[str, str], float],
    bins: int = 10,
) -> float:
    """CFS merit of an attribute subset (Hall, 1999)."""
    count = len(attributes)
    if count == 0:
        return 0.0
    mean_class_correlation = sum(class_correlations[a] for a in attributes) / count
    if count == 1:
        return mean_class_correlation
    total_pairwise = 0.0
    pairs = 0
    for index, first in enumerate(attributes):
        for second in attributes[index + 1 :]:
            key = (first, second) if first <= second else (second, first)
            if key not in pairwise_cache:
                pairwise_cache[key] = symmetrical_uncertainty(samples, key[0], key[1], bins)
            total_pairwise += pairwise_cache[key]
            pairs += 1
    mean_pairwise = total_pairwise / pairs if pairs else 0.0
    denominator = math.sqrt(count + count * (count - 1) * mean_pairwise)
    if denominator <= 1e-12:
        return 0.0
    return count * mean_class_correlation / denominator


def select_attributes(
    samples: Sequence[LabeledSample],
    candidate_attributes: Sequence[str],
    min_class_correlation: float = 0.01,
    bins: int = 10,
) -> list[str]:
    """Select attributes correlated with the partition label.

    Greedy forward selection on the CFS merit; attributes whose individual
    correlation with the label is below ``min_class_correlation`` are never
    considered.  Returns at least one attribute (the best one) when any
    candidate shows non-zero correlation, otherwise an empty list.
    """
    if not samples:
        return []
    class_correlations = {
        attribute: symmetrical_uncertainty(samples, attribute, None, bins)
        for attribute in candidate_attributes
    }
    viable = [
        attribute
        for attribute in candidate_attributes
        if class_correlations[attribute] >= min_class_correlation
    ]
    if not viable:
        return []
    pairwise_cache: dict[tuple[str, str], float] = {}
    selected: list[str] = []
    best_merit = 0.0
    improved = True
    while improved:
        improved = False
        best_candidate = None
        for attribute in viable:
            if attribute in selected:
                continue
            merit = cfs_merit(samples, selected + [attribute], class_correlations, pairwise_cache, bins)
            if merit > best_merit + 1e-9:
                best_merit = merit
                best_candidate = attribute
        if best_candidate is not None:
            selected.append(best_candidate)
            improved = True
    if not selected:
        selected = [max(viable, key=lambda attribute: class_correlations[attribute])]
    return selected


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _discretise(values: list[object], bins: int) -> list[str]:
    """Convert a value list into categorical bucket labels."""
    numeric = [value for value in values if isinstance(value, (int, float))]
    if len(numeric) == len(values) and values:
        distinct = sorted(set(float(value) for value in numeric))
        if len(distinct) <= bins:
            return [str(float(value)) for value in numeric]
        # Equal-frequency binning over the sorted distinct values.
        ordered = sorted(float(value) for value in numeric)
        boundaries = [
            ordered[min(len(ordered) - 1, int(len(ordered) * (index + 1) / bins))]
            for index in range(bins - 1)
        ]
        labels = []
        for value in numeric:
            bucket = 0
            for boundary in boundaries:
                if float(value) > boundary:
                    bucket += 1
            labels.append(f"b{bucket}")
        return labels
    return [str(value) for value in values]


def _entropy_of(values: list[str]) -> float:
    counts: dict[str, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    total = len(values)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def _joint_entropy(first: list[str], second: list[str]) -> float:
    counts: dict[tuple[str, str], int] = {}
    for left, right in zip(first, second):
        counts[(left, right)] = counts.get((left, right), 0) + 1
    total = len(first)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy
