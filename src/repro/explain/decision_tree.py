"""A C4.5-style decision-tree classifier.

Stands in for Weka's J48 in the paper.  Features:

* binary splits on numeric attributes (``attr <= threshold``), chosen by gain
  ratio over candidate thresholds;
* binary equality splits on categorical (string) attributes;
* stopping rules (purity, minimum leaf size, maximum depth, minimum gain);
* pessimistic error pruning with the C4.5 confidence-factor upper bound,
  which is the "aggressive pruning" the paper relies on to avoid over-fitting;
* rule extraction (root-to-leaf paths) used by the explanation phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.explain.dataset import LabeledSample
from repro.explain.rules import PredicateRule, RuleCondition


@dataclass
class DecisionTreeOptions:
    """Hyper-parameters of the tree."""

    max_depth: int = 12
    min_samples_leaf: int = 1
    min_samples_split: int = 2
    min_gain_ratio: float = 1e-3
    #: C4.5 pruning confidence factor; smaller prunes more aggressively.
    pruning_confidence: float = 0.25
    #: cap on the number of candidate thresholds evaluated per numeric attribute.
    max_thresholds: int = 64
    #: disable pruning entirely (used in tests and ablations).
    prune: bool = True


@dataclass
class _Node:
    """Internal tree node (leaf when ``attribute`` is None)."""

    label: str
    sample_count: int
    error_count: int
    attribute: str | None = None
    threshold: object = None
    categorical: bool = False
    left: "_Node | None" = None
    right: "_Node | None" = None
    label_counts: dict[str, int] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.attribute is None


class DecisionTree:
    """Decision-tree classifier with C4.5-style training and pruning."""

    def __init__(self, options: DecisionTreeOptions | None = None) -> None:
        self.options = options or DecisionTreeOptions()
        self._root: _Node | None = None
        self.attribute_names: tuple[str, ...] = ()

    # -- training ----------------------------------------------------------------------
    def fit(self, samples: Sequence[LabeledSample], attribute_names: Sequence[str]) -> "DecisionTree":
        """Train on ``samples`` using the given candidate attributes."""
        if not samples:
            raise ValueError("cannot fit a decision tree on an empty dataset")
        self.attribute_names = tuple(attribute_names)
        self._root = self._build(list(samples), depth=0)
        if self.options.prune:
            self._prune(self._root)
        return self

    def _build(self, samples: list[LabeledSample], depth: int) -> _Node:
        label_counts = _label_counts(samples)
        majority = _majority_label(label_counts)
        node = _Node(
            label=majority,
            sample_count=len(samples),
            error_count=len(samples) - label_counts[majority],
            label_counts=label_counts,
        )
        if (
            len(label_counts) == 1
            or len(samples) < self.options.min_samples_split
            or depth >= self.options.max_depth
        ):
            return node
        split = self._best_split(samples)
        if split is None:
            return node
        attribute, threshold, categorical, gain_ratio = split
        if gain_ratio < self.options.min_gain_ratio:
            return node
        left_samples, right_samples = _partition_samples(samples, attribute, threshold, categorical)
        if (
            len(left_samples) < self.options.min_samples_leaf
            or len(right_samples) < self.options.min_samples_leaf
        ):
            return node
        node.attribute = attribute
        node.threshold = threshold
        node.categorical = categorical
        node.left = self._build(left_samples, depth + 1)
        node.right = self._build(right_samples, depth + 1)
        return node

    def _best_split(
        self, samples: list[LabeledSample]
    ) -> tuple[str, object, bool, float] | None:
        base_entropy = _entropy(_label_counts(samples).values(), len(samples))
        best: tuple[str, object, bool, float] | None = None
        for attribute in self.attribute_names:
            values = [sample.attributes.get(attribute) for sample in samples]
            if all(value is None for value in values):
                continue
            numeric = all(isinstance(value, (int, float)) for value in values)
            if numeric:
                candidates = self._numeric_thresholds(values)
                categorical = False
            else:
                candidates = sorted({str(value) for value in values})
                categorical = True
            for threshold in candidates:
                gain_ratio = _gain_ratio(samples, attribute, threshold, categorical, base_entropy)
                if gain_ratio is None:
                    continue
                if best is None or gain_ratio > best[3] + 1e-12:
                    best = (attribute, threshold, categorical, gain_ratio)
        return best

    def _numeric_thresholds(self, values: list[object]) -> list[float]:
        distinct = sorted({float(value) for value in values if value is not None})
        if len(distinct) < 2:
            return []
        midpoints = [
            (distinct[index] + distinct[index + 1]) / 2.0 for index in range(len(distinct) - 1)
        ]
        if len(midpoints) > self.options.max_thresholds:
            step = len(midpoints) / self.options.max_thresholds
            midpoints = [midpoints[int(index * step)] for index in range(self.options.max_thresholds)]
        return midpoints

    # -- pruning -----------------------------------------------------------------------
    def _prune(self, node: _Node) -> None:
        """Bottom-up pessimistic pruning (C4.5 upper-confidence error estimate)."""
        if node.is_leaf:
            return
        assert node.left is not None and node.right is not None
        self._prune(node.left)
        self._prune(node.right)
        subtree_error = self._subtree_estimated_error(node)
        leaf_error = _pessimistic_error(
            node.sample_count, node.error_count, self.options.pruning_confidence
        )
        if leaf_error <= subtree_error + 0.1:
            node.attribute = None
            node.threshold = None
            node.left = None
            node.right = None

    def _subtree_estimated_error(self, node: _Node) -> float:
        if node.is_leaf:
            return _pessimistic_error(
                node.sample_count, node.error_count, self.options.pruning_confidence
            )
        assert node.left is not None and node.right is not None
        return self._subtree_estimated_error(node.left) + self._subtree_estimated_error(node.right)

    # -- prediction -----------------------------------------------------------------------
    def predict(self, attributes: dict[str, object]) -> str:
        """Predict the label for a single attribute mapping."""
        if self._root is None:
            raise RuntimeError("the tree has not been fitted")
        node = self._root
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            value = attributes.get(node.attribute)
            if value is None:
                # Missing attribute: follow the heavier branch.
                node = node.left if node.left.sample_count >= node.right.sample_count else node.right
                continue
            node = node.left if _goes_left(value, node.threshold, node.categorical) else node.right
        return node.label

    def accuracy(self, samples: Sequence[LabeledSample]) -> float:
        """Fraction of ``samples`` classified correctly."""
        if not samples:
            return 1.0
        correct = sum(1 for sample in samples if self.predict(sample.attributes) == sample.label)
        return correct / len(samples)

    # -- introspection -----------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Depth of the tree (0 for a single leaf)."""
        return self._depth_of(self._root) if self._root is not None else 0

    def _depth_of(self, node: _Node | None) -> int:
        if node is None or node.is_leaf:
            return 0
        return 1 + max(self._depth_of(node.left), self._depth_of(node.right))

    @property
    def leaf_count(self) -> int:
        """Number of leaves."""
        return self._count_leaves(self._root) if self._root is not None else 0

    def _count_leaves(self, node: _Node | None) -> int:
        if node is None:
            return 0
        if node.is_leaf:
            return 1
        return self._count_leaves(node.left) + self._count_leaves(node.right)

    def rules(self) -> list[PredicateRule]:
        """Extract root-to-leaf paths as predicate rules."""
        if self._root is None:
            raise RuntimeError("the tree has not been fitted")
        rules: list[PredicateRule] = []
        self._collect_rules(self._root, [], rules)
        return rules

    def _collect_rules(
        self, node: _Node, conditions: list[RuleCondition], out: list[PredicateRule]
    ) -> None:
        if node.is_leaf:
            error_rate = node.error_count / node.sample_count if node.sample_count else 0.0
            out.append(
                PredicateRule(tuple(conditions), node.label, node.sample_count, error_rate)
            )
            return
        assert node.left is not None and node.right is not None
        if node.categorical:
            left_condition = RuleCondition(node.attribute, "=", node.threshold)
            right_condition = RuleCondition(node.attribute, "<>", node.threshold)
        else:
            left_condition = RuleCondition(node.attribute, "<=", node.threshold)
            right_condition = RuleCondition(node.attribute, ">", node.threshold)
        self._collect_rules(node.left, conditions + [left_condition], out)
        self._collect_rules(node.right, conditions + [right_condition], out)

    def to_text(self) -> str:
        """Human-readable rendering of the tree (similar to Weka's output)."""
        if self._root is None:
            return "<unfitted>"
        lines: list[str] = []
        self._render(self._root, "", lines)
        return "\n".join(lines)

    def _render(self, node: _Node, indent: str, lines: list[str]) -> None:
        if node.is_leaf:
            error = node.error_count / node.sample_count if node.sample_count else 0.0
            lines.append(f"{indent}-> partition: {node.label} (error: {error:.2%}, n={node.sample_count})")
            return
        assert node.left is not None and node.right is not None
        operator = "=" if node.categorical else "<="
        lines.append(f"{indent}{node.attribute} {operator} {node.threshold}:")
        self._render(node.left, indent + "  ", lines)
        negated = "<>" if node.categorical else ">"
        lines.append(f"{indent}{node.attribute} {negated} {node.threshold}:")
        self._render(node.right, indent + "  ", lines)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _label_counts(samples: Sequence[LabeledSample]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for sample in samples:
        counts[sample.label] = counts.get(sample.label, 0) + 1
    return counts


def _majority_label(counts: dict[str, int]) -> str:
    best = max(counts.values())
    return sorted(label for label, count in counts.items() if count == best)[0]


def _entropy(counts, total: int) -> float:
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        if count > 0:
            probability = count / total
            entropy -= probability * math.log2(probability)
    return entropy


def _goes_left(value: object, threshold: object, categorical: bool) -> bool:
    if categorical:
        return str(value) == threshold
    try:
        return float(value) <= float(threshold)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return False


def _partition_samples(
    samples: list[LabeledSample], attribute: str, threshold: object, categorical: bool
) -> tuple[list[LabeledSample], list[LabeledSample]]:
    left: list[LabeledSample] = []
    right: list[LabeledSample] = []
    for sample in samples:
        value = sample.attributes.get(attribute)
        if value is not None and _goes_left(value, threshold, categorical):
            left.append(sample)
        else:
            right.append(sample)
    return left, right


def _gain_ratio(
    samples: list[LabeledSample],
    attribute: str,
    threshold: object,
    categorical: bool,
    base_entropy: float,
) -> float | None:
    left, right = _partition_samples(samples, attribute, threshold, categorical)
    total = len(samples)
    if not left or not right:
        return None
    left_entropy = _entropy(_label_counts(left).values(), len(left))
    right_entropy = _entropy(_label_counts(right).values(), len(right))
    information_gain = base_entropy - (
        len(left) / total * left_entropy + len(right) / total * right_entropy
    )
    split_info = _entropy([len(left), len(right)], total)
    if split_info <= 1e-12:
        return None
    return information_gain / split_info


def _pessimistic_error(sample_count: int, error_count: int, confidence: float) -> float:
    """C4.5 upper bound on the true error count of a leaf.

    Uses the normal approximation to the binomial confidence interval with
    the given confidence factor (Quinlan's default is 0.25).
    """
    if sample_count == 0:
        return 0.0
    z = _normal_quantile(1.0 - confidence)
    observed = error_count / sample_count
    numerator = (
        observed
        + z * z / (2 * sample_count)
        + z * math.sqrt(observed / sample_count - observed * observed / sample_count + z * z / (4 * sample_count * sample_count))
    )
    upper = numerator / (1 + z * z / sample_count)
    return upper * sample_count


def _normal_quantile(probability: float) -> float:
    """Inverse CDF of the standard normal (Acklam's rational approximation)."""
    if not 0.0 < probability < 1.0:
        raise ValueError("probability must be in (0, 1)")
    # Coefficients for the central region approximation.
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if probability < p_low:
        q = math.sqrt(-2 * math.log(probability))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if probability > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - probability))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    q = probability - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )
