"""Training-set construction for the explanation phase.

For every table with tuples placed by the graph phase we emit one
:class:`LabeledSample` per (sampled) tuple: the candidate attribute values of
the tuple's row and the partition label assigned by the graph partitioner
(replicated tuples get a virtual ``R...`` label combining their destination
partitions, exactly as described in Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.tuples import TupleId
from repro.engine.database import Database
from repro.graph.assignment import PartitionAssignment
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class LabeledSample:
    """One training example: attribute values plus a partition label."""

    attributes: dict[str, object]
    label: str
    tuple_id: TupleId | None = None

    def __hash__(self) -> int:  # attributes dict is small; hash on tuple id + label
        return hash((self.tuple_id, self.label))


@dataclass
class Dataset:
    """A labelled dataset for one table."""

    table: str
    attribute_names: tuple[str, ...]
    samples: list[LabeledSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def labels(self) -> list[str]:
        """Labels in sample order."""
        return [sample.label for sample in self.samples]

    def label_counts(self) -> dict[str, int]:
        """Histogram of labels."""
        counts: dict[str, int] = {}
        for sample in self.samples:
            counts[sample.label] = counts.get(sample.label, 0) + 1
        return counts

    def majority_label(self) -> str:
        """The most common label (ties broken lexicographically for determinism)."""
        counts = self.label_counts()
        best = max(counts.values())
        return sorted(label for label, count in counts.items() if count == best)[0]


def build_training_sets(
    assignment: PartitionAssignment,
    database: Database,
    candidate_attributes: dict[str, tuple[str, ...]],
    max_samples_per_table: int | None = None,
    rng: SeededRng | None = None,
) -> dict[str, Dataset]:
    """Build one :class:`Dataset` per table from a partition assignment.

    Parameters
    ----------
    assignment:
        The per-tuple placement produced by the graph phase.
    database:
        Used to fetch the attribute values of each placed tuple.
    candidate_attributes:
        Mapping of table -> attributes to include (the frequent attribute
        sets from the workload analysis).  Tables not listed are skipped.
    max_samples_per_table:
        Optional cap per table (the paper trains on a few hundred tuples per
        table); sampling is uniform and seeded.
    rng:
        Randomness source for the sampling.
    """
    rng = rng or SeededRng(0)
    per_table_tuples: dict[str, list[TupleId]] = {}
    for tuple_id in assignment:
        if tuple_id.table in candidate_attributes:
            per_table_tuples.setdefault(tuple_id.table, []).append(tuple_id)
    datasets: dict[str, Dataset] = {}
    for table, tuple_ids in sorted(per_table_tuples.items()):
        attributes = candidate_attributes[table]
        if not attributes:
            continue
        tuple_ids = sorted(tuple_ids)
        if max_samples_per_table is not None and len(tuple_ids) > max_samples_per_table:
            # The caller hands us an rng already forked with a static
            # "dataset" tag (explainer.py), so the bare table-name salt
            # cannot collide with any other stream; re-tagging here would
            # silently change every blessed sampled stream.
            tuple_ids = rng.fork(table).sample(tuple_ids, max_samples_per_table)  # repro: allow(determinism)
        dataset = Dataset(table, tuple(attributes))
        for tuple_id in tuple_ids:
            row = database.get_row(tuple_id)
            if row is None:
                continue
            values = {attribute: row.get(attribute) for attribute in attributes}
            if any(value is None for value in values.values()):
                continue
            dataset.samples.append(
                LabeledSample(values, assignment.replication_label(tuple_id), tuple_id)
            )
        if dataset.samples:
            datasets[table] = dataset
    return datasets
