"""Predicate rules extracted from the decision tree.

A :class:`PredicateRule` is a conjunction of attribute conditions mapping to a
partition label (``"0"``, ``"1"``, ... or a replication label such as
``"R0_2"``).  A :class:`RuleSet` bundles the rules for one table together with
a default label for tuples no rule matches, and can classify a row — this is
what the range-predicate partitioning strategy evaluates at routing time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence


@dataclass(frozen=True)
class RuleCondition:
    """One attribute condition: ``attribute <op> value``."""

    attribute: str
    operator: str
    value: object

    def __post_init__(self) -> None:
        if self.operator not in ("<=", ">", "<", ">=", "=", "<>"):
            raise ValueError(f"unsupported rule operator {self.operator!r}")

    def matches(self, row: Mapping[str, object]) -> bool:
        """Evaluate the condition against a row mapping."""
        if self.attribute not in row:
            return False
        actual = row[self.attribute]
        if self.operator == "=":
            return _as_comparable(actual) == _as_comparable(self.value)
        if self.operator == "<>":
            return _as_comparable(actual) != _as_comparable(self.value)
        try:
            left = float(actual)  # type: ignore[arg-type]
            right = float(self.value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        if self.operator == "<=":
            return left <= right
        if self.operator == "<":
            return left < right
        if self.operator == ">":
            return left > right
        return left >= right

    def __str__(self) -> str:
        return f"{self.attribute} {self.operator} {self.value}"


def _as_comparable(value: object) -> object:
    """Coerce numeric types to float so 1 and 1.0 compare equal; strings stay strings."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return str(value)


@dataclass(frozen=True)
class PredicateRule:
    """A conjunction of conditions leading to a partition label."""

    conditions: tuple[RuleCondition, ...]
    label: str
    support: int = 0
    error_rate: float = 0.0

    def matches(self, row: Mapping[str, object]) -> bool:
        """Whether all conditions hold for ``row``."""
        return all(condition.matches(row) for condition in self.conditions)

    def partitions(self) -> frozenset[int]:
        """Decode the label into a set of partition ids."""
        return decode_label(self.label)

    def __str__(self) -> str:
        if not self.conditions:
            clause = "<empty>"
        else:
            clause = " AND ".join(str(condition) for condition in self.conditions)
        return f"{clause}: partition {self.label} (error {self.error_rate:.2%}, n={self.support})"


def decode_label(label: str) -> frozenset[int]:
    """Decode a partition label into the set of partition ids it denotes.

    ``"3"`` -> ``{3}``; ``"R0_2"`` -> ``{0, 2}``.
    """
    if label.startswith("R"):
        parts = label[1:].split("_")
        return frozenset(int(part) for part in parts if part != "")
    return frozenset({int(label)})


@dataclass
class RuleSet:
    """All rules for one table plus a default label for unmatched rows."""

    table: str
    rules: tuple[PredicateRule, ...]
    default_label: str
    attributes: tuple[str, ...] = ()

    def classify(self, row: Mapping[str, object]) -> str:
        """Return the label of the first matching rule (rules are exclusive paths)."""
        for rule in self.rules:
            if rule.matches(row):
                return rule.label
        return self.default_label

    def partitions_for_row(self, row: Mapping[str, object]) -> frozenset[int]:
        """Partition set of the first matching rule (or the default)."""
        return decode_label(self.classify(row))

    @property
    def is_trivial(self) -> bool:
        """True when every row maps to the same single label."""
        labels = {rule.label for rule in self.rules} | {self.default_label}
        return len(labels) == 1

    def describe(self) -> str:
        """Multi-line human-readable description (similar to the paper's listings)."""
        lines = [f"table {self.table} (attributes: {', '.join(self.attributes) or '-'})"]
        for rule in self.rules:
            lines.append(f"  {rule}")
        lines.append(f"  otherwise: partition {self.default_label}")
        return "\n".join(lines)


def rule_set_to_payload(rule_set: RuleSet) -> dict:
    """JSON-serialisable form of a rule set (used by ``PartitionPlan.save``).

    Rule order is preserved — rules are exclusive decision-tree paths, but
    :meth:`RuleSet.classify` returns the *first* match, so order is part of
    the semantics.
    """
    return {
        "table": rule_set.table,
        "default_label": rule_set.default_label,
        "attributes": list(rule_set.attributes),
        "rules": [
            {
                "label": rule.label,
                "support": rule.support,
                "error_rate": rule.error_rate,
                "conditions": [
                    [condition.attribute, condition.operator, condition.value]
                    for condition in rule.conditions
                ],
            }
            for rule in rule_set.rules
        ],
    }


def rule_set_from_payload(payload: dict) -> RuleSet:
    """Inverse of :func:`rule_set_to_payload`."""
    rules = tuple(
        PredicateRule(
            conditions=tuple(
                RuleCondition(attribute, operator, value)
                for attribute, operator, value in rule["conditions"]
            ),
            label=rule["label"],
            support=int(rule.get("support", 0)),
            error_rate=float(rule.get("error_rate", 0.0)),
        )
        for rule in payload["rules"]
    )
    return RuleSet(
        table=payload["table"],
        rules=rules,
        default_label=payload["default_label"],
        attributes=tuple(payload.get("attributes", ())),
    )


def simplify_rules(rules: Sequence[PredicateRule]) -> list[PredicateRule]:
    """Merge redundant conditions within each rule.

    Decision-tree paths routinely contain several conditions on the same
    attribute (e.g. ``w_id <= 5 AND w_id <= 3 AND w_id > 1``); this keeps only
    the tightest bound per (attribute, direction) and drops duplicated
    equality conditions, producing the compact ranges shown in the paper.
    """
    simplified: list[PredicateRule] = []
    for rule in rules:
        upper: dict[str, RuleCondition] = {}
        lower: dict[str, RuleCondition] = {}
        others: list[RuleCondition] = []
        for condition in rule.conditions:
            if condition.operator in ("<=", "<"):
                current = upper.get(condition.attribute)
                if current is None or _bound_value(condition) < _bound_value(current):
                    upper[condition.attribute] = condition
            elif condition.operator in (">", ">="):
                current = lower.get(condition.attribute)
                if current is None or _bound_value(condition) > _bound_value(current):
                    lower[condition.attribute] = condition
            else:
                if condition not in others:
                    others.append(condition)
        merged = tuple(others) + tuple(lower.values()) + tuple(upper.values())
        simplified.append(PredicateRule(merged, rule.label, rule.support, rule.error_rate))
    return simplified


def _bound_value(condition: RuleCondition) -> float:
    try:
        return float(condition.value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 0.0
