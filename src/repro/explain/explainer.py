"""Orchestration of the explanation phase (Sections 4.3 and 5.2).

For each table touched by the workload the explainer:

1. takes the frequently used WHERE-clause attributes of the table
   (pre-computed by :func:`repro.workload.analysis.frequent_attributes`);
2. builds the training set of (attribute values, partition label) pairs from
   the graph phase's assignment;
3. runs correlation-based feature selection to keep only attributes that
   actually predict the partition label;
4. trains a C4.5-style decision tree with pruning, estimating its accuracy by
   cross-validation;
5. extracts and simplifies the root-to-leaf rules into a :class:`RuleSet`.

The per-table rule sets together form the candidate *range-predicate
partitioning* that the final validation phase compares against the lookup
table, hash partitioning, and full replication.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.explain.crossval import cross_validate
from repro.explain.dataset import Dataset, build_training_sets
from repro.explain.decision_tree import DecisionTree, DecisionTreeOptions
from repro.explain.feature_selection import select_attributes
from repro.explain.rules import PredicateRule, RuleSet, simplify_rules
from repro.graph.assignment import PartitionAssignment
from repro.utils.rng import SeededRng
from repro.workload.analysis import frequent_attributes
from repro.workload.trace import Workload


@dataclass
class ExplainerOptions:
    """Knobs for the explanation phase."""

    #: attributes must appear in at least this fraction of a table's statements.
    min_attribute_frequency: float = 0.1
    #: maximum training tuples per table (the paper uses a few hundred).
    max_samples_per_table: int = 2000
    #: minimum cross-validated accuracy for an explanation to be considered useful.
    min_accuracy: float = 0.5
    #: cross-validation folds.
    folds: int = 5
    #: decision-tree hyper-parameters.
    tree_options: DecisionTreeOptions = field(default_factory=DecisionTreeOptions)
    #: random seed for sampling and cross-validation shuffling.
    seed: int = 0


@dataclass
class TableExplanation:
    """Explanation result for one table."""

    table: str
    rule_set: RuleSet
    selected_attributes: tuple[str, ...]
    candidate_attributes: tuple[str, ...]
    training_samples: int
    cross_validated_accuracy: float
    tree_text: str = ""

    @property
    def usable(self) -> bool:
        """Whether the explanation can route queries (some attribute was predictive)."""
        return bool(self.selected_attributes) or self.rule_set.is_trivial


@dataclass
class Explanation:
    """Explanations for every table the workload touches."""

    tables: dict[str, TableExplanation] = field(default_factory=dict)

    def rule_sets(self) -> dict[str, RuleSet]:
        """Mapping of table -> rule set."""
        return {table: explanation.rule_set for table, explanation in self.tables.items()}

    def describe(self) -> str:
        """Human-readable description of every table's rules."""
        return "\n\n".join(
            self.tables[table].rule_set.describe() for table in sorted(self.tables)
        )


class Explainer:
    """Builds an :class:`Explanation` from a partition assignment."""

    def __init__(self, options: ExplainerOptions | None = None) -> None:
        self.options = options or ExplainerOptions()

    def explain(
        self,
        assignment: PartitionAssignment,
        database: Database,
        workload: Workload,
    ) -> Explanation:
        """Run the explanation phase."""
        options = self.options
        rng = SeededRng(options.seed)
        schema_tables = {
            table.name: table.column_names for table in database.schema.tables
        }
        frequents = frequent_attributes(
            workload, schema_tables, min_frequency=options.min_attribute_frequency
        )
        candidate_attributes: dict[str, tuple[str, ...]] = {}
        for table, attribute_frequencies in frequents.items():
            if not database.schema.has_table(table):
                continue
            table_columns = set(database.schema.table(table).column_names)
            columns = tuple(
                frequency.column
                for frequency in attribute_frequencies
                if frequency.column in table_columns
            )
            if columns:
                candidate_attributes[table] = columns
        datasets = build_training_sets(
            assignment,
            database,
            candidate_attributes,
            max_samples_per_table=options.max_samples_per_table,
            rng=rng.fork("dataset"),
        )
        explanation = Explanation()
        for table, dataset in datasets.items():
            explanation.tables[table] = self._explain_table(table, dataset, rng)
        return explanation

    # -- single table -------------------------------------------------------------------
    def _explain_table(self, table: str, dataset: Dataset, rng: SeededRng) -> TableExplanation:
        options = self.options
        labels = set(dataset.labels)
        majority = dataset.majority_label()
        if len(labels) == 1:
            # Every training tuple of the table has the same label (e.g. the
            # fully replicated TPC-C item table): the explanation is the
            # trivial "<empty>: partition X" rule from the paper.
            rule_set = RuleSet(
                table,
                (PredicateRule((), majority, len(dataset), 0.0),),
                default_label=majority,
                attributes=(),
            )
            return TableExplanation(
                table=table,
                rule_set=rule_set,
                selected_attributes=(),
                candidate_attributes=dataset.attribute_names,
                training_samples=len(dataset),
                cross_validated_accuracy=1.0,
            )
        selected = select_attributes(dataset.samples, dataset.attribute_names)
        if not selected:
            rule_set = RuleSet(
                table,
                (PredicateRule((), majority, len(dataset), 1.0 - dataset.label_counts()[majority] / len(dataset)),),
                default_label=majority,
                attributes=(),
            )
            return TableExplanation(
                table=table,
                rule_set=rule_set,
                selected_attributes=(),
                candidate_attributes=dataset.attribute_names,
                training_samples=len(dataset),
                cross_validated_accuracy=dataset.label_counts()[majority] / len(dataset),
            )
        accuracy = cross_validate(
            dataset.samples,
            selected,
            folds=options.folds,
            options=options.tree_options,
            rng=rng.fork((table, "cv")),
        )
        tree = DecisionTree(options.tree_options).fit(dataset.samples, selected)
        rules = simplify_rules(tree.rules())
        rule_set = RuleSet(
            table,
            tuple(rules),
            default_label=majority,
            attributes=tuple(selected),
        )
        return TableExplanation(
            table=table,
            rule_set=rule_set,
            selected_attributes=tuple(selected),
            candidate_attributes=dataset.attribute_names,
            training_samples=len(dataset),
            cross_validated_accuracy=accuracy,
            tree_text=tree.to_text(),
        )
