"""Statement execution against :class:`~repro.engine.storage.TableStorage`.

The executor's primary job for Schism is not query answers but *read/write
sets*: for every statement it reports exactly which tuples were read and
which were written, identified by :class:`~repro.catalog.tuples.TupleId`.
That is the information the paper extracts from SQL traces (Section 5.3) to
build the partitioning graph, and it also drives the distributed-transaction
cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.catalog.tuples import TupleId
from repro.sqlparse.ast import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.sqlparse.predicates import (
    conjunctive_conditions,
    evaluate_predicate,
    iter_join_conditions,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.storage import TableStorage


@dataclass
class StatementResult:
    """Outcome of executing one statement."""

    rows: list[dict[str, object]] = field(default_factory=list)
    read_set: set[TupleId] = field(default_factory=set)
    write_set: set[TupleId] = field(default_factory=set)

    @property
    def touched(self) -> set[TupleId]:
        """Union of read and write sets."""
        return self.read_set | self.write_set


class Executor:
    """Executes statements against a mapping of table name -> storage."""

    def __init__(self, storages: Mapping[str, "TableStorage"]) -> None:
        self._storages = storages

    # -- public API -------------------------------------------------------------------
    def execute(self, statement: Statement) -> StatementResult:
        """Execute one statement and return its rows and read/write sets."""
        if isinstance(statement, SelectStatement):
            if statement.is_join:
                return self._execute_join_select(statement)
            return self._execute_select(statement)
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement)
        raise TypeError(f"unsupported statement type {type(statement).__name__}")

    # -- helpers -----------------------------------------------------------------------
    def _storage(self, table: str) -> "TableStorage":
        storage = self._storages.get(table)
        if storage is None:
            raise KeyError(f"unknown table {table!r}")
        return storage

    def _matching_keys(
        self, storage: "TableStorage", statement: Statement
    ) -> list[tuple[object, ...]]:
        """Find primary keys of rows matching the statement's WHERE clause.

        Uses the primary key or a secondary index for conjunctive equality
        conditions and falls back to a full scan otherwise.
        """
        where = getattr(statement, "where", None)
        if where is None:
            return list(storage.keys())
        table = storage.table
        conditions = conjunctive_conditions(where)
        # Fast path 1: full primary key bound by equality conditions.
        key_values: dict[str, object] = {}
        for condition in conditions:
            if condition.operator == "=" and condition.column in table.primary_key:
                if condition.table in (None, table.name):
                    key_values[condition.column] = condition.value
        if len(key_values) == len(table.primary_key):
            key = tuple(key_values[column] for column in table.primary_key)
            if key in storage:
                row = storage.get(key)
                assert row is not None
                if evaluate_predicate(where, row):
                    return [key]
            return []
        # Fast path 2: single equality condition on an indexed column.
        for condition in conditions:
            usable_table = condition.table in (None, table.name)
            if condition.operator == "=" and usable_table and condition.column in storage.indexed_columns:
                candidates = storage.lookup_equal(condition.column, condition.value)
                matches = []
                for key in candidates:
                    row = storage.get(key)
                    if row is not None and evaluate_predicate(where, row):
                        matches.append(key)
                return matches
        # IN over the primary key (single-column primary keys only).
        if len(table.primary_key) == 1:
            for condition in conditions:
                on_pk = condition.column == table.primary_key[0]
                if condition.operator == "in" and on_pk and condition.table in (None, table.name):
                    matches = []
                    for value in condition.values:
                        key = (value,)
                        row = storage.get(key)
                        if row is not None and evaluate_predicate(where, row):
                            matches.append(key)
                    return matches
        # Slow path: full scan.
        return [key for key, row in storage.rows() if evaluate_predicate(where, row)]

    # -- statement kinds ----------------------------------------------------------------
    def _execute_select(self, statement: SelectStatement) -> StatementResult:
        storage = self._storage(statement.tables[0])
        result = StatementResult()
        keys = self._matching_keys(storage, statement)
        if statement.limit is not None:
            keys = keys[: statement.limit]
        for key in keys:
            row = storage.get(key)
            assert row is not None
            result.rows.append(self._project(row, statement))
            result.read_set.add(TupleId(storage.table.name, key))
        return result

    def _execute_join_select(self, statement: SelectStatement) -> StatementResult:
        """Nested-loop equi-join over two or more tables.

        Every table named in the FROM clause is filtered by its own
        conjunctive conditions first, then joined pairwise on the equality
        join conditions.  The read set includes the matching rows of every
        table (they must all be fetched to answer the query).
        """
        result = StatementResult()
        conditions = conjunctive_conditions(statement.where)
        joins = list(iter_join_conditions(statement.where))
        per_table_rows: dict[str, list[tuple[tuple[object, ...], dict[str, object]]]] = {}
        for table_name in statement.tables:
            storage = self._storage(table_name)
            table_conditions = [
                condition
                for condition in conditions
                if condition.table == table_name
                or (condition.table is None and storage.table.has_column(condition.column))
            ]
            keys = self._filter_keys(storage, table_conditions)
            per_table_rows[table_name] = [(key, storage.get(key) or {}) for key in keys]
        # Build joined rows incrementally, table by table.
        joined: list[dict[str, object]] = [{}]
        contributing: list[set[TupleId]] = [set()]
        for table_name in statement.tables:
            new_joined: list[dict[str, object]] = []
            new_contributing: list[set[TupleId]] = []
            for partial, sources in zip(joined, contributing):
                for key, row in per_table_rows[table_name]:
                    candidate = dict(partial)
                    for column, value in row.items():
                        candidate[f"{table_name}.{column}"] = value
                        candidate.setdefault(column, value)
                    if self._joins_satisfied(candidate, joins, statement.tables, table_name):
                        new_joined.append(candidate)
                        new_contributing.append(sources | {TupleId(table_name, key)})
            joined = new_joined
            contributing = new_contributing
        rows = joined
        if statement.limit is not None:
            rows = rows[: statement.limit]
            contributing = contributing[: statement.limit]
        for row, sources in zip(rows, contributing):
            result.rows.append(row)
            result.read_set.update(sources)
        return result

    @staticmethod
    def _joins_satisfied(
        candidate: Mapping[str, object],
        joins: list,
        tables: tuple[str, ...],
        last_table: str,
    ) -> bool:
        """Check join conditions whose two sides are already present in ``candidate``."""
        for join in joins:
            left_key = f"{join.left.table}.{join.left.name}" if join.left.table else join.left.name
            right_key = (
                f"{join.right.table}.{join.right.name}" if join.right.table else join.right.name
            )
            if left_key in candidate and right_key in candidate:
                if candidate[left_key] != candidate[right_key]:
                    return False
        return True

    def _filter_keys(self, storage: "TableStorage", conditions: list) -> list[tuple[object, ...]]:
        """Filter one table by its own attribute conditions (no join logic)."""
        if not conditions:
            return list(storage.keys())
        # Equality on an indexed or primary-key column narrows the scan.
        for condition in conditions:
            if condition.operator == "=" and condition.column in storage.indexed_columns:
                candidates = storage.lookup_equal(condition.column, condition.value)
                return [
                    key
                    for key in candidates
                    if self._row_matches_conditions(storage.get(key) or {}, conditions)
                ]
        return [
            key
            for key, row in storage.rows()
            if self._row_matches_conditions(row, conditions)
        ]

    @staticmethod
    def _row_matches_conditions(row: Mapping[str, object], conditions: list) -> bool:
        for condition in conditions:
            value = row.get(condition.column)
            if value is None and condition.column not in row:
                return False
            operator = condition.operator
            if operator == "=" and not value == condition.value:
                return False
            if operator == "<>" and not value != condition.value:
                return False
            if operator == "<" and not value < condition.value:  # type: ignore[operator]
                return False
            if operator == "<=" and not value <= condition.value:  # type: ignore[operator]
                return False
            if operator == ">" and not value > condition.value:  # type: ignore[operator]
                return False
            if operator == ">=" and not value >= condition.value:  # type: ignore[operator]
                return False
            if operator == "between" and not condition.low <= value <= condition.high:  # type: ignore[operator]
                return False
            if operator == "in" and value not in condition.values:
                return False
        return True

    @staticmethod
    def _project(row: dict[str, object], statement: SelectStatement) -> dict[str, object]:
        if not statement.columns:
            return dict(row)
        projected: dict[str, object] = {}
        for column in statement.columns:
            if column.name in row:
                projected[column.name] = row[column.name]
        return projected

    def _execute_insert(self, statement: InsertStatement) -> StatementResult:
        storage = self._storage(statement.table)
        tuple_id = storage.insert(statement.row)
        result = StatementResult()
        result.write_set.add(tuple_id)
        return result

    def _execute_update(self, statement: UpdateStatement) -> StatementResult:
        storage = self._storage(statement.table)
        result = StatementResult()
        for key in self._matching_keys(storage, statement):
            storage.update(key, statement.assignments)
            result.write_set.add(TupleId(storage.table.name, key))
        return result

    def _execute_delete(self, statement: DeleteStatement) -> StatementResult:
        storage = self._storage(statement.table)
        result = StatementResult()
        for key in self._matching_keys(storage, statement):
            storage.delete(key)
            result.write_set.add(TupleId(storage.table.name, key))
        return result
