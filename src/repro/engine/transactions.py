"""A minimal row-level lock manager.

The throughput simulator (:mod:`repro.distributed.simulation`) uses this to
model the lock contention that limits TPC-C scaling in Figure 6 of the paper:
transactions that update the same warehouse/district rows conflict and cannot
proceed concurrently.  The manager implements shared/exclusive row locks with
conflict detection; there is no blocking or deadlock detection because the
simulator resolves conflicts analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.catalog.tuples import TupleId


class LockMode(Enum):
    """Shared (read) or exclusive (write) lock."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class LockConflict(RuntimeError):
    """Raised when a lock request conflicts with locks held by another owner."""

    def __init__(self, tuple_id: TupleId, requested: LockMode, holder: str) -> None:
        super().__init__(f"{requested.value} lock on {tuple_id} conflicts with holder {holder!r}")
        self.tuple_id = tuple_id
        self.requested = requested
        self.holder = holder


@dataclass
class _LockEntry:
    mode: LockMode
    owners: set[str] = field(default_factory=set)


class LockManager:
    """Tracks row locks per :class:`TupleId` keyed by an owner identifier."""

    def __init__(self) -> None:
        self._locks: dict[TupleId, _LockEntry] = {}
        self._owned: dict[str, set[TupleId]] = {}

    def acquire(self, owner: str, tuple_id: TupleId, mode: LockMode) -> None:
        """Acquire a lock or raise :class:`LockConflict`.

        Lock upgrades (shared -> exclusive by the sole shared holder) succeed.
        """
        entry = self._locks.get(tuple_id)
        if entry is None:
            self._locks[tuple_id] = _LockEntry(mode, {owner})
            self._owned.setdefault(owner, set()).add(tuple_id)
            return
        if owner in entry.owners and len(entry.owners) == 1:
            # Re-entrant acquisition / upgrade by the only holder.
            if mode is LockMode.EXCLUSIVE:
                entry.mode = LockMode.EXCLUSIVE
            return
        if mode is LockMode.SHARED and entry.mode is LockMode.SHARED:
            entry.owners.add(owner)
            self._owned.setdefault(owner, set()).add(tuple_id)
            return
        if owner in entry.owners and entry.mode is LockMode.EXCLUSIVE:
            return
        other = next(iter(entry.owners - {owner}), next(iter(entry.owners)))
        raise LockConflict(tuple_id, mode, other)

    def would_conflict(self, owner: str, tuple_id: TupleId, mode: LockMode) -> bool:
        """Return whether acquiring would conflict, without acquiring."""
        entry = self._locks.get(tuple_id)
        if entry is None:
            return False
        if entry.owners == {owner}:
            return False
        if mode is LockMode.SHARED and entry.mode is LockMode.SHARED:
            return False
        return True

    def release_all(self, owner: str) -> None:
        """Release every lock held by ``owner`` (commit/abort)."""
        for tuple_id in self._owned.pop(owner, set()):
            entry = self._locks.get(tuple_id)
            if entry is None:
                continue
            entry.owners.discard(owner)
            if not entry.owners:
                del self._locks[tuple_id]

    def holders(self, tuple_id: TupleId) -> frozenset[str]:
        """Owners currently holding a lock on ``tuple_id``."""
        entry = self._locks.get(tuple_id)
        return frozenset(entry.owners) if entry is not None else frozenset()

    def locked_count(self) -> int:
        """Number of tuples currently locked (useful for tests)."""
        return len(self._locks)
