"""In-memory single-node storage engine and statement executor.

This engine is the substrate that stands in for MySQL in the paper's setup.
It stores tables in memory, evaluates the mini-SQL statements produced by the
workload generators, and — most importantly for Schism — reports the exact
read and write sets (as :class:`~repro.catalog.tuples.TupleId` sets) of every
statement, which is what the trace pre-processing step of the paper extracts
from the SQL log.
"""

from repro.engine.database import Database
from repro.engine.executor import StatementResult
from repro.engine.storage import TableStorage
from repro.engine.transactions import LockConflict, LockManager, LockMode

__all__ = [
    "Database",
    "LockConflict",
    "LockManager",
    "LockMode",
    "StatementResult",
    "TableStorage",
]
