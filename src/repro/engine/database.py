"""Database facade: schema + per-table storage + executor."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.catalog.schema import Schema, Table
from repro.catalog.tuples import TupleId
from repro.engine.executor import Executor, StatementResult
from repro.engine.storage import TableStorage
from repro.sqlparse.ast import Statement
from repro.sqlparse.parser import parse_statement


class Database:
    """A single-node in-memory database for one :class:`Schema`.

    Besides normal statement execution it exposes the helpers the Schism
    pipeline needs: executing a list of statements as one transaction and
    reporting the combined read/write sets, and enumerating tuples/sizes for
    graph construction.
    """

    def __init__(self, schema: Schema) -> None:
        schema.validate_foreign_keys()
        self.schema = schema
        self._storages: dict[str, TableStorage] = {
            table.name: TableStorage(table) for table in schema.tables
        }
        self._executor = Executor(self._storages)
        # Index primary-key prefix columns and foreign-key columns by default:
        # OLTP statements overwhelmingly filter on them.
        for table in schema.tables:
            storage = self._storages[table.name]
            for column in table.primary_key:
                storage.create_index(column)
            for foreign_key in table.foreign_keys:
                for column in foreign_key.columns:
                    storage.create_index(column)

    # -- storage access -----------------------------------------------------------------
    def storage(self, table: str) -> TableStorage:
        """Return the storage object for ``table``."""
        if table not in self._storages:
            raise KeyError(f"unknown table {table!r}")
        return self._storages[table]

    def table(self, name: str) -> Table:
        """Return table metadata."""
        return self.schema.table(name)

    def create_index(self, table: str, column: str) -> None:
        """Create a secondary index."""
        self.storage(table).create_index(column)

    # -- loading -----------------------------------------------------------------------
    def insert_row(self, table: str, row: Mapping[str, object]) -> TupleId:
        """Insert one row directly (bulk loading path used by generators)."""
        return self.storage(table).insert(row)

    def load_rows(self, table: str, rows: Iterable[Mapping[str, object]]) -> int:
        """Bulk-insert rows; returns the number inserted."""
        storage = self.storage(table)
        count = 0
        for row in rows:
            storage.insert(row)
            count += 1
        return count

    # -- execution ----------------------------------------------------------------------
    def execute(self, statement: Statement | str) -> StatementResult:
        """Execute a statement AST or SQL text."""
        if isinstance(statement, str):
            statement = parse_statement(statement)
        return self._executor.execute(statement)

    def execute_transaction(self, statements: Sequence[Statement | str]) -> StatementResult:
        """Execute statements sequentially, merging their read/write sets."""
        combined = StatementResult()
        for statement in statements:
            result = self.execute(statement)
            combined.rows.extend(result.rows)
            combined.read_set.update(result.read_set)
            combined.write_set.update(result.write_set)
        return combined

    # -- introspection -------------------------------------------------------------------
    def row_count(self, table: str | None = None) -> int:
        """Rows in ``table`` or in the whole database."""
        if table is not None:
            return len(self.storage(table))
        return sum(len(storage) for storage in self._storages.values())

    def all_tuple_ids(self, table: str | None = None) -> list[TupleId]:
        """All tuple ids in ``table`` or the whole database."""
        if table is not None:
            return self.storage(table).tuple_ids()
        tuple_ids: list[TupleId] = []
        for storage in self._storages.values():
            tuple_ids.extend(storage.tuple_ids())
        return tuple_ids

    def tuple_byte_size(self, tuple_id: TupleId) -> int:
        """Approximate size in bytes of one tuple (schema row size)."""
        return self.schema.table(tuple_id.table).row_byte_size

    def get_row(self, tuple_id: TupleId) -> dict[str, object] | None:
        """Fetch the row behind ``tuple_id`` (or None if it does not exist)."""
        return self.storage(tuple_id.table).get(tuple_id.key)

    def total_byte_size(self) -> int:
        """Approximate total database size in bytes."""
        return sum(storage.byte_size for storage in self._storages.values())
