"""Row storage for a single table with primary-key and secondary hash indexes."""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterator, Mapping

from repro.catalog.schema import Table
from repro.catalog.tuples import TupleId


class DuplicateKeyError(ValueError):
    """Raised when inserting a row whose primary key already exists."""


class MissingRowError(KeyError):
    """Raised when an operation targets a primary key that does not exist."""


class TableStorage:
    """In-memory storage for one table.

    Rows are stored in a dict keyed by the primary-key tuple.  Secondary hash
    indexes can be created on single columns; the executor consults them for
    equality lookups and falls back to full scans otherwise (which is exactly
    what matters for modelling OLTP read/write sets).
    """

    def __init__(self, table: Table) -> None:
        self.table = table
        self._rows: dict[tuple[object, ...], dict[str, object]] = {}
        self._indexes: dict[str, dict[object, set[tuple[object, ...]]]] = {}

    # -- indexes --------------------------------------------------------------------
    def create_index(self, column: str) -> None:
        """Create (and backfill) a secondary hash index on ``column``."""
        if not self.table.has_column(column):
            raise KeyError(f"table {self.table.name!r} has no column {column!r}")
        if column in self._indexes:
            return
        index: dict[object, set[tuple[object, ...]]] = defaultdict(set)
        for key, row in self._rows.items():
            index[row[column]].add(key)
        self._indexes[column] = index

    @property
    def indexed_columns(self) -> tuple[str, ...]:
        """Columns that currently have a secondary index."""
        return tuple(self._indexes)

    def _index_insert(self, key: tuple[object, ...], row: Mapping[str, object]) -> None:
        for column, index in self._indexes.items():
            index.setdefault(row[column], set()).add(key)

    def _index_remove(self, key: tuple[object, ...], row: Mapping[str, object]) -> None:
        for column, index in self._indexes.items():
            bucket = index.get(row[column])
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del index[row[column]]

    # -- row operations ---------------------------------------------------------------
    def insert(self, row: Mapping[str, object]) -> TupleId:
        """Insert ``row``; returns its :class:`TupleId`."""
        self.table.validate_row(row)
        key = self.table.primary_key_of(row)
        if key in self._rows:
            raise DuplicateKeyError(f"duplicate key {key!r} in table {self.table.name!r}")
        stored = dict(row)
        self._rows[key] = stored
        self._index_insert(key, stored)
        return TupleId(self.table.name, key)

    def delete(self, key: tuple[object, ...]) -> None:
        """Delete the row with primary key ``key``."""
        row = self._rows.pop(key, None)
        if row is None:
            raise MissingRowError(f"no row with key {key!r} in table {self.table.name!r}")
        self._index_remove(key, row)

    def update(self, key: tuple[object, ...], assignments: Mapping[str, object]) -> None:
        """Apply ``assignments`` (literal or ``("delta", amount)``) to a row."""
        row = self._rows.get(key)
        if row is None:
            raise MissingRowError(f"no row with key {key!r} in table {self.table.name!r}")
        self._index_remove(key, row)
        for column, value in assignments.items():
            if not self.table.has_column(column):
                raise KeyError(f"table {self.table.name!r} has no column {column!r}")
            if isinstance(value, tuple) and len(value) == 2 and value[0] == "delta":
                row[column] = row[column] + value[1]  # type: ignore[operator]
            else:
                row[column] = value
        self._index_insert(key, row)

    def get(self, key: tuple[object, ...]) -> dict[str, object] | None:
        """Return a copy of the row with primary key ``key`` (or None)."""
        row = self._rows.get(key)
        return dict(row) if row is not None else None

    def __contains__(self, key: tuple[object, ...]) -> bool:
        return key in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    # -- scans ---------------------------------------------------------------------
    def keys(self) -> Iterator[tuple[object, ...]]:
        """Iterate over all primary keys."""
        return iter(self._rows)

    def rows(self) -> Iterator[tuple[tuple[object, ...], dict[str, object]]]:
        """Iterate over ``(key, row)`` pairs (rows are the live dicts; do not mutate)."""
        return iter(self._rows.items())

    def scan(
        self, matches: Callable[[Mapping[str, object]], bool]
    ) -> list[tuple[tuple[object, ...], dict[str, object]]]:
        """Full scan returning ``(key, row)`` pairs for which ``matches`` is true."""
        return [(key, row) for key, row in self._rows.items() if matches(row)]

    def lookup_equal(self, column: str, value: object) -> list[tuple[object, ...]]:
        """Return keys of rows with ``row[column] == value`` using an index if present."""
        index = self._indexes.get(column)
        if index is not None:
            return sorted(index.get(value, set()), key=repr)
        return [key for key, row in self._rows.items() if row[column] == value]

    def tuple_ids(self) -> list[TupleId]:
        """All tuple ids currently stored."""
        return [TupleId(self.table.name, key) for key in self._rows]

    @property
    def byte_size(self) -> int:
        """Approximate total size in bytes (row count x schema row size)."""
        return len(self._rows) * self.table.row_byte_size
