"""Entry point for ``python -m repro`` (see :mod:`repro.cli`)."""

import os
import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        exit_code = main()
    except BrokenPipeError:
        # The consumer closed the pipe early (e.g. `repro status ... | head`);
        # exit quietly like any well-behaved filter, and detach stdout so the
        # interpreter's shutdown flush cannot raise the same error again.
        sys.stdout = open(os.devnull, "w")
        exit_code = 0
    sys.exit(exit_code)
