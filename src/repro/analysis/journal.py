"""Journal-discipline pass: migration progress is always followed by persist.

The crash model of the journaled migrator (PR 6) is persist-then-kill: the
fault injector may only kill the coordinator *inside* ``_persist``, after
the record is durable, so a resume replays at most one idempotent batch.
That guarantee holds only if every function that advances migration state —
a journal state transition, or a batch of side-effecting copy/drop steps —
persists a record before returning on its progress paths.

Full path-sensitive post-dominance is overkill for the two modules in
scope; what bit-rots in practice is a *new* transition arm or batch call
added without any persist at all.  The check here: in the configured
modules, any function that calls a progress-advancing method
(``_transition`` or one of the batch executors) must also call ``_persist``
at a source position after that call.  A function persisting conditionally
("only when progress was made") satisfies it; a function never persisting
after a transition is exactly the bug class this pass exists to catch.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, InvariantPass, ModuleSource, Project, iter_functions

#: modules implementing the journaled state machines.
DEFAULT_TARGETS = (
    "src/repro/online/migration.py",
    "src/repro/storage/migrator.py",
)
#: methods that advance journal state or execute side-effecting batches.
DEFAULT_EFFECTS = frozenset(
    {"_transition", "_run_batch", "_run_restore_batch", "_run_remove_batch"}
)
#: methods that write a journal record.
DEFAULT_PERSISTS = frozenset({"_persist"})


def _method_calls(function: ast.FunctionDef, names: frozenset[str]) -> list[ast.Call]:
    """Calls to ``self.<name>``-style methods named in ``names``."""
    return [
        node
        for node in ast.walk(function)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in names
    ]


class JournalDisciplinePass(InvariantPass):
    """Migration side effects must be followed by a journal persist."""

    name = "journal-discipline"
    description = (
        "functions advancing the migration journal (state transitions, "
        "copy/drop batches) must persist a record afterwards — the "
        "persist-then-kill crash model"
    )

    def __init__(
        self,
        targets: tuple[str, ...] = DEFAULT_TARGETS,
        effects: frozenset[str] = DEFAULT_EFFECTS,
        persists: frozenset[str] = DEFAULT_PERSISTS,
    ) -> None:
        self.targets = targets
        self.effects = effects
        self.persists = persists

    def applies_to(self, module: ModuleSource) -> bool:
        return module.relpath in self.targets

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules():
            if not self.applies_to(module):
                continue
            for function in iter_functions(module.tree):
                if function.name in self.effects | self.persists:
                    continue  # the primitives themselves, not their users
                persist_positions = [
                    (call.lineno, call.col_offset)
                    for call in _method_calls(function, self.persists)
                ]
                for effect in _method_calls(function, self.effects):
                    position = (effect.lineno, effect.col_offset)
                    if not any(later > position for later in persist_positions):
                        findings.append(
                            self.finding(
                                module,
                                effect,
                                f"{effect.func.attr} advances migration state "
                                "but no _persist call follows in "
                                f"{function.name}; a crash here would lose "
                                "the progress record",
                            )
                        )
        return findings
