"""Lock-order checker: every ``LockManager.acquire`` site takes sorted tokens.

The storage coordinator's deadlock-freedom argument is purely order-based:
token locks are acquired in their global sort order and held to the end, so
no wait-for cycle can form.  The argument collapses the moment one call site
passes an unsorted token list, and nothing at runtime would notice until a
real deadlock hangs CI.  This pass proves the discipline statically at every
acquisition site in the configured modules (the storage coordinator and the
storage migrator by default).

An argument expression is accepted as *sorted-safe* when it is

* a direct ``sorted(...)`` call;
* a call to a function/method in the same module whose every ``return``
  is itself sorted-safe (``write_lock_tokens``, ``_tokens``, ...);
* a list/tuple literal of at most one element (trivially ordered);
* a conditional expression whose both arms are sorted-safe; or
* a local name whose every assignment in the enclosing function is
  sorted-safe.

Anything else — notably a bare list built ad hoc — is a finding.  The
static proof is complemented by the *runtime* witness
(:class:`repro.analysis.witness.WitnessedLockManager`), which the chaos
experiments wrap around the live lock manager to certify that no executed
interleaving ever acquired out of order.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Finding,
    InvariantPass,
    ModuleSource,
    Project,
    iter_functions,
    terminal_name,
)

#: default acquisition sites to prove: the modules holding LockManager users.
DEFAULT_TARGETS = (
    "src/repro/storage/coordinator.py",
    "src/repro/storage/migrator.py",
)


def _is_trivial_sequence(node: ast.AST) -> bool:
    return isinstance(node, (ast.List, ast.Tuple)) and len(node.elts) <= 1


def _returns_sorted(function: ast.FunctionDef, producers: set[str]) -> bool:
    """Whether every return of ``function`` is a sorted-safe expression."""
    returns = [
        node
        for node in ast.walk(function)
        if isinstance(node, ast.Return) and node.value is not None
    ]
    if not returns:
        return False
    return all(_is_sorted_safe(node.value, None, producers) for node in returns)


def _is_sorted_safe(
    node: ast.AST, enclosing: ast.FunctionDef | None, producers: set[str]
) -> bool:
    if isinstance(node, ast.Call):
        callee = terminal_name(node.func)
        if callee == "sorted":
            return True
        return callee in producers
    if _is_trivial_sequence(node):
        return True
    if isinstance(node, ast.IfExp):
        return _is_sorted_safe(node.body, enclosing, producers) and _is_sorted_safe(
            node.orelse, enclosing, producers
        )
    if isinstance(node, ast.Name) and enclosing is not None:
        assignments = [
            statement.value
            for statement in ast.walk(enclosing)
            if isinstance(statement, (ast.Assign, ast.AnnAssign))
            and statement.value is not None
            and any(
                isinstance(target, ast.Name) and target.id == node.id
                for target in (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
            )
        ]
        if not assignments:
            return False
        return all(
            _is_sorted_safe(value, enclosing, producers) for value in assignments
        )
    return False


class LockOrderPass(InvariantPass):
    """Proves every ``*.locks.acquire(tokens)`` site passes sorted tokens."""

    name = "lock-order"
    description = (
        "LockManager acquisition sites in the storage coordinator/migrator "
        "must pass globally-sorted token lists (the deadlock-freedom proof)"
    )

    def __init__(self, targets: tuple[str, ...] = DEFAULT_TARGETS) -> None:
        self.targets = targets

    def applies_to(self, module: ModuleSource) -> bool:
        return module.relpath in self.targets

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules():
            if not self.applies_to(module):
                continue
            producers = {
                function.name
                for function in iter_functions(module.tree)
                if _returns_sorted(function, set())
            }
            # One fixpoint round so a producer may delegate to another.
            producers |= {
                function.name
                for function in iter_functions(module.tree)
                if _returns_sorted(function, producers)
            }
            for function in iter_functions(module.tree):
                for node in ast.walk(function):
                    if not self._is_acquire_site(node):
                        continue
                    argument = node.args[0]
                    if not _is_sorted_safe(argument, function, producers):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                "lock acquisition with tokens not provably "
                                "sorted; acquire in global sort order "
                                "(sorted(..., key=repr))",
                            )
                        )
        return findings

    @staticmethod
    def _is_acquire_site(node: ast.AST) -> bool:
        """``<...>.locks.acquire(tokens)`` / ``locks.acquire(tokens)`` calls."""
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and len(node.args) == 1
        ):
            return False
        owner = terminal_name(node.func.value)
        return owner is not None and owner.endswith("locks")
