"""Pass registry and the one-call entry point the CLI and tests share."""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.analysis.core import Finding, InvariantPass, Project, run_passes
from repro.analysis.determinism import DeterminismPass
from repro.analysis.exceptions import ExceptionClassificationPass
from repro.analysis.journal import JournalDisciplinePass
from repro.analysis.lock_order import LockOrderPass


def default_registry() -> list[InvariantPass]:
    """The shipped pass catalogue, in stable documentation order."""
    return [
        DeterminismPass(),
        LockOrderPass(),
        ExceptionClassificationPass(),
        JournalDisciplinePass(),
    ]


def analyze(
    root: Path,
    passes: Sequence[InvariantPass] | None = None,
    rules: Sequence[str] | None = None,
) -> tuple[list[Finding], list[Finding]]:
    """Run the invariant suite over the repo at ``root``.

    ``rules`` filters the registry by pass name; returns the deterministic
    ``(active, suppressed)`` finding lists of :func:`run_passes`.
    """
    selected = list(passes) if passes is not None else default_registry()
    if rules:
        unknown = set(rules) - {invariant_pass.name for invariant_pass in selected}
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        selected = [
            invariant_pass for invariant_pass in selected if invariant_pass.name in rules
        ]
    project = Project(Path(root))
    return run_passes(project, selected)
