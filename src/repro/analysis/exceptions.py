"""Exception-classification audit over the storage layer.

The storage retry policy splits every failure into *retryable* (a later
attempt can succeed: dead worker, timeout, broken pipe) and *fatal*
(retrying reproduces the failure: constraint violation, malformed
statement).  An exception type missing from that split silently inherits
the default — and a wrong default turns a new error either into an
infinite-retry loop (fatal treated as retryable) or a dropped commit
(retryable treated as fatal).

This pass makes the split total over the storage layer: every exception
*raised* under ``src/repro/storage/`` must appear by name in the
``EXCEPTION_CLASSIFICATION`` table of :mod:`repro.storage.retry`.  The
table is read statically (a dict literal keyed by class name), so the audit
needs no imports and runs on a tree that does not even compile as a whole.

Raise statements considered: ``raise SomeError(...)`` and
``raise SomeError`` where the name is a CapWords identifier (exception
classes by convention).  Bare re-raises and raising a caught variable
(``raise last_error``) pass through — classification happened when the
object was first constructed.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, InvariantPass, ModuleSource, Project, terminal_name

#: module whose classification table is the registry.
DEFAULT_TABLE_MODULE = "src/repro/storage/retry.py"
#: name of the table inside it.
TABLE_NAME = "EXCEPTION_CLASSIFICATION"
#: subtree whose raise statements must be registered.
DEFAULT_SCOPE_PREFIX = "src/repro/storage/"


def registered_exceptions(module: ModuleSource) -> set[str] | None:
    """Class names keyed by the table's dict literal, or ``None`` if absent."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        if (
            any(
                isinstance(target, ast.Name) and target.id == TABLE_NAME
                for target in targets
            )
            and isinstance(node.value, ast.Dict)
        ):
            return {
                key.value
                for key in node.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
    return None


def _raised_name(node: ast.Raise) -> str | None:
    """The class name a raise statement constructs, if identifiable."""
    exc = node.exc
    if exc is None:
        return None  # bare re-raise
    if isinstance(exc, ast.Call):
        exc = exc.func
    name = terminal_name(exc)
    if name is None or not name[:1].isupper():
        return None  # raising a variable or something exotic
    return name


class ExceptionClassificationPass(InvariantPass):
    """Every exception raised under storage/ is registered retryable-or-fatal."""

    name = "exception-classification"
    description = (
        "exceptions raised under repro.storage must be registered in "
        "retry.EXCEPTION_CLASSIFICATION so new error types cannot default "
        "into infinite retries or dropped commits"
    )

    def __init__(
        self,
        table_module: str = DEFAULT_TABLE_MODULE,
        scope_prefix: str = DEFAULT_SCOPE_PREFIX,
    ) -> None:
        self.table_module = table_module
        self.scope_prefix = scope_prefix

    def applies_to(self, module: ModuleSource) -> bool:
        return module.relpath.startswith(self.scope_prefix)

    def run(self, project: Project) -> list[Finding]:
        table_source = project.module(self.table_module)
        if table_source is None:
            return []  # the table module is outside this scan's roots
        registered = registered_exceptions(table_source)
        if registered is None:
            return [
                Finding(
                    path=table_source.relpath,
                    line=1,
                    col=0,
                    rule=self.name,
                    message=(
                        f"{TABLE_NAME} dict literal not found; the "
                        "classification table is the audit's registry"
                    ),
                )
            ]
        findings: list[Finding] = []
        for module in project.modules():
            if not self.applies_to(module):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Raise):
                    continue
                name = _raised_name(node)
                if name is None or name in registered:
                    continue
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"exception {name} raised in the storage layer but "
                        f"not registered in retry.{TABLE_NAME}; classify it "
                        "retryable or fatal",
                    )
                )
        return findings
