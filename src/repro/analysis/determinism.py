"""Determinism lint: unseeded entropy, wall-clock, and set-order escapes.

The repo's byte-determinism contract (snapshots, plan fingerprints, metric
exports identical across processes and array backends) survives only if no
code path consults ambient entropy or lets unordered-container iteration
order escape into a sequence.  This pass flags:

* **Unseeded entropy** — ``random.*`` module functions (``random.Random``
  with an explicit seed is the sanctioned construction and stays legal),
  ``os.urandom``, ``uuid.uuid1``/``uuid4``, anything from ``secrets``.
* **Wall clock as data** — ``time.time``/``time_ns`` and
  ``datetime.now``/``utcnow``/``today``.  ``time.perf_counter`` and
  ``time.monotonic`` are *not* flagged: they are the sanctioned primitives
  of the volatile telemetry side (``Stopwatch``, worker deadlines), whose
  readings never reach deterministic payloads — that split is enforced at
  the metrics layer by ``volatile=True`` families, and test files are not
  scanned at all.
* **Set-order escapes** — a syntactic ``set``/``frozenset`` expression
  iterated into an *ordered* artifact: ``list(...)``/``tuple(...)``/
  ``enumerate(...)`` over it, ``str.join`` of it, a ``for`` statement or a
  list/dict comprehension drawing from it.  Consuming the set through an
  order-insensitive callee (``sorted``, ``min``, ``max``, ``sum``, ``any``,
  ``all``, ``len``, ``set``, ``frozenset``) is fine, as is a generator
  expression fed directly to one.
* **Unsorted serialization** — ``json.dumps`` without ``sort_keys=True``
  (use :mod:`repro.utils.canonical_json` for payloads).
* **Dynamic fork salts** — ``SeededRng.fork(salt)`` where ``salt`` is
  neither a literal constant nor a tuple carrying at least one static
  string tag.  An untagged dynamic salt (say, a bare table name) can
  collide with another component forking the same parent under the same
  value, silently entangling two "independent" streams.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, InvariantPass, ModuleSource, Project, dotted_name

#: dotted call origins that are never allowed in library code.
_BANNED_CALLS = {
    "time.time": "wall-clock time.time() as data; use Stopwatch / volatile telemetry",
    "time.time_ns": "wall-clock time.time_ns() as data; use Stopwatch / volatile telemetry",
    "os.urandom": "os.urandom is unseedable; draw from SeededRng",
    "uuid.uuid1": "uuid.uuid1 is host/time-dependent; derive ids from SeededRng",
    "uuid.uuid4": "uuid.uuid4 is unseedable; derive ids from SeededRng",
}
#: ``datetime``-flavoured wall-clock constructors (matched on the last two
#: segments so both ``datetime.now()`` and ``datetime.datetime.now()`` hit).
_BANNED_DATETIME = {"now", "utcnow", "today"}
#: callees whose consumption of an iterable is order-insensitive.
_ORDER_INSENSITIVE = {"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"}
#: callees that materialise their argument's iteration order.
_ORDER_MATERIALISING = {"list", "tuple", "enumerate"}


def _is_set_expr(node: ast.AST) -> bool:
    """Whether ``node`` is syntactically a set/frozenset-valued expression."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _salt_is_tagged(salt: ast.AST) -> bool:
    """A fork salt is static enough: a literal, or a tuple with a str tag."""
    if isinstance(salt, ast.Constant):
        return True
    if isinstance(salt, ast.Tuple):
        return any(
            isinstance(element, ast.Constant) and isinstance(element.value, str)
            for element in salt.elts
        )
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, lint: "DeterminismPass", module: ModuleSource) -> None:
        self.lint = lint
        self.module = module
        self.findings: list[Finding] = []
        #: local name -> dotted origin, from import statements.
        self.aliases: dict[str, str] = {}
        #: comprehension nodes consumed by an order-insensitive callee.
        self.blessed: set[int] = set()

    # -- import tracking ---------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def _origin(self, func: ast.AST) -> str | None:
        """The dotted origin of a callee, import aliases resolved."""
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, tail = dotted.partition(".")
        resolved = self.aliases.get(head, head)
        return f"{resolved}.{tail}" if tail else resolved

    # -- calls -------------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        origin = self._origin(node.func)
        if origin is not None:
            self._check_banned(node, origin)
            self._check_set_escape_call(node, origin)
            self._bless_comprehensions(node, origin)
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "fork":
                self._check_fork_salt(node)
            if node.func.attr == "join" and node.args and _is_set_expr(node.args[0]):
                self._emit(node, "str.join over a set expression; sort it first")
        self.generic_visit(node)

    def _check_banned(self, node: ast.Call, origin: str) -> None:
        if origin in _BANNED_CALLS:
            self._emit(node, _BANNED_CALLS[origin])
            return
        parts = origin.split(".")
        if parts[0] == "secrets":
            self._emit(node, "secrets.* is unseedable; draw from SeededRng")
        elif parts[0] == "random" and len(parts) == 2 and parts[1] != "Random":
            self._emit(
                node,
                f"bare random.{parts[1]}() uses the shared unseeded generator; "
                "draw from SeededRng",
            )
        elif (
            len(parts) >= 2
            and parts[-1] in _BANNED_DATETIME
            and parts[-2] in ("datetime", "date")
        ):
            self._emit(node, f"wall-clock {parts[-2]}.{parts[-1]}() as data")

    def _check_set_escape_call(self, node: ast.Call, origin: str) -> None:
        if origin in _ORDER_MATERIALISING and node.args and _is_set_expr(node.args[0]):
            self._emit(
                node,
                f"{origin}() materialises set iteration order; wrap in sorted()",
            )
        if origin == "json.dumps":
            sort_keys = next(
                (kw for kw in node.keywords if kw.arg == "sort_keys"), None
            )
            if (
                sort_keys is None
                or not isinstance(sort_keys.value, ast.Constant)
                or sort_keys.value.value is not True
            ):
                self._emit(
                    node,
                    "json.dumps without sort_keys=True; use repro.utils.canonical_json",
                )

    def _bless_comprehensions(self, node: ast.Call, origin: str) -> None:
        if origin.split(".")[-1] in _ORDER_INSENSITIVE:
            for argument in node.args:
                if isinstance(argument, (ast.GeneratorExp, ast.ListComp)):
                    self.blessed.add(id(argument))

    def _check_fork_salt(self, node: ast.Call) -> None:
        if len(node.args) != 1 or node.keywords:
            self._emit(node, "SeededRng.fork takes exactly one positional salt")
            return
        if not _salt_is_tagged(node.args[0]):
            self._emit(
                node,
                "fork salt is fully dynamic; tag it with a static string "
                '(e.g. fork(("component", value)))',
            )

    # -- iteration contexts ------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._emit(node.iter, "for-loop over a set expression; iterate sorted(...)")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        if _is_set_expr(node.generators[0].iter):
            self._emit(
                node,
                "dict comprehension over a set expression fixes its insertion "
                "order; iterate sorted(...)",
            )
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.ListComp | ast.GeneratorExp) -> None:
        if id(node) in self.blessed:
            return
        if _is_set_expr(node.generators[0].iter):
            self._emit(
                node,
                "comprehension over a set expression materialises its order; "
                "iterate sorted(...) or consume order-insensitively",
            )

    def _emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.lint.finding(self.module, node, message))


class DeterminismPass(InvariantPass):
    """Flags ambient entropy, wall-clock-as-data, and set-order escapes."""

    name = "determinism"
    description = (
        "unseeded random/time/uuid sources, unsorted set iteration escaping "
        "into sequences or serialized output, and untagged SeededRng.fork salts"
    )

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules():
            if not self.applies_to(module):
                continue
            # The call blessing in _bless_comprehensions must see a consumer
            # call before its argument comprehension; a pre-order walk
            # guarantees that (parents visit before children).
            visitor = _Visitor(self, module)
            visitor.visit(module.tree)
            findings.extend(visitor.findings)
        return findings
