"""Runtime lock-order witness: certify executed interleavings acquire in order.

The static :class:`~repro.analysis.lock_order.LockOrderPass` proves the
acquisition *sites* pass sorted token lists; this module witnesses the
acquisitions that actually happen.  :class:`WitnessedLockManager` wraps any
``LockManager``-shaped object (``acquire(tokens)`` / ``release(tokens)``),
records the per-thread acquisition order and the global held-before-acquired
edge graph, and

* raises :class:`LockOrderViolation` immediately when an out-of-order
  acquire closes a cycle in that graph (a real deadlock-capable schedule),
* counts every out-of-order acquire — cycle-forming or not — so the chaos
  experiments can assert zero at audit time via :meth:`assert_clean`.

The witness adds no entropy and no wall-clock reads: its counters are pure
functions of the acquisition sequence, so wrapping it inside the
byte-deterministic chaos experiments cannot perturb their snapshots.
"""

from __future__ import annotations

import threading
from typing import Sequence


class LockOrderViolation(RuntimeError):
    """An acquisition violated the global sort order (or closed a cycle)."""


class WitnessedLockManager:
    """Debug-mode wrapper recording lock-acquisition graphs per thread.

    Tokens are compared by ``repr``, the same total order the coordinator's
    ``write_lock_tokens`` sorts by.  ``inner`` is the real lock manager all
    calls delegate to; the witness only observes.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self._guard = threading.Lock()
        #: thread ident -> repr of tokens currently held, in acquisition order.
        self._held: dict[int, list[str]] = {}
        #: edge graph: token held -> tokens acquired while it was held.
        self._edges: dict[str, set[str]] = {}
        #: (held, acquired) repr pairs seen in descending order.
        self._out_of_order: set[tuple[str, str]] = set()
        #: total tokens witnessed through acquire calls.
        self.acquisitions = 0

    # -- LockManager surface -----------------------------------------------------------
    def acquire(self, tokens: Sequence[tuple]) -> list[tuple]:
        """Witness then delegate; raises on a cycle-forming acquisition."""
        self._witness([repr(token) for token in tokens])
        return self.inner.acquire(tokens)

    def release(self, tokens: Sequence[tuple]) -> None:
        """Delegate, then forget the tokens from the thread's held list."""
        self.inner.release(tokens)
        ident = threading.get_ident()
        with self._guard:
            held = self._held.get(ident, [])
            for token in tokens:
                key = repr(token)
                if key in held:
                    held.remove(key)
            if not held:
                self._held.pop(ident, None)

    # -- witnessing --------------------------------------------------------------------
    def _witness(self, keys: list[str], ident: int | None = None) -> None:
        """Record ``keys`` being acquired (in order) by thread ``ident``.

        Exposed with an explicit ``ident`` so tests can simulate interleaved
        threads deterministically.
        """
        if ident is None:
            ident = threading.get_ident()
        with self._guard:
            held = self._held.setdefault(ident, [])
            for key in keys:
                for prior in held:
                    if prior == key:
                        continue
                    self._edges.setdefault(prior, set()).add(key)
                    if key < prior:
                        self._out_of_order.add((prior, key))
                        if self._reaches(key, prior):
                            raise LockOrderViolation(
                                f"cycle-forming out-of-order acquire: {key} "
                                f"while holding {prior} (and {prior} is "
                                f"reachable from {key} in the acquisition graph)"
                            )
                held.append(key)
                self.acquisitions += 1

    def _reaches(self, start: str, goal: str) -> bool:
        """Whether ``goal`` is reachable from ``start`` in the edge graph."""
        stack, seen = [start], {start}
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for neighbour in self._edges.get(node, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return False

    # -- audit surface -----------------------------------------------------------------
    @property
    def out_of_order(self) -> int:
        """Number of distinct (held, acquired) pairs seen in descending order."""
        with self._guard:
            return len(self._out_of_order)

    def out_of_order_pairs(self) -> list[tuple[str, str]]:
        """The offending pairs, sorted (deterministic report material)."""
        with self._guard:
            return sorted(self._out_of_order)

    def assert_clean(self) -> None:
        """Raise :class:`LockOrderViolation` if any out-of-order acquire ran."""
        pairs = self.out_of_order_pairs()
        if pairs:
            rendered = "; ".join(f"{held} held while acquiring {key}" for held, key in pairs)
            raise LockOrderViolation(f"{len(pairs)} out-of-order acquisition(s): {rendered}")
