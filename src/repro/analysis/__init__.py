"""Invariant analysis suite: static passes + runtime lock-order witness.

Four shipped passes keep the repo's conventions mechanical (see
``docs/ARCHITECTURE.md`` → "Invariant analysis"):

* :class:`~repro.analysis.determinism.DeterminismPass` — no ambient entropy,
  no wall-clock-as-data, no set-iteration order escaping into sequences or
  serialized output, tagged ``SeededRng.fork`` salts.
* :class:`~repro.analysis.lock_order.LockOrderPass` — every
  ``LockManager.acquire`` site provably passes globally-sorted tokens.
* :class:`~repro.analysis.exceptions.ExceptionClassificationPass` — every
  exception raised under ``repro.storage`` is registered retryable-or-fatal.
* :class:`~repro.analysis.journal.JournalDisciplinePass` — migration
  progress is always followed by a journal persist (persist-then-kill).

``tools/check_invariants.py`` is the CLI; the chaos experiments additionally
wrap the live lock manager in
:class:`~repro.analysis.witness.WitnessedLockManager` to certify executed
interleavings, not just call sites.
"""

from repro.analysis.core import (
    Finding,
    InvariantPass,
    ModuleSource,
    Project,
    Suppressions,
    run_passes,
)
from repro.analysis.determinism import DeterminismPass
from repro.analysis.exceptions import ExceptionClassificationPass
from repro.analysis.journal import JournalDisciplinePass
from repro.analysis.lock_order import LockOrderPass
from repro.analysis.runner import analyze, default_registry
from repro.analysis.witness import LockOrderViolation, WitnessedLockManager

__all__ = [
    "Finding",
    "InvariantPass",
    "ModuleSource",
    "Project",
    "Suppressions",
    "run_passes",
    "DeterminismPass",
    "LockOrderPass",
    "ExceptionClassificationPass",
    "JournalDisciplinePass",
    "analyze",
    "default_registry",
    "LockOrderViolation",
    "WitnessedLockManager",
]
