"""Core of the invariant-analysis framework: findings, passes, suppressions.

The repo's headline guarantees — byte-deterministic snapshots, deadlock-free
storage commits via globally-ordered locks, exactly-once apply under retries,
persist-then-kill journal discipline — are conventions spread across many
modules.  This package turns them into *mechanically checked* invariants: a
small AST-based pass framework that walks the repo's own source, emits
deterministic findings, and honours per-line / per-file suppression pragmas
so a justified exception is visible in the diff instead of silently waived
in review.

Suppression pragmas
-------------------
A finding is suppressed when the *reported line* carries::

    some_call()  # repro: allow(determinism) -- justification here

or when the module carries a file-level pragma on any line (conventionally
in the module docstring's vicinity)::

    # repro: allow-file(lock-order) -- justification here

Multiple rules may be listed comma-separated.  Pragmas name the rule they
waive, so an unrelated pass still reports the line.  Everything after the
closing parenthesis is free-form justification — write one.

Determinism
-----------
Findings are plain data sorted by ``(path, line, col, rule, message)`` and
paths are repo-relative POSIX strings, so two runs over the same tree emit
byte-identical reports on any machine and either array backend.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

#: ``# repro: allow(rule-a, rule-b) optional justification``
_LINE_PRAGMA = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")
#: ``# repro: allow-file(rule-a) optional justification``
_FILE_PRAGMA = re.compile(r"#\s*repro:\s*allow-file\(([^)]*)\)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location (ordering = report order)."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: [rule] message`` — the human report line."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_payload(self) -> dict:
        """JSON-ready mapping (canonical serialization sorts the keys)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class Suppressions:
    """The pragma state of one module: per-line and whole-file waivers."""

    def __init__(self, text: str) -> None:
        self.line_rules: dict[int, frozenset[str]] = {}
        self.file_rules: frozenset[str] = frozenset()
        file_rules: set[str] = set()
        for number, line in enumerate(text.splitlines(), start=1):
            file_match = _FILE_PRAGMA.search(line)
            if file_match:
                file_rules.update(_parse_rules(file_match.group(1)))
                continue
            line_match = _LINE_PRAGMA.search(line)
            if line_match:
                self.line_rules[number] = frozenset(_parse_rules(line_match.group(1)))
        self.file_rules = frozenset(file_rules)

    def suppresses(self, finding: Finding) -> bool:
        """Whether ``finding`` is waived by a pragma naming its rule."""
        if finding.rule in self.file_rules:
            return True
        return finding.rule in self.line_rules.get(finding.line, frozenset())


def _parse_rules(listing: str) -> list[str]:
    return [rule.strip() for rule in listing.split(",") if rule.strip()]


class ModuleSource:
    """One parsed source file: path, text, AST, and its suppression pragmas."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.tree = ast.parse(text, filename=relpath)
        self.suppressions = Suppressions(text)

    @classmethod
    def load(cls, path: Path, root: Path) -> "ModuleSource":
        relpath = path.relative_to(root).as_posix()
        return cls(path, relpath, path.read_text(encoding="utf-8"))


class Project:
    """The set of modules a run analyses, loaded once and shared by passes.

    ``root`` anchors the repo-relative paths findings report;
    ``relative_roots`` are the directories scanned for ``*.py`` files
    (default: the library source tree).
    """

    def __init__(self, root: Path, relative_roots: Sequence[str] = ("src/repro",)) -> None:
        self.root = Path(root)
        self._modules: dict[str, ModuleSource] = {}
        for relative in relative_roots:
            base = self.root / relative if relative else self.root
            for path in sorted(base.rglob("*.py")):
                module = ModuleSource.load(path, self.root)
                self._modules[module.relpath] = module

    def modules(self) -> list[ModuleSource]:
        """Every loaded module, sorted by repo-relative path."""
        return [self._modules[relpath] for relpath in sorted(self._modules)]

    def module(self, relpath: str) -> ModuleSource | None:
        """The module at ``relpath``, or ``None`` when not part of the scan."""
        return self._modules.get(relpath)


class InvariantPass:
    """Base class of one analysis pass; subclasses set ``name`` and ``run``."""

    #: rule identifier referenced by pragmas and ``--rule`` filters.
    name = "invariant"
    #: one-line catalogue description (shown by ``--list``).
    description = ""

    def applies_to(self, module: ModuleSource) -> bool:
        """Whether ``module`` is in this pass's scope (default: everything)."""
        return True

    def run(self, project: Project) -> list[Finding]:
        """Analyse ``project`` and return (unsorted, unsuppressed) findings."""
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node`` in ``module``."""
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
        )


def run_passes(
    project: Project, passes: Iterable[InvariantPass]
) -> tuple[list[Finding], list[Finding]]:
    """Run ``passes`` over ``project``; returns ``(active, suppressed)``.

    Both lists are deterministically sorted; ``suppressed`` holds the
    findings waived by pragmas (reported by the CLI's verbose mode and
    counted in the JSON payload so waivers stay visible).
    """
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for invariant_pass in passes:
        for finding in invariant_pass.run(project):
            module = project.module(finding.path)
            if module is not None and module.suppressions.suppresses(finding):
                suppressed.append(finding)
            else:
                active.append(finding)
    return sorted(set(active)), sorted(set(suppressed))


# -- shared AST helpers ------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last segment of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def iter_functions(tree: ast.Module):
    """Every function/method definition in ``tree`` (nested ones included)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
