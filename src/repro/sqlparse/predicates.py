"""Predicate evaluation and analysis.

Two consumers drive this module:

* the storage engine evaluates WHERE clauses against rows to compute read and
  write sets (:func:`evaluate_predicate`);
* the explanation phase and the router analyse WHERE clauses structurally —
  which attributes are referenced and with which operators/values
  (:func:`referenced_attributes`, :func:`conjunctive_conditions`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.sqlparse.ast import (
    And,
    ColumnRef,
    Comparison,
    DeleteStatement,
    InsertStatement,
    JoinCondition,
    Or,
    Predicate,
    SelectStatement,
    Statement,
    UpdateStatement,
)


@dataclass(frozen=True)
class AttributeCondition:
    """A single attribute restriction extracted from a WHERE clause."""

    table: str | None
    column: str
    operator: str
    value: object = None
    values: tuple[object, ...] = ()
    low: object = None
    high: object = None

    @classmethod
    def from_comparison(cls, comparison: Comparison) -> "AttributeCondition":
        """Build from a :class:`Comparison` AST node."""
        return cls(
            table=comparison.column.table,
            column=comparison.column.name,
            operator=comparison.operator,
            value=comparison.value,
            values=comparison.values,
            low=comparison.low,
            high=comparison.high,
        )

    def candidate_values(self) -> tuple[object, ...]:
        """Values usable for equality-based routing (``=`` and ``IN`` only)."""
        if self.operator == "=":
            return (self.value,)
        if self.operator == "in":
            return self.values
        return ()


def evaluate_predicate(predicate: Predicate | None, row: Mapping[str, object]) -> bool:
    """Evaluate ``predicate`` against a row mapping column names to values.

    Join conditions are evaluated by looking up both column names in the same
    mapping (the executor materialises joined rows with prefixed keys where
    necessary); missing columns make the comparison false rather than raising
    so that the same predicate can be evaluated against rows of either joined
    table.
    """
    if predicate is None:
        return True
    if isinstance(predicate, And):
        return all(evaluate_predicate(child, row) for child in predicate.children)
    if isinstance(predicate, Or):
        return any(evaluate_predicate(child, row) for child in predicate.children)
    if isinstance(predicate, JoinCondition):
        left = _lookup(row, predicate.left)
        right = _lookup(row, predicate.right)
        if left is _MISSING or right is _MISSING:
            return False
        return left == right
    if isinstance(predicate, Comparison):
        return _evaluate_comparison(predicate, row)
    raise TypeError(f"unsupported predicate node {type(predicate).__name__}")


class _Missing:
    """Sentinel for a column not present in the row under evaluation."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()


def _lookup(row: Mapping[str, object], column: ColumnRef) -> object:
    if column.table is not None:
        qualified = f"{column.table}.{column.name}"
        if qualified in row:
            return row[qualified]
    if column.name in row:
        return row[column.name]
    return _MISSING


def _evaluate_comparison(comparison: Comparison, row: Mapping[str, object]) -> bool:
    actual = _lookup(row, comparison.column)
    if actual is _MISSING:
        return False
    operator = comparison.operator
    if operator == "=":
        return actual == comparison.value
    if operator == "<>":
        return actual != comparison.value
    if operator == "<":
        return actual < comparison.value  # type: ignore[operator]
    if operator == "<=":
        return actual <= comparison.value  # type: ignore[operator]
    if operator == ">":
        return actual > comparison.value  # type: ignore[operator]
    if operator == ">=":
        return actual >= comparison.value  # type: ignore[operator]
    if operator == "between":
        return comparison.low <= actual <= comparison.high  # type: ignore[operator]
    if operator == "in":
        return actual in comparison.values
    raise ValueError(f"unsupported operator {operator!r}")


def iter_comparisons(predicate: Predicate | None) -> Iterator[Comparison]:
    """Yield every :class:`Comparison` in ``predicate`` (any nesting)."""
    if predicate is None:
        return
    if isinstance(predicate, Comparison):
        yield predicate
    elif isinstance(predicate, (And, Or)):
        for child in predicate.children:
            yield from iter_comparisons(child)


def iter_join_conditions(predicate: Predicate | None) -> Iterator[JoinCondition]:
    """Yield every :class:`JoinCondition` in ``predicate``."""
    if predicate is None:
        return
    if isinstance(predicate, JoinCondition):
        yield predicate
    elif isinstance(predicate, (And, Or)):
        for child in predicate.children:
            yield from iter_join_conditions(child)


def conjunctive_conditions(predicate: Predicate | None) -> list[AttributeCondition]:
    """Return attribute conditions that hold for *every* matching row.

    Only comparisons reachable through conjunctions are returned; comparisons
    under an OR are skipped because they do not constrain all matching rows.
    This is what the router can safely use to narrow the destination
    partitions of a statement.
    """
    conditions: list[AttributeCondition] = []
    _collect_conjunctive(predicate, conditions)
    return conditions


def _collect_conjunctive(predicate: Predicate | None, out: list[AttributeCondition]) -> None:
    if predicate is None or isinstance(predicate, (Or, JoinCondition)):
        return
    if isinstance(predicate, Comparison):
        out.append(AttributeCondition.from_comparison(predicate))
        return
    if isinstance(predicate, And):
        for child in predicate.children:
            _collect_conjunctive(child, out)


def statement_where(statement: Statement) -> Predicate | None:
    """Return the WHERE predicate of a statement (None for INSERT)."""
    if isinstance(statement, (SelectStatement, UpdateStatement, DeleteStatement)):
        return statement.where
    return None


def referenced_attributes(statement: Statement) -> list[tuple[str | None, str]]:
    """Return ``(table, column)`` pairs referenced in the statement's WHERE clause.

    INSERT statements contribute their column list since inserts are routed by
    the values being inserted.  Used by the frequent-attribute-set analysis of
    the explanation phase (Section 4.3 of the paper).
    """
    if isinstance(statement, InsertStatement):
        return [(statement.table, column) for column in statement.row]
    attributes: list[tuple[str | None, str]] = []
    where = statement_where(statement)
    for comparison in iter_comparisons(where):
        attributes.append((comparison.column.table, comparison.column.name))
    for join in iter_join_conditions(where):
        attributes.append((join.left.table, join.left.name))
        attributes.append((join.right.table, join.right.name))
    return attributes
