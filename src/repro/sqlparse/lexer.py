"""Tokenizer for the mini-SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class LexerError(ValueError):
    """Raised when the input text contains a character we cannot tokenize."""


class TokenType(Enum):
    """Token categories produced by :func:`tokenize`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    PARAMETER = "parameter"
    END = "end"


KEYWORDS = {
    "select",
    "from",
    "where",
    "and",
    "or",
    "insert",
    "into",
    "values",
    "update",
    "set",
    "delete",
    "between",
    "in",
    "limit",
    "join",
    "on",
    "order",
    "by",
    "asc",
    "desc",
}

_OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCTUATION = "(),.;"


@dataclass(frozen=True)
class Token:
    """A single token with its source position (for error messages)."""

    token_type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        """Return whether this token has the given type (and value, if given)."""
        if self.token_type is not token_type:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list of tokens ending with an END token."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "?":
            tokens.append(Token(TokenType.PARAMETER, "?", index))
            index += 1
            continue
        if char in "'\"":
            end = text.find(char, index + 1)
            if end == -1:
                raise LexerError(f"unterminated string literal at position {index}")
            tokens.append(Token(TokenType.STRING, text[index + 1 : end], index))
            index = end + 1
            continue
        if char.isdigit() or (char == "-" and _starts_number(text, index, tokens)):
            end = index + 1
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # Do not treat "1." followed by a non-digit as a float.
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, text[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            token_type = TokenType.KEYWORD if word.lower() in KEYWORDS else TokenType.IDENTIFIER
            value = word.lower() if token_type is TokenType.KEYWORD else word
            tokens.append(Token(token_type, value, index))
            index = end
            continue
        matched_operator = None
        for operator in _OPERATORS:
            if text.startswith(operator, index):
                matched_operator = operator
                break
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, index))
            index += len(matched_operator)
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, index))
            index += 1
            continue
        raise LexerError(f"unexpected character {char!r} at position {index}")
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def _starts_number(text: str, index: int, tokens: list[Token]) -> bool:
    """Decide whether a ``-`` begins a negative literal rather than subtraction."""
    if index + 1 >= len(text) or not text[index + 1].isdigit():
        return False
    if not tokens:
        return True
    previous = tokens[-1]
    # After an operator, comma, or opening paren a minus sign starts a literal.
    return previous.token_type in (TokenType.OPERATOR, TokenType.KEYWORD) or previous.value in ("(", ",")
