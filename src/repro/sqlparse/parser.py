"""Recursive-descent parser producing :mod:`repro.sqlparse.ast` nodes."""

from __future__ import annotations

from repro.sqlparse.ast import (
    And,
    ColumnRef,
    Comparison,
    DeleteStatement,
    InsertStatement,
    JoinCondition,
    Or,
    Predicate,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.sqlparse.lexer import Token, TokenType, tokenize


class ParseError(ValueError):
    """Raised when the SQL text does not match the supported grammar."""


def parse_statement(text: str) -> Statement:
    """Parse a single SQL statement into an AST node.

    Raises :class:`ParseError` for syntax outside the supported OLTP subset.
    """
    parser = _Parser(tokenize(text), text)
    statement = parser.parse()
    parser.expect_end()
    return statement


class _Parser:
    """Stateful cursor over the token stream."""

    def __init__(self, tokens: list[Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    # -- cursor helpers -----------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        if self._current.matches(token_type, value):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self._accept(token_type, value)
        if token is None:
            raise ParseError(
                f"expected {value or token_type.value!r} at position {self._current.position} "
                f"in {self._text!r}, found {self._current.value!r}"
            )
        return token

    def expect_end(self) -> None:
        """Require that the whole input has been consumed (trailing ';' allowed)."""
        self._accept(TokenType.PUNCTUATION, ";")
        if not self._current.matches(TokenType.END):
            raise ParseError(
                f"unexpected trailing input at position {self._current.position}: "
                f"{self._current.value!r}"
            )

    # -- grammar ------------------------------------------------------------------
    def parse(self) -> Statement:
        """statement := select | insert | update | delete"""
        if self._accept(TokenType.KEYWORD, "select"):
            return self._parse_select()
        if self._accept(TokenType.KEYWORD, "insert"):
            return self._parse_insert()
        if self._accept(TokenType.KEYWORD, "update"):
            return self._parse_update()
        if self._accept(TokenType.KEYWORD, "delete"):
            return self._parse_delete()
        raise ParseError(f"unsupported statement: {self._text!r}")

    def _parse_select(self) -> SelectStatement:
        columns: list[ColumnRef] = []
        if not self._accept(TokenType.OPERATOR, "*"):
            columns.append(self._parse_column_ref())
            while self._accept(TokenType.PUNCTUATION, ","):
                columns.append(self._parse_column_ref())
        self._expect(TokenType.KEYWORD, "from")
        tables = [self._expect(TokenType.IDENTIFIER).value]
        while self._accept(TokenType.PUNCTUATION, ","):
            tables.append(self._expect(TokenType.IDENTIFIER).value)
        where = None
        # Optional explicit JOIN ... ON ... syntax (converted to implicit join form).
        join_conditions: list[Predicate] = []
        while self._accept(TokenType.KEYWORD, "join"):
            tables.append(self._expect(TokenType.IDENTIFIER).value)
            self._expect(TokenType.KEYWORD, "on")
            join_conditions.append(self._parse_condition())
        if self._accept(TokenType.KEYWORD, "where"):
            where = self._parse_predicate()
        if join_conditions:
            children = tuple(join_conditions) + ((where,) if where is not None else ())
            where = children[0] if len(children) == 1 else And(children)
        limit = None
        if self._accept(TokenType.KEYWORD, "limit"):
            limit = int(self._expect(TokenType.NUMBER).value)
        # ORDER BY is accepted and ignored: it does not change read sets.
        if self._accept(TokenType.KEYWORD, "order"):
            self._expect(TokenType.KEYWORD, "by")
            self._parse_column_ref()
            if not self._accept(TokenType.KEYWORD, "asc"):
                self._accept(TokenType.KEYWORD, "desc")
            if self._accept(TokenType.KEYWORD, "limit"):
                limit = int(self._expect(TokenType.NUMBER).value)
        return SelectStatement(tuple(tables), tuple(columns), where, limit)

    def _parse_insert(self) -> InsertStatement:
        self._expect(TokenType.KEYWORD, "into")
        table = self._expect(TokenType.IDENTIFIER).value
        self._expect(TokenType.PUNCTUATION, "(")
        columns = [self._expect(TokenType.IDENTIFIER).value]
        while self._accept(TokenType.PUNCTUATION, ","):
            columns.append(self._expect(TokenType.IDENTIFIER).value)
        self._expect(TokenType.PUNCTUATION, ")")
        self._expect(TokenType.KEYWORD, "values")
        self._expect(TokenType.PUNCTUATION, "(")
        values = [self._parse_literal()]
        while self._accept(TokenType.PUNCTUATION, ","):
            values.append(self._parse_literal())
        self._expect(TokenType.PUNCTUATION, ")")
        if len(columns) != len(values):
            raise ParseError(
                f"INSERT column/value count mismatch ({len(columns)} vs {len(values)})"
            )
        return InsertStatement(table, dict(zip(columns, values)))

    def _parse_update(self) -> UpdateStatement:
        table = self._expect(TokenType.IDENTIFIER).value
        self._expect(TokenType.KEYWORD, "set")
        assignments: dict[str, object] = {}
        while True:
            column = self._expect(TokenType.IDENTIFIER).value
            self._expect(TokenType.OPERATOR, "=")
            assignments[column] = self._parse_assignment_value(column)
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        where = None
        if self._accept(TokenType.KEYWORD, "where"):
            where = self._parse_predicate()
        return UpdateStatement(table, assignments, where)

    def _parse_delete(self) -> DeleteStatement:
        self._expect(TokenType.KEYWORD, "from")
        table = self._expect(TokenType.IDENTIFIER).value
        where = None
        if self._accept(TokenType.KEYWORD, "where"):
            where = self._parse_predicate()
        return DeleteStatement(table, where)

    # -- predicates ----------------------------------------------------------------
    def _parse_predicate(self) -> Predicate:
        """predicate := conjunction (OR conjunction)*"""
        children = [self._parse_conjunction()]
        while self._accept(TokenType.KEYWORD, "or"):
            children.append(self._parse_conjunction())
        if len(children) == 1:
            return children[0]
        return Or(tuple(children))

    def _parse_conjunction(self) -> Predicate:
        """conjunction := condition (AND condition)*"""
        children = [self._parse_condition_or_group()]
        while self._accept(TokenType.KEYWORD, "and"):
            children.append(self._parse_condition_or_group())
        if len(children) == 1:
            return children[0]
        return And(tuple(children))

    def _parse_condition_or_group(self) -> Predicate:
        if self._accept(TokenType.PUNCTUATION, "("):
            inner = self._parse_predicate()
            self._expect(TokenType.PUNCTUATION, ")")
            return inner
        return self._parse_condition()

    def _parse_condition(self) -> Predicate:
        column = self._parse_column_ref()
        if self._accept(TokenType.KEYWORD, "between"):
            low = self._parse_literal()
            self._expect(TokenType.KEYWORD, "and")
            high = self._parse_literal()
            return Comparison(column, "between", low=low, high=high)
        if self._accept(TokenType.KEYWORD, "in"):
            self._expect(TokenType.PUNCTUATION, "(")
            values = [self._parse_literal()]
            while self._accept(TokenType.PUNCTUATION, ","):
                values.append(self._parse_literal())
            self._expect(TokenType.PUNCTUATION, ")")
            return Comparison(column, "in", values=tuple(values))
        operator_token = self._expect(TokenType.OPERATOR)
        operator = "<>" if operator_token.value == "!=" else operator_token.value
        if operator not in ("=", "<>", "<", "<=", ">", ">="):
            raise ParseError(f"unsupported comparison operator {operator!r}")
        # A column on the right-hand side makes this a join condition.
        if self._current.token_type is TokenType.IDENTIFIER and not self._is_literal_ahead():
            right = self._parse_column_ref()
            if operator != "=":
                raise ParseError("join conditions only support equality")
            return JoinCondition(column, right)
        value = self._parse_literal()
        return Comparison(column, operator, value)

    def _is_literal_ahead(self) -> bool:
        return self._current.token_type in (
            TokenType.NUMBER,
            TokenType.STRING,
            TokenType.PARAMETER,
        )

    def _parse_column_ref(self) -> ColumnRef:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._accept(TokenType.PUNCTUATION, "."):
            second = self._expect(TokenType.IDENTIFIER).value
            return ColumnRef(second, table=first)
        return ColumnRef(first)

    def _parse_literal(self) -> object:
        token = self._current
        if token.token_type is TokenType.NUMBER:
            self._advance()
            text = token.value
            return float(text) if "." in text else int(text)
        if token.token_type is TokenType.STRING:
            self._advance()
            return token.value
        if token.token_type is TokenType.PARAMETER:
            raise ParseError(
                "statement contains an unbound parameter '?'; bind parameters before parsing"
            )
        raise ParseError(f"expected literal at position {token.position}, found {token.value!r}")

    def _parse_assignment_value(self, column: str) -> object:
        """Parse the right-hand side of ``SET col = ...``.

        Supports literals and the ``col = col +/- literal`` delta idiom.
        """
        if self._current.token_type is TokenType.IDENTIFIER and self._current.value == column:
            self._advance()
            operator = self._expect(TokenType.OPERATOR)
            if operator.value not in ("+", "-"):
                raise ParseError(f"unsupported SET expression operator {operator.value!r}")
            amount = self._parse_literal()
            if operator.value == "-":
                amount = -amount  # type: ignore[operator]
            return ("delta", amount)
        return self._parse_literal()
