"""A small SQL layer for OLTP traces.

The workload generators build statement ASTs directly, while traces captured
as SQL text (the paper's input is a MySQL general log) are turned into the
same ASTs by :func:`parse_statement`.  Only the subset of SQL exercised by
OLTP workloads is supported: single-table SELECT/INSERT/UPDATE/DELETE plus
simple equi-joins, with WHERE clauses over ``=``, ``<>``, ``<``, ``<=``,
``>``, ``>=``, ``BETWEEN``, ``IN`` combined with ``AND``/``OR``.
"""

from repro.sqlparse.ast import (
    And,
    ColumnRef,
    Comparison,
    DeleteStatement,
    InsertStatement,
    JoinCondition,
    Or,
    Predicate,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.sqlparse.lexer import LexerError, Token, TokenType, tokenize
from repro.sqlparse.parser import ParseError, parse_statement
from repro.sqlparse.predicates import (
    AttributeCondition,
    conjunctive_conditions,
    evaluate_predicate,
    referenced_attributes,
)

__all__ = [
    "And",
    "AttributeCondition",
    "ColumnRef",
    "Comparison",
    "DeleteStatement",
    "InsertStatement",
    "JoinCondition",
    "LexerError",
    "Or",
    "ParseError",
    "Predicate",
    "SelectStatement",
    "Statement",
    "Token",
    "TokenType",
    "UpdateStatement",
    "conjunctive_conditions",
    "evaluate_predicate",
    "parse_statement",
    "referenced_attributes",
    "tokenize",
]
