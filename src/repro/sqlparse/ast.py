"""AST node definitions for the mini-SQL dialect.

These dataclasses are the canonical statement representation used throughout
the library.  Workload generators construct them directly; the parser in
:mod:`repro.sqlparse.parser` builds them from SQL text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Union


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnRef:
    """Reference to a column, optionally qualified with a table name."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


#: Comparison operators supported in WHERE clauses.
COMPARISON_OPERATORS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal`` or ``column BETWEEN low AND high`` (op='between')
    or ``column IN (v1, ..., vn)`` (op='in')."""

    column: ColumnRef
    operator: str
    value: object = None
    values: tuple[object, ...] = ()
    low: object = None
    high: object = None

    def __post_init__(self) -> None:
        valid = set(COMPARISON_OPERATORS) | {"between", "in"}
        if self.operator not in valid:
            raise ValueError(f"unsupported comparison operator {self.operator!r}")

    def __str__(self) -> str:
        if self.operator == "between":
            return f"{self.column} BETWEEN {self.low!r} AND {self.high!r}"
        if self.operator == "in":
            inner = ", ".join(repr(v) for v in self.values)
            return f"{self.column} IN ({inner})"
        return f"{self.column} {self.operator} {self.value!r}"


@dataclass(frozen=True)
class JoinCondition:
    """Equality between columns of two tables: ``a.x = b.y``."""

    left: ColumnRef
    right: ColumnRef

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class And:
    """Conjunction of predicates."""

    children: tuple["Predicate", ...]

    def __str__(self) -> str:
        return " AND ".join(f"({child})" for child in self.children)


@dataclass(frozen=True)
class Or:
    """Disjunction of predicates."""

    children: tuple["Predicate", ...]

    def __str__(self) -> str:
        return " OR ".join(f"({child})" for child in self.children)


Predicate = Union[Comparison, JoinCondition, And, Or]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SelectStatement:
    """``SELECT columns FROM tables [WHERE predicate] [LIMIT n]``.

    ``columns`` empty means ``*``.  Multiple tables express an (implicit)
    join; the join condition lives in the predicate.
    """

    tables: tuple[str, ...]
    columns: tuple[ColumnRef, ...] = ()
    where: Predicate | None = None
    limit: int | None = None

    @property
    def is_join(self) -> bool:
        """Whether the statement reads from more than one table."""
        return len(self.tables) > 1

    def __str__(self) -> str:
        columns = ", ".join(str(column) for column in self.columns) if self.columns else "*"
        text = f"SELECT {columns} FROM {', '.join(self.tables)}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO table (columns) VALUES (values)``."""

    table: str
    row: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        columns = ", ".join(self.row)
        values = ", ".join(repr(value) for value in self.row.values())
        return f"INSERT INTO {self.table} ({columns}) VALUES ({values})"


@dataclass(frozen=True)
class UpdateStatement:
    """``UPDATE table SET assignments [WHERE predicate]``.

    Assignment values are either literals or ``("delta", amount)`` tuples
    expressing the common ``SET col = col + amount`` OLTP idiom.
    """

    table: str
    assignments: Mapping[str, object] = field(default_factory=dict)
    where: Predicate | None = None

    def __str__(self) -> str:
        parts = []
        for column, value in self.assignments.items():
            if isinstance(value, tuple) and len(value) == 2 and value[0] == "delta":
                parts.append(f"{column} = {column} + {value[1]!r}")
            else:
                parts.append(f"{column} = {value!r}")
        text = f"UPDATE {self.table} SET {', '.join(parts)}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        return text


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE FROM table [WHERE predicate]``."""

    table: str
    where: Predicate | None = None

    def __str__(self) -> str:
        text = f"DELETE FROM {self.table}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        return text


Statement = Union[SelectStatement, InsertStatement, UpdateStatement, DeleteStatement]


def statement_tables(statement: Statement) -> tuple[str, ...]:
    """Return the tables touched by ``statement``."""
    if isinstance(statement, SelectStatement):
        return statement.tables
    return (statement.table,)


def is_write(statement: Statement) -> bool:
    """Return whether the statement modifies data."""
    return isinstance(statement, (InsertStatement, UpdateStatement, DeleteStatement))


def eq(column: str, value: object, table: str | None = None) -> Comparison:
    """Shorthand for an equality comparison (heavily used by generators)."""
    return Comparison(ColumnRef(column, table), "=", value)


def between(column: str, low: object, high: object, table: str | None = None) -> Comparison:
    """Shorthand for a BETWEEN comparison."""
    return Comparison(ColumnRef(column, table), "between", low=low, high=high)


def in_list(column: str, values: Sequence[object], table: str | None = None) -> Comparison:
    """Shorthand for an IN comparison."""
    return Comparison(ColumnRef(column, table), "in", values=tuple(values))


def conj(*predicates: Predicate) -> Predicate:
    """Combine predicates with AND, flattening single elements."""
    flat = tuple(predicate for predicate in predicates if predicate is not None)
    if not flat:
        raise ValueError("conj requires at least one predicate")
    if len(flat) == 1:
        return flat[0]
    return And(flat)
