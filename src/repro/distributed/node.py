"""Per-node cost parameters used by the analytic throughput simulator.

The defaults are calibrated so that the simulator reproduces the *relative*
behaviour measured in the paper (Figure 1: distributed transactions halve
throughput and double latency; Figure 6: lock contention caps TPC-C scaling
at ~4.7x with 2 warehouses per machine while 16 warehouses per machine scales
nearly linearly).  Absolute numbers depend on hardware the paper used and are
not claimed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NodeCostModel:
    """CPU / coordination costs of one database node, in milliseconds."""

    #: CPU time to execute one simple statement (index lookup / single-row update).
    statement_service_ms: float = 0.09
    #: CPU time for a local (single-partition) commit.
    local_commit_ms: float = 0.02
    #: extra CPU per participant of a two-phase commit (prepare + commit handling).
    twopc_participant_ms: float = 0.10
    #: CPU spent by the coordinator per distributed transaction.
    coordinator_ms: float = 0.03
    #: network round-trip between client/coordinator and a server.
    network_rtt_ms: float = 0.35

    def local_transaction_work(self, statements: int) -> float:
        """Total server CPU of a single-partition transaction."""
        return statements * self.statement_service_ms + self.local_commit_ms

    def distributed_transaction_work(self, statements: int, participants: int) -> float:
        """Total CPU (all servers + coordinator) of a distributed transaction."""
        participants = max(2, participants)
        return (
            statements * self.statement_service_ms
            + participants * self.twopc_participant_ms
            + self.coordinator_ms
        )

    def local_latency(self, statements: int) -> float:
        """Client-perceived latency of a single-partition transaction (unloaded)."""
        # One round trip per statement plus the commit round trip.
        return (statements + 1) * self.network_rtt_ms + self.local_transaction_work(statements)

    def distributed_latency(self, statements: int, participants: int) -> float:
        """Client-perceived latency of a distributed transaction (unloaded)."""
        participants = max(2, participants)
        # Statements still take one round trip each; two-phase commit adds two
        # more rounds (prepare, commit) to every participant, which proceed in
        # parallel but still cost a round trip each.
        return (
            (statements + 2) * self.network_rtt_ms
            + self.distributed_transaction_work(statements, participants)
            + self.network_rtt_ms  # extra ack round absorbed by the coordinator
        )
