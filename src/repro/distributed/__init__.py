"""Distributed execution substrate.

Stands in for the paper's MySQL cluster: a :class:`Cluster` holds one
in-memory partition database per node, the :class:`TwoPhaseCommitCoordinator`
executes routed transactions against it while counting messages and
participants, and :class:`ThroughputSimulator` turns workload characteristics
(statements per transaction, distributed fraction, contention) into the
throughput/latency curves reported in Figures 1 and 6.
"""

from repro.distributed.cluster import Cluster
from repro.distributed.coordinator import TransactionOutcome, TwoPhaseCommitCoordinator
from repro.distributed.node import NodeCostModel
from repro.distributed.simulation import SimulationParameters, SimulationResult, ThroughputSimulator

__all__ = [
    "Cluster",
    "NodeCostModel",
    "SimulationParameters",
    "SimulationResult",
    "ThroughputSimulator",
    "TransactionOutcome",
    "TwoPhaseCommitCoordinator",
]
