"""Distributed transaction execution with two-phase commit accounting.

The coordinator drives routed transactions against the partition databases of
a :class:`~repro.distributed.cluster.Cluster` and records, per transaction,
the participants and the number of network messages.  Single-partition
transactions commit with a single request/response; multi-partition
transactions pay the full 2PC message complement (prepare + vote + commit +
ack per participant), which is exactly the overhead Section 3 of the paper
blames for the 2x throughput loss.

With a :class:`~repro.distributed.faults.FaultInjector` attached, each
transaction is first routed completely, then every planned message is drawn
against the injector *before* any statement executes: a crashed participant
or a dropped message aborts the transaction with **zero side effects**,
modelling a 2PC prepare-phase failure (the toy engine has no undo log, so an
aborted transaction must never have touched storage).  Aborted attempts pay
the abort message complement and are counted separately from committed
transactions, feeding the migration pacer's abort-rate estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.cluster import Cluster
from repro.distributed.faults import FaultInjector, MessageDropped
from repro.engine.executor import StatementResult
from repro.obs import get_telemetry
from repro.routing.router import Router, TransactionRoutingContext
from repro.workload.trace import Transaction, Workload


@dataclass
class TransactionOutcome:
    """Execution record of one transaction (or one aborted attempt)."""

    transaction: Transaction
    participants: frozenset[int]
    messages: int
    statement_results: list[StatementResult] = field(default_factory=list)
    #: True when a fault aborted the attempt before any statement executed.
    aborted: bool = False
    #: why the attempt aborted (empty for committed transactions).
    abort_reason: str = ""
    #: latency proxy: messages exchanged plus injected delivery delays.
    latency: float = 0.0

    @property
    def is_distributed(self) -> bool:
        """Whether the transaction involved more than one partition."""
        return len(self.participants) > 1


@dataclass
class CoordinatorStatistics:
    """Aggregate statistics across executed transactions.

    ``transactions`` counts *committed* transactions only; aborted attempts
    are tallied in ``aborts`` so the distributed fraction keeps its meaning
    (fraction of committed work that was distributed).
    """

    transactions: int = 0
    distributed_transactions: int = 0
    total_messages: int = 0
    total_participants: int = 0
    aborts: int = 0

    @property
    def distributed_fraction(self) -> float:
        """Fraction of executed transactions that were distributed."""
        if self.transactions == 0:
            return 0.0
        return self.distributed_transactions / self.transactions

    @property
    def mean_messages(self) -> float:
        """Mean network messages per transaction."""
        if self.transactions == 0:
            return 0.0
        return self.total_messages / self.transactions

    @property
    def abort_rate(self) -> float:
        """Aborted attempts as a fraction of all attempts."""
        attempts = self.transactions + self.aborts
        if attempts == 0:
            return 0.0
        return self.aborts / attempts


class TwoPhaseCommitCoordinator:
    """Executes transactions across a cluster using a router."""

    def __init__(
        self,
        cluster: Cluster,
        router: Router,
        injector: FaultInjector | None = None,
    ) -> None:
        if cluster.num_partitions != router.num_partitions:
            raise ValueError("cluster and router disagree on the number of partitions")
        self.cluster = cluster
        self.router = router
        self.injector = injector
        self.statistics = CoordinatorStatistics()
        #: injected delivery delay accumulated by the last fault draw.
        self._delay_total = 0.0
        metrics = get_telemetry().metrics
        self._attempts = metrics.counter(
            "twopc.attempts",
            "transaction attempts by outcome and locality",
            labels=("outcome", "scope"),
        )
        self._abort_reasons = metrics.counter(
            "twopc.aborts", "aborted attempts by (normalised) reason", labels=("reason",)
        )
        self._messages = metrics.counter(
            "twopc.messages", "network messages exchanged"
        )
        self._latency = metrics.histogram(
            "twopc.latency", "per-attempt latency proxy (messages + injected delay)"
        )

    def execute_transaction(self, transaction: Transaction) -> TransactionOutcome:
        """Execute one transaction, returning its outcome and updating statistics."""
        context = TransactionRoutingContext()
        decisions = [
            self.router.route_statement(statement, context)
            for statement in transaction.statements
        ]
        participants: set[int] = set()
        messages = 0
        for decision in decisions:
            participants.update(decision.partitions)
            # One request and one response per destination partition.
            messages += 2 * len(decision.partitions)
        if len(participants) > 1:
            # Two-phase commit: prepare + vote + commit + ack per participant.
            messages += 4 * len(participants)
        else:
            # Local commit: single commit request + acknowledgement.
            messages += 2
        latency = float(messages)
        if self.injector is not None:
            self.injector.advance()
            aborted = self._draw_faults(participants, messages)
            if aborted is not None:
                # Prepare failed: every participant is told to abort (or is
                # unreachable) — one request/response pair each, no commit.
                abort_messages = 2 * max(1, len(participants))
                outcome = TransactionOutcome(
                    transaction,
                    frozenset(participants),
                    abort_messages,
                    aborted=True,
                    abort_reason=aborted,
                    latency=float(abort_messages),
                )
                self.statistics.aborts += 1
                scope = "distributed" if len(participants) > 1 else "local"
                self._attempts.inc(outcome="aborted", scope=scope)
                # Bounded label cardinality: "participant N unavailable"
                # normalises to "unavailable" (the outcome keeps the full
                # reason string).
                self._abort_reasons.inc(
                    reason="unavailable" if "unavailable" in aborted else "dropped"
                )
                self._messages.inc(abort_messages)
                self._latency.observe(outcome.latency)
                return outcome
        statement_results: list[StatementResult] = []
        for statement, decision in zip(transaction.statements, decisions):
            merged = StatementResult()
            for partition in sorted(decision.partitions):
                result = self.cluster.database(partition).execute(statement)
                merged.rows.extend(result.rows)
                merged.read_set.update(result.read_set)
                merged.write_set.update(result.write_set)
            statement_results.append(merged)
        outcome = TransactionOutcome(
            transaction,
            frozenset(participants),
            messages,
            statement_results,
            latency=latency + self._delay_total,
        )
        self._record(outcome)
        return outcome

    def _draw_faults(self, participants: set[int], messages: int) -> str | None:
        """Draw every fault outcome for this attempt; returns an abort reason.

        All draws happen before execution so an aborted transaction has zero
        side effects; the delay total of a surviving attempt is left in
        ``_delay_total`` for the latency proxy.
        """
        injector = self.injector
        assert injector is not None
        self._delay_total = 0.0
        down = sorted(
            partition
            for partition in participants
            if not injector.node_available(partition)
        )
        if down:
            injector.statistics.unavailability_hits += 1
            return f"participant {down[0]} unavailable"
        delay = 0.0
        try:
            for _ in range(messages):
                delay += injector.deliver()
        except MessageDropped:
            return "message dropped"
        self._delay_total = delay
        return None

    def execute_with_retries(
        self,
        transaction: Transaction,
        max_attempts: int = 16,
        observer=None,
    ) -> TransactionOutcome:
        """Retry ``transaction`` until it commits or ``max_attempts`` is spent.

        Each attempt advances the injector clock, so a crash window expires
        under retries instead of livelocking them.  ``observer`` (when
        given) is called with *every* attempt's outcome — aborted retries
        included — which is what an SLO pacer needs to see: the final
        outcome alone hides the abort pressure the retries absorbed.
        Returns the final (committed or still-aborted) outcome.
        """
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        outcome = self.execute_transaction(transaction)
        if observer is not None:
            observer(outcome)
        attempts = 1
        while outcome.aborted and attempts < max_attempts:
            outcome = self.execute_transaction(transaction)
            if observer is not None:
                observer(outcome)
            attempts += 1
        return outcome

    def execute_workload(self, workload: Workload) -> list[TransactionOutcome]:
        """Execute every transaction of ``workload`` in order."""
        return [self.execute_transaction(transaction) for transaction in workload]

    def _record(self, outcome: TransactionOutcome) -> None:
        self.statistics.transactions += 1
        self.statistics.total_messages += outcome.messages
        self.statistics.total_participants += len(outcome.participants)
        if outcome.is_distributed:
            self.statistics.distributed_transactions += 1
        self._attempts.inc(
            outcome="committed",
            scope="distributed" if outcome.is_distributed else "local",
        )
        self._messages.inc(outcome.messages)
        self._latency.observe(outcome.latency)
