"""Distributed transaction execution with two-phase commit accounting.

The coordinator drives routed transactions against the partition databases of
a :class:`~repro.distributed.cluster.Cluster` and records, per transaction,
the participants and the number of network messages.  Single-partition
transactions commit with a single request/response; multi-partition
transactions pay the full 2PC message complement (prepare + vote + commit +
ack per participant), which is exactly the overhead Section 3 of the paper
blames for the 2x throughput loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.cluster import Cluster
from repro.engine.executor import StatementResult
from repro.routing.router import Router, TransactionRoutingContext
from repro.workload.trace import Transaction, Workload


@dataclass
class TransactionOutcome:
    """Execution record of one transaction."""

    transaction: Transaction
    participants: frozenset[int]
    messages: int
    statement_results: list[StatementResult] = field(default_factory=list)

    @property
    def is_distributed(self) -> bool:
        """Whether the transaction involved more than one partition."""
        return len(self.participants) > 1


@dataclass
class CoordinatorStatistics:
    """Aggregate statistics across executed transactions."""

    transactions: int = 0
    distributed_transactions: int = 0
    total_messages: int = 0
    total_participants: int = 0

    @property
    def distributed_fraction(self) -> float:
        """Fraction of executed transactions that were distributed."""
        if self.transactions == 0:
            return 0.0
        return self.distributed_transactions / self.transactions

    @property
    def mean_messages(self) -> float:
        """Mean network messages per transaction."""
        if self.transactions == 0:
            return 0.0
        return self.total_messages / self.transactions


class TwoPhaseCommitCoordinator:
    """Executes transactions across a cluster using a router."""

    def __init__(self, cluster: Cluster, router: Router) -> None:
        if cluster.num_partitions != router.num_partitions:
            raise ValueError("cluster and router disagree on the number of partitions")
        self.cluster = cluster
        self.router = router
        self.statistics = CoordinatorStatistics()

    def execute_transaction(self, transaction: Transaction) -> TransactionOutcome:
        """Execute one transaction, returning its outcome and updating statistics."""
        context = TransactionRoutingContext()
        participants: set[int] = set()
        messages = 0
        statement_results: list[StatementResult] = []
        for statement in transaction.statements:
            decision = self.router.route_statement(statement, context)
            merged = StatementResult()
            for partition in sorted(decision.partitions):
                result = self.cluster.database(partition).execute(statement)
                merged.rows.extend(result.rows)
                merged.read_set.update(result.read_set)
                merged.write_set.update(result.write_set)
            statement_results.append(merged)
            participants.update(decision.partitions)
            # One request and one response per destination partition.
            messages += 2 * len(decision.partitions)
        if len(participants) > 1:
            # Two-phase commit: prepare + vote + commit + ack per participant.
            messages += 4 * len(participants)
        else:
            # Local commit: single commit request + acknowledgement.
            messages += 2
        outcome = TransactionOutcome(transaction, frozenset(participants), messages, statement_results)
        self._record(outcome)
        return outcome

    def execute_workload(self, workload: Workload) -> list[TransactionOutcome]:
        """Execute every transaction of ``workload`` in order."""
        return [self.execute_transaction(transaction) for transaction in workload]

    def _record(self, outcome: TransactionOutcome) -> None:
        self.statistics.transactions += 1
        self.statistics.total_messages += outcome.messages
        self.statistics.total_participants += len(outcome.participants)
        if outcome.is_distributed:
            self.statistics.distributed_transactions += 1
