"""A shared-nothing cluster of partition databases."""

from __future__ import annotations

from repro.catalog.schema import Schema
from repro.catalog.tuples import TupleId
from repro.core.strategies import PartitioningStrategy
from repro.engine.database import Database


class Cluster:
    """One in-memory :class:`Database` per partition."""

    def __init__(self, schema: Schema, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.schema = schema
        self.num_partitions = num_partitions
        self.partition_databases = [Database(schema) for _ in range(num_partitions)]

    @classmethod
    def from_database(cls, database: Database, placement) -> "Cluster":
        """Materialise a cluster by placing every tuple of ``database``.

        ``placement`` is a :class:`PartitioningStrategy` or a
        :class:`~repro.pipeline.plan.PartitionPlan` (deployed via its
        winning strategy).  This is the physical "data migration" step: each
        tuple is copied to every partition the placement assigns it to
        (replicated tuples appear on several partitions).
        """
        # Imported lazily so the distributed layer stays importable alone.
        from repro.pipeline.plan import PartitionPlan

        strategy: PartitioningStrategy = (
            placement.build_strategy()
            if isinstance(placement, PartitionPlan)
            else placement
        )
        cluster = cls(database.schema, strategy.num_partitions)
        for table in database.schema.tables:
            storage = database.storage(table.name)
            for key, row in storage.rows():
                placements = strategy.partitions_for_tuple(TupleId(table.name, key), row)
                for partition in placements:
                    cluster.partition_databases[partition].insert_row(table.name, dict(row))
        return cluster

    def database(self, partition: int) -> Database:
        """The database instance backing ``partition``."""
        if not 0 <= partition < self.num_partitions:
            raise IndexError(f"partition {partition} out of range")
        return self.partition_databases[partition]

    # -- elastic membership (online partition scaling) ---------------------------------
    def grow_to(self, new_num_partitions: int) -> None:
        """Add empty partitions until the cluster has ``new_num_partitions``.

        Called by the elastic controller *before* migration copies, so data
        can land on the new partitions while every existing placement stays
        valid.
        """
        if new_num_partitions <= self.num_partitions:
            raise ValueError("grow_to requires more partitions than the cluster has")
        while self.num_partitions < new_num_partitions:
            self.partition_databases.append(Database(self.schema))
            self.num_partitions += 1

    def shrink_to(self, new_num_partitions: int) -> None:
        """Remove the trailing partitions down to ``new_num_partitions``.

        The partitions being removed must already be empty: the elastic
        controller migrates their tuples away (copy -> routing update ->
        drop) before shrinking, so removal never destroys a live replica.
        """
        if not 0 < new_num_partitions < self.num_partitions:
            raise ValueError("shrink_to requires fewer (but at least 1) partitions")
        for partition in range(new_num_partitions, self.num_partitions):
            remaining = self.partition_databases[partition].row_count()
            if remaining:
                raise ValueError(
                    f"partition {partition} still stores {remaining} rows; "
                    "migrate them away before shrinking"
                )
        del self.partition_databases[new_num_partitions:]
        self.num_partitions = new_num_partitions

    def all_tuple_ids(self) -> set[TupleId]:
        """Every tuple stored anywhere in the cluster (replicas deduplicated)."""
        return set(self.tuple_locations_map())

    def tuple_locations_map(self) -> dict[TupleId, frozenset[int]]:
        """Physical replica set of every stored tuple, in one storage walk.

        The bulk counterpart of :meth:`tuple_locations`: the elastic resize
        needs the location of *every* tuple (pinning + migration planning),
        and per-tuple probing would rescan each partition's storage once per
        tuple instead of once in total.
        """
        locations: dict[TupleId, set[int]] = {}
        for partition, database in enumerate(self.partition_databases):
            for table in self.schema.tables:
                storage = database.storage(table.name)
                for key, _row in storage.rows():
                    locations.setdefault(TupleId(table.name, key), set()).add(partition)
        return {
            tuple_id: frozenset(partitions)
            for tuple_id, partitions in locations.items()
        }

    # -- tuple-level operations (live migration) ---------------------------------------
    def has_tuple(self, tuple_id: TupleId, partition: int) -> bool:
        """Whether ``partition`` physically stores ``tuple_id``."""
        return tuple_id.key in self.database(partition).storage(tuple_id.table)

    def tuple_locations(self, tuple_id: TupleId) -> frozenset[int]:
        """Every partition physically storing ``tuple_id`` (replicas included)."""
        return frozenset(
            partition
            for partition in range(self.num_partitions)
            if self.has_tuple(tuple_id, partition)
        )

    def copy_tuple(self, tuple_id: TupleId, source: int, target: int) -> int | None:
        """Copy one tuple's row from ``source`` to ``target``.

        Returns the bytes written (0 when the target already held a replica —
        the operation is idempotent), or ``None`` when the source no longer
        has the row (e.g. it was deleted by live traffic mid-migration).
        """
        row = self.database(source).get_row(tuple_id)
        if row is None:
            return None
        target_database = self.database(target)
        if tuple_id.key in target_database.storage(tuple_id.table):
            return 0
        target_database.insert_row(tuple_id.table, dict(row))
        return target_database.tuple_byte_size(tuple_id)

    def drop_tuple(self, tuple_id: TupleId, partition: int) -> bool:
        """Delete ``tuple_id``'s replica on ``partition``; False when absent."""
        storage = self.database(partition).storage(tuple_id.table)
        if tuple_id.key not in storage:
            return False
        storage.delete(tuple_id.key)
        return True

    def row_counts(self) -> list[int]:
        """Number of rows stored on each partition (replicas counted everywhere)."""
        return [db.row_count() for db in self.partition_databases]

    def total_rows(self) -> int:
        """Total stored rows across the cluster (including replicas)."""
        return sum(self.row_counts())

    def imbalance(self) -> float:
        """Max/mean ratio of per-partition row counts (1.0 = perfectly even)."""
        counts = self.row_counts()
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 1.0
        return max(counts) / mean
