"""A shared-nothing cluster of partition databases."""

from __future__ import annotations

from repro.catalog.schema import Schema
from repro.catalog.tuples import TupleId
from repro.core.strategies import PartitioningStrategy
from repro.engine.database import Database


class Cluster:
    """One in-memory :class:`Database` per partition."""

    def __init__(self, schema: Schema, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.schema = schema
        self.num_partitions = num_partitions
        self.partition_databases = [Database(schema) for _ in range(num_partitions)]

    @classmethod
    def from_database(cls, database: Database, strategy: PartitioningStrategy) -> "Cluster":
        """Materialise a cluster by placing every tuple of ``database`` per ``strategy``.

        This is the physical "data migration" step: each tuple is copied to
        every partition the strategy assigns it to (replicated tuples appear
        on several partitions).
        """
        cluster = cls(database.schema, strategy.num_partitions)
        for table in database.schema.tables:
            storage = database.storage(table.name)
            for key, row in storage.rows():
                placements = strategy.partitions_for_tuple(TupleId(table.name, key), row)
                for partition in placements:
                    cluster.partition_databases[partition].insert_row(table.name, dict(row))
        return cluster

    def database(self, partition: int) -> Database:
        """The database instance backing ``partition``."""
        if not 0 <= partition < self.num_partitions:
            raise IndexError(f"partition {partition} out of range")
        return self.partition_databases[partition]

    def row_counts(self) -> list[int]:
        """Number of rows stored on each partition (replicas counted everywhere)."""
        return [db.row_count() for db in self.partition_databases]

    def total_rows(self) -> int:
        """Total stored rows across the cluster (including replicas)."""
        return sum(self.row_counts())

    def imbalance(self) -> float:
        """Max/mean ratio of per-partition row counts (1.0 = perfectly even)."""
        counts = self.row_counts()
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 1.0
        return max(counts) / mean
