"""Seeded fault injection for the distributed layer.

A :class:`FaultPlan` declares, up front and deterministically, everything
that will go wrong during a run: partitions that crash (and recover) at
chosen points of a logical clock, a message-loss/delay process, and
coordinator deaths pinned to specific migration-journal records.  Building
the plan yields a :class:`FaultInjector` whose randomness comes from
:meth:`repro.utils.rng.SeededRng.fork`, so a scenario driven single-threaded
replays byte-identically for a fixed seed — the property the resilience
experiment and the chaos-smoke CI job assert.

The clock is transaction-granular: the coordinator advances it once per
attempted transaction, and crash windows are expressed in those ticks.
Message faults are drawn per planned message in routing order, *before* any
statement executes, which models a 2PC prepare-phase failure: an aborted
transaction has zero side effects (the toy engine has no undo log, so the
injector refuses to let a doomed transaction touch storage at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import get_telemetry
from repro.utils.rng import SeededRng


class FaultError(RuntimeError):
    """Base class of every injected fault."""


class NodeUnavailable(FaultError):
    """A participant partition is crashed for the duration of this attempt."""

    def __init__(self, partition: int) -> None:
        super().__init__(f"partition {partition} is unavailable")
        self.partition = partition


class MessageDropped(FaultError):
    """A 2PC message was lost; the transaction aborts."""


class CoordinatorDeath(FaultError):
    """The migration coordinator process died at a chosen journal record.

    The journal bytes written so far survive; the harness resumes a fresh
    migrator from them (or cancels), which is exactly the crash-recovery
    path the journaled state machine exists for.
    """

    def __init__(self, state: str, record: int) -> None:
        super().__init__(f"coordinator killed at journal record {record} (state {state!r})")
        self.state = state
        self.record = record


@dataclass(frozen=True)
class NodeCrash:
    """One partition outage: down at ``at_tick`` for ``duration`` ticks."""

    partition: int
    at_tick: int
    duration: int

    def covers(self, tick: int) -> bool:
        """Whether the partition is down at ``tick``."""
        return self.at_tick <= tick < self.at_tick + self.duration


@dataclass(frozen=True)
class CoordinatorKill:
    """Kill the migrator when it persists its ``at_record``-th journal record."""

    at_record: int


@dataclass(frozen=True)
class WorkerKill:
    """``SIGKILL`` a real partition worker process at a seeded commit tick.

    Unlike :class:`NodeCrash` — a *simulated* outage window on the logical
    clock — this one kills an actual OS process owning a SQLite file.  The
    trigger is the cluster-wide committed-transaction count, which is a
    deterministic point of the workload even though wall-clock thread
    interleaving varies: the ``at_commit``-th commit fires the kill no
    matter which client thread lands it.
    """

    partition: int
    at_commit: int


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong, declared up front.

    ``message_drop_rate`` / ``message_delay_rate`` are per-message Bernoulli
    probabilities; a delayed message adds ``message_delay`` to the
    transaction's latency proxy instead of failing it.
    """

    seed: int = 0
    node_crashes: tuple[NodeCrash, ...] = ()
    coordinator_kills: tuple[CoordinatorKill, ...] = ()
    worker_kills: tuple[WorkerKill, ...] = ()
    message_drop_rate: float = 0.0
    message_delay_rate: float = 0.0
    message_delay: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.message_drop_rate < 1.0:
            raise ValueError("message_drop_rate must be in [0, 1)")
        if not 0.0 <= self.message_delay_rate < 1.0:
            raise ValueError("message_delay_rate must be in [0, 1)")

    def build(self) -> "FaultInjector":
        """Materialise the plan as a live injector."""
        return FaultInjector(self)


@dataclass
class FaultStatistics:
    """What the injector actually did (for reports and assertions)."""

    ticks: int = 0
    messages_dropped: int = 0
    messages_delayed: int = 0
    unavailability_hits: int = 0
    coordinator_deaths: int = 0
    workers_killed: int = 0


class FaultInjector:
    """Live fault source driven by a :class:`FaultPlan`.

    All randomness comes from one forked sub-stream of the plan's seed, so
    the sequence of fault outcomes is a pure function of (seed, call order).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.tick = 0
        self.statistics = FaultStatistics()
        self._rng = SeededRng(plan.seed).fork("faults")
        self._pending_kills = {kill.at_record for kill in plan.coordinator_kills}
        self._fired_kills: set[int] = set()
        self._pending_worker_kills = sorted(
            plan.worker_kills, key=lambda kill: (kill.at_commit, kill.partition)
        )
        self._injected = get_telemetry().metrics.counter(
            "faults.injected", "faults fired by kind", labels=("kind",)
        )

    # -- clock -------------------------------------------------------------------------
    def advance(self, ticks: int = 1) -> None:
        """Advance the logical clock (one tick per attempted transaction)."""
        self.tick += ticks
        self.statistics.ticks += ticks

    # -- node availability -------------------------------------------------------------
    def node_available(self, partition: int) -> bool:
        """Whether ``partition`` is up at the current tick."""
        for crash in self.plan.node_crashes:
            if crash.partition == partition and crash.covers(self.tick):
                return False
        return True

    def crashed_partitions(self) -> frozenset[int]:
        """Partitions down at the current tick."""
        return frozenset(
            crash.partition
            for crash in self.plan.node_crashes
            if crash.covers(self.tick)
        )

    def check_available(self, partition: int) -> None:
        """Raise :class:`NodeUnavailable` when ``partition`` is down."""
        if not self.node_available(partition):
            self.statistics.unavailability_hits += 1
            self._injected.inc(kind="node_unavailable")
            raise NodeUnavailable(partition)

    # -- messages ----------------------------------------------------------------------
    def deliver(self) -> float:
        """Attempt one message delivery; returns the injected delay.

        Raises :class:`MessageDropped` on loss.  One Bernoulli draw per
        configured fault process, in a fixed order, keeps the stream
        deterministic for a fixed call sequence.
        """
        plan = self.plan
        delay = 0.0
        if plan.message_drop_rate > 0.0 and self._rng.bernoulli(plan.message_drop_rate):
            self.statistics.messages_dropped += 1
            self._injected.inc(kind="message_dropped")
            raise MessageDropped("message lost")
        if plan.message_delay_rate > 0.0 and self._rng.bernoulli(plan.message_delay_rate):
            self.statistics.messages_delayed += 1
            self._injected.inc(kind="message_delayed")
            delay = plan.message_delay
        return delay

    # -- worker kills ------------------------------------------------------------------
    def due_worker_kills(self, commits: int) -> list[WorkerKill]:
        """Pop every :class:`WorkerKill` whose commit tick has been reached.

        Called by the closed-loop driver's commit hook with the cluster-wide
        commit count; each kill fires exactly once.  The caller performs the
        actual ``SIGKILL`` (the injector has no process handles) —
        :meth:`repro.storage.cluster.SqliteStorageCluster.kill_worker` is
        the intended target.
        """
        due: list[WorkerKill] = []
        while self._pending_worker_kills and self._pending_worker_kills[0].at_commit <= commits:
            due.append(self._pending_worker_kills.pop(0))
        for kill in due:
            self.statistics.workers_killed += 1
            self._injected.inc(kind="worker_killed")
        return due

    # -- coordinator death -------------------------------------------------------------
    def on_journal_record(self, state: str, record: int) -> None:
        """Called by the journaled migrator after persisting record ``record``.

        Fires a pending :class:`CoordinatorKill` exactly once; the journal
        bytes for ``record`` are already durable when this raises, so resume
        picks up from the state the exception names.
        """
        if record in self._pending_kills and record not in self._fired_kills:
            self._fired_kills.add(record)
            self.statistics.coordinator_deaths += 1
            self._injected.inc(kind="coordinator_death")
            raise CoordinatorDeath(state, record)
