"""Analytic throughput/latency simulator.

The paper's throughput experiments (Figure 1 and Figure 6) ran on a MySQL
cluster we do not have; this simulator replaces the hardware with a small
capacity model whose inputs come from the rest of the library:

* the per-transaction statement count and the *fraction of distributed
  transactions* are measured by the cost model / coordinator for the chosen
  partitioning strategy;
* the per-node CPU costs come from :class:`~repro.distributed.node.NodeCostModel`;
* optional *contention groups* model row-level lock serialisation (for TPC-C:
  one group per warehouse, since nearly every transaction updates its
  warehouse's district rows).

Throughput is the minimum of three bounds — CPU capacity, lock contention,
and the closed-loop client population — and latency follows from the closed
loop (``latency = clients / throughput`` when saturated).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.node import NodeCostModel


@dataclass
class SimulationParameters:
    """Inputs describing one simulated configuration."""

    num_servers: int
    num_clients: int
    statements_per_transaction: float
    #: fraction of transactions that touch more than one server.
    distributed_fraction: float = 0.0
    #: mean number of participants of a distributed transaction.
    mean_participants: float = 2.0
    #: number of independent serialisation groups (e.g. TPC-C warehouses);
    #: None disables the contention bound.
    contention_groups: int | None = None
    #: fraction of transactions that update their serialisation group's hot rows.
    contention_fraction: float = 1.0
    #: lock hold time of a local transaction on its group's hot rows (ms).
    lock_hold_ms: float = 5.0
    #: additional lock hold time when the holding transaction is distributed (ms);
    #: locks stay held across the two-phase-commit rounds.
    distributed_lock_hold_ms: float = 150.0
    node: NodeCostModel = field(default_factory=NodeCostModel)

    def __post_init__(self) -> None:
        if self.num_servers <= 0:
            raise ValueError("num_servers must be positive")
        if self.num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if not 0.0 <= self.distributed_fraction <= 1.0:
            raise ValueError("distributed_fraction must be in [0, 1]")


@dataclass
class SimulationResult:
    """Output of one simulation."""

    throughput_tps: float
    latency_ms: float
    bottleneck: str
    cpu_bound_tps: float
    contention_bound_tps: float | None
    client_bound_tps: float

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.throughput_tps:10.1f} tps, {self.latency_ms:6.2f} ms latency "
            f"(bottleneck: {self.bottleneck})"
        )


class ThroughputSimulator:
    """Turns workload + strategy characteristics into throughput and latency."""

    def simulate(self, parameters: SimulationParameters) -> SimulationResult:
        """Simulate one configuration."""
        node = parameters.node
        statements = parameters.statements_per_transaction
        distributed = parameters.distributed_fraction
        participants = max(2.0, parameters.mean_participants)

        local_work = node.local_transaction_work(statements)
        distributed_work = node.distributed_transaction_work(statements, round(participants))
        mean_work = (1.0 - distributed) * local_work + distributed * distributed_work
        cpu_bound = parameters.num_servers / (mean_work / 1000.0)

        contention_bound: float | None = None
        if parameters.contention_groups:
            hold = (
                (1.0 - distributed) * parameters.lock_hold_ms
                + distributed * parameters.distributed_lock_hold_ms
            )
            per_group = 1000.0 / hold
            contention_bound = (
                parameters.contention_groups * per_group / max(parameters.contention_fraction, 1e-9)
            )

        local_latency = node.local_latency(statements)
        distributed_latency = node.distributed_latency(statements, round(participants))
        unloaded_latency = (1.0 - distributed) * local_latency + distributed * distributed_latency
        client_bound = parameters.num_clients / (unloaded_latency / 1000.0)

        bounds = {"cpu": cpu_bound, "clients": client_bound}
        if contention_bound is not None:
            bounds["contention"] = contention_bound
        bottleneck = min(bounds, key=lambda name: bounds[name])
        throughput = bounds[bottleneck]
        # Closed loop: when the system is the bottleneck, latency stretches to
        # clients/throughput; when the clients are the bottleneck, latency is
        # the unloaded latency.
        latency = max(unloaded_latency, parameters.num_clients / throughput * 1000.0)
        return SimulationResult(
            throughput_tps=throughput,
            latency_ms=latency,
            bottleneck=bottleneck,
            cpu_bound_tps=cpu_bound,
            contention_bound_tps=contention_bound,
            client_bound_tps=client_bound,
        )

    # -- convenience wrappers -------------------------------------------------------------
    def simulate_simplecount(
        self,
        num_servers: int,
        distributed: bool,
        num_clients: int = 150,
        node: NodeCostModel | None = None,
    ) -> SimulationResult:
        """Figure 1 configuration: two single-row reads per transaction.

        ``distributed=False`` co-locates both rows (single-partition
        transactions); ``distributed=True`` forces the two rows onto different
        servers whenever more than one server exists.
        """
        distributed_fraction = 0.0 if not distributed or num_servers == 1 else 1.0
        parameters = SimulationParameters(
            num_servers=num_servers,
            num_clients=num_clients,
            statements_per_transaction=2.0,
            distributed_fraction=distributed_fraction,
            mean_participants=2.0,
            node=node or NodeCostModel(),
        )
        return self.simulate(parameters)

    def simulate_tpcc(
        self,
        num_servers: int,
        total_warehouses: int,
        distributed_fraction: float,
        num_clients: int | None = None,
        statements_per_transaction: float = 32.0,
        node: NodeCostModel | None = None,
        lock_hold_ms: float = 5.0,
        distributed_lock_hold_ms: float = 150.0,
    ) -> SimulationResult:
        """Figure 6 configuration: TPC-C with warehouse-level contention."""
        node = node or NodeCostModel(statement_service_ms=0.22, twopc_participant_ms=0.5)
        parameters = SimulationParameters(
            num_servers=num_servers,
            num_clients=num_clients if num_clients is not None else 32 * num_servers,
            statements_per_transaction=statements_per_transaction,
            distributed_fraction=distributed_fraction,
            mean_participants=2.0,
            contention_groups=total_warehouses,
            contention_fraction=1.0,
            lock_hold_ms=lock_hold_ms,
            distributed_lock_hold_ms=distributed_lock_hold_ms,
            node=node,
        )
        return self.simulate(parameters)
