"""Weighted undirected graph used by the partitioner.

Two representations share this module:

* :class:`Graph` — the *mutable construction API*.  Node ids are dense
  integers, node weights are floats, and adjacency is a list of
  ``dict[int, float]`` so that edge weights accumulate when the same pair is
  connected by many transactions.  ``num_edges`` and ``total_node_weight``
  are maintained incrementally so repeated size queries are O(1).
* :class:`CSRGraph` — the *frozen compute representation*.  ``Graph.freeze()``
  compiles the adjacency dicts into compressed-sparse-row arrays (``indptr``,
  ``indices``, ``edge_weights`` plus ``node_weights``) stored in the active
  array backend (:mod:`repro.graph.backend`): ``float64``/``int64`` numpy
  arrays when numpy is available, flat Python lists otherwise.  Every hot
  partitioner phase (matching, region growing, FM refinement) runs on the CSR
  form: bulk kernels (``subview`` extraction, coarsening scatter-accumulate,
  gain initialisation) are vectorised under numpy, while inherently
  sequential kernels bind the cached :meth:`CSRGraph.lists` views and index
  directly.  Both backends produce bit-identical results for a fixed seed.

Lifecycle: build with :class:`Graph`, call :meth:`Graph.freeze` once, then
hand the :class:`CSRGraph` to the partitioner.  A ``CSRGraph`` is immutable
by convention — none of its methods mutate it, and the partitioner relies on
that to share one frozen graph across recursive-bisection branches and
repeated ``partition`` calls.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graph import backend


class Graph:
    """A weighted undirected graph with dense integer node ids."""

    def __init__(self) -> None:
        self.node_weights: list[float] = []
        self.adjacency: list[dict[int, float]] = []
        self._num_edges = 0
        self._total_node_weight = 0.0

    # -- construction --------------------------------------------------------------
    def add_node(self, weight: float = 1.0) -> int:
        """Add a node and return its id."""
        if weight < 0:
            raise ValueError("node weight must be non-negative")
        self.node_weights.append(weight)
        self.adjacency.append({})
        self._total_node_weight += weight
        return len(self.node_weights) - 1

    def add_nodes(self, count: int, weight: float = 1.0) -> list[int]:
        """Add ``count`` nodes with the same weight, returning their ids."""
        return [self.add_node(weight) for _ in range(count)]

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or accumulate onto) the undirected edge ``{u, v}``.

        Self-loops are ignored: they can never be cut so they carry no
        information for partitioning.
        """
        if u == v:
            return
        if weight < 0:
            raise ValueError("edge weight must be non-negative")
        self._check_node(u)
        self._check_node(v)
        row = self.adjacency[u]
        if v in row:
            row[v] += weight
            self.adjacency[v][u] += weight
        else:
            row[v] = weight
            self.adjacency[v][u] = weight
            self._num_edges += 1

    def add_weighted_edges(self, edges: Iterable[tuple[tuple[int, int], float]]) -> None:
        """Bulk-accumulate pre-deduplicated ``((u, v), weight)`` pairs.

        The batched counterpart of :meth:`add_edge` used by the trace->graph
        builder: callers accumulate duplicate pairs externally (one flat dict
        instead of two per-node dict probes per occurrence) and insert each
        surviving edge here exactly once.
        """
        adjacency = self.adjacency
        for (u, v), weight in edges:
            if u == v:
                continue
            if weight < 0:
                raise ValueError("edge weight must be non-negative")
            row = adjacency[u]
            if v in row:
                row[v] += weight
                adjacency[v][u] += weight
            else:
                row[v] = weight
                adjacency[v][u] = weight
                self._num_edges += 1

    def set_node_weight(self, node: int, weight: float) -> None:
        """Overwrite the weight of ``node``."""
        self._check_node(node)
        if weight < 0:
            raise ValueError("node weight must be non-negative")
        self._total_node_weight += weight - self.node_weights[node]
        self.node_weights[node] = weight

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self.node_weights):
            raise IndexError(f"node {node} does not exist")

    # -- online maintenance -----------------------------------------------------------
    def scale_weights(self, factor: float) -> None:
        """Multiply every node and edge weight by ``factor`` in place.

        This is the exponential-decay primitive of the online graph
        maintainer: one call per ingest epoch ages the whole access history
        without rebuilding the graph.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        node_weights = self.node_weights
        for node in range(len(node_weights)):
            node_weights[node] *= factor
        self._total_node_weight *= factor
        for row in self.adjacency:
            for neighbor in row:
                row[neighbor] *= factor

    def prune_edges(self, min_weight: float) -> int:
        """Remove edges lighter than ``min_weight``; return how many were dropped.

        Used together with :meth:`scale_weights` to keep the online graph
        bounded: decayed-out co-access pairs disappear instead of lingering
        as near-zero-weight edges.  Nodes are never removed (ids stay dense
        and stable); an isolated node simply keeps decaying.
        """
        removed = 0
        adjacency = self.adjacency
        for u, row in enumerate(adjacency):
            dead = [v for v, weight in row.items() if weight < min_weight and v > u]
            for v in dead:
                del row[v]
                del adjacency[v][u]
            removed += len(dead)
        self._num_edges -= removed
        return removed

    # -- queries --------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.node_weights)

    @property
    def num_edges(self) -> int:
        """Number of distinct undirected edges (O(1), maintained incrementally)."""
        return self._num_edges

    def neighbors(self, node: int) -> dict[int, float]:
        """Mapping of neighbour id -> edge weight (live dict; do not mutate)."""
        return self.adjacency[node]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of the edge ``{u, v}`` (0 when absent)."""
        return self.adjacency[u].get(v, 0.0)

    def degree(self, node: int) -> int:
        """Number of neighbours of ``node``."""
        return len(self.adjacency[node])

    def total_node_weight(self) -> float:
        """Sum of all node weights (O(1), maintained incrementally)."""
        return self._total_node_weight

    def total_edge_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(sum(neighbors.values()) for neighbors in self.adjacency) / 2.0

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over edges as ``(u, v, weight)`` with ``u < v``."""
        for u, neighbors in enumerate(self.adjacency):
            for v, weight in neighbors.items():
                if u < v:
                    yield u, v, weight

    def nodes(self) -> range:
        """Iterable of node ids."""
        return range(self.num_nodes)

    # -- derived graphs ---------------------------------------------------------------
    def freeze(self) -> "CSRGraph":
        """Compile the graph into an immutable :class:`CSRGraph`.

        Neighbour order in the CSR arrays preserves the adjacency-dict
        insertion order, so freezing is a pure representation change: every
        deterministic algorithm visits neighbours in the same order on either
        form.
        """
        indptr = [0] * (self.num_nodes + 1)
        indices: list[int] = []
        edge_weights: list[float] = []
        for node, neighbors in enumerate(self.adjacency):
            indices.extend(neighbors.keys())
            edge_weights.extend(neighbors.values())
            indptr[node + 1] = len(indices)
        return CSRGraph(indptr, indices, edge_weights, list(self.node_weights))

    def subgraph(self, nodes: Iterable[int]) -> tuple["Graph", list[int]]:
        """Return the induced subgraph and the list mapping new ids -> old ids."""
        node_list = list(nodes)
        old_to_new = {old: new for new, old in enumerate(node_list)}
        sub = Graph()
        for old in node_list:
            sub.add_node(self.node_weights[old])
        for new_u, old_u in enumerate(node_list):
            for old_v, weight in self.adjacency[old_u].items():
                new_v = old_to_new.get(old_v)
                if new_v is not None and new_u < new_v:
                    sub.add_edge(new_u, new_v, weight)
        return sub, node_list

    def copy(self) -> "Graph":
        """Deep copy of the graph."""
        clone = Graph()
        clone.node_weights = list(self.node_weights)
        clone.adjacency = [dict(neighbors) for neighbors in self.adjacency]
        clone._num_edges = self._num_edges
        clone._total_node_weight = self._total_node_weight
        return clone

    def connected_components(self) -> list[list[int]]:
        """Connected components as lists of node ids (iterative BFS)."""
        seen = [False] * self.num_nodes
        components: list[list[int]] = []
        for start in range(self.num_nodes):
            if seen[start]:
                continue
            component = [start]
            seen[start] = True
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in self.adjacency[node]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        component.append(neighbor)
                        frontier.append(neighbor)
            components.append(component)
        return components

    def __repr__(self) -> str:
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges})"


class CSRGraph:
    """Frozen compressed-sparse-row view of a :class:`Graph`.

    ``indices[indptr[u]:indptr[u + 1]]`` are the neighbours of ``u`` and
    ``edge_weights`` holds the matching weights, so each undirected edge is
    stored twice (once per endpoint).  The arrays live in the active array
    backend (numpy ndarrays or flat Python lists — see
    :mod:`repro.graph.backend`).  Vectorised kernels operate on the arrays
    directly; sequential hot loops bind the plain-list views returned by
    :meth:`lists` and index those, which is both faster than element-wise
    ndarray access and guarantees identical arithmetic on either backend.
    """

    __slots__ = (
        "indptr",
        "indices",
        "edge_weights",
        "node_weights",
        "_total_node_weight",
        "_total_edge_weight",
        "_weighted_degrees",
        "_lists",
        "_hierarchy",
    )

    def __init__(
        self,
        indptr,
        indices,
        edge_weights,
        node_weights,
        weighted_degrees: list[float] | None = None,
    ) -> None:
        self.indptr = backend.as_index_array(indptr)
        self.indices = backend.as_index_array(indices)
        self.edge_weights = backend.as_weight_array(edge_weights)
        self.node_weights = backend.as_weight_array(node_weights)
        self._total_node_weight: float | None = None
        self._total_edge_weight: float | None = None
        #: producers that already know each row's weight sum (coarsening,
        #: subview extraction) pass it in to skip the lazy recomputation.
        self._weighted_degrees = weighted_degrees
        self._lists: tuple[list[int], list[int], list[float], list[float]] | None = None
        #: per-seed memoised coarsening chains (see ``coarsen.coarsen_chain``)
        #: — derived data, consistent with the immutable arrays by definition.
        self._hierarchy: dict | None = None

    def lists(self) -> tuple[list[int], list[int], list[float], list[float]]:
        """``(indptr, indices, edge_weights, node_weights)`` as plain lists.

        Under the list backend this is the stored arrays themselves (free);
        under numpy the conversion happens once and is cached.  Sequential
        kernels (matching, FM move loops, greedy growing) run on these so
        that element access is cheap and float arithmetic is byte-identical
        across backends.  The views are read-only by convention.
        """
        cached = self._lists
        if cached is None:
            cached = (
                backend.to_list(self.indptr),
                backend.to_list(self.indices),
                backend.to_list(self.edge_weights),
                backend.to_list(self.node_weights),
            )
            self._lists = cached
        return cached

    @property
    def is_numpy(self) -> bool:
        """True when this graph's arrays are numpy ndarrays."""
        return not isinstance(self.indices, list)

    # -- queries --------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.node_weights)

    @property
    def num_edges(self) -> int:
        """Number of distinct undirected edges."""
        return len(self.indices) // 2

    def nodes(self) -> range:
        """Iterable of node ids."""
        return range(len(self.node_weights))

    def degree(self, node: int) -> int:
        """Number of neighbours of ``node``."""
        indptr = self.lists()[0]
        return indptr[node + 1] - indptr[node]

    def neighbors(self, node: int) -> dict[int, float]:
        """Neighbour id -> edge weight as a fresh dict (compatibility shim).

        Hot loops should slice ``indices``/``edge_weights`` directly instead.
        """
        indptr, indices, edge_weights, _ = self.lists()
        start, end = indptr[node], indptr[node + 1]
        return dict(zip(indices[start:end], edge_weights[start:end]))

    def neighbor_slice(self, node: int) -> tuple[int, int]:
        """The ``[start, end)`` range of ``node``'s entries in the flat arrays."""
        indptr = self.lists()[0]
        return indptr[node], indptr[node + 1]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of the edge ``{u, v}`` (0 when absent; linear in degree(u))."""
        indptr, indices, edge_weights, _ = self.lists()
        for i in range(indptr[u], indptr[u + 1]):
            if indices[i] == v:
                return edge_weights[i]
        return 0.0

    def total_node_weight(self) -> float:
        """Sum of all node weights (computed once, then cached)."""
        if self._total_node_weight is None:
            self._total_node_weight = float(sum(self.lists()[3]))
        return self._total_node_weight

    def total_edge_weight(self) -> float:
        """Sum of all edge weights (computed once, then cached)."""
        if self._total_edge_weight is None:
            self._total_edge_weight = float(sum(self.lists()[2])) / 2.0
        return self._total_edge_weight

    def weighted_degrees(self) -> list[float]:
        """Per-node sum of incident edge weights (computed once, then cached).

        The FM refiner uses this to derive move gains from the maintained
        external-weight array: ``gain(v) = 2 * external(v) - weighted_degree(v)``.
        Always a plain list — it is consumed element-wise by scalar loops.
        Under numpy the per-row sums come from an order-preserving
        ``bincount`` (sequential accumulation in entry order), which is
        bit-identical to the scalar left-to-right sums.
        """
        cached = self._weighted_degrees
        if cached is None:
            num_nodes = len(self.node_weights)
            if self.is_numpy and len(self.indices) >= 2048:
                np = backend.numpy
                rows = np.repeat(np.arange(num_nodes), np.diff(self.indptr))
                cached = np.bincount(
                    rows, weights=self.edge_weights, minlength=num_nodes
                ).tolist()
            else:
                indptr, _, edge_weights, _ = self.lists()
                cached = [
                    sum(edge_weights[indptr[node] : indptr[node + 1]])
                    for node in range(num_nodes)
                ]
            self._weighted_degrees = cached
        return cached

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over edges as ``(u, v, weight)`` with ``u < v``."""
        indptr, indices, edge_weights, _ = self.lists()
        for u in range(len(indptr) - 1):
            for i in range(indptr[u], indptr[u + 1]):
                v = indices[i]
                if u < v:
                    yield u, v, edge_weights[i]

    # -- derived graphs ---------------------------------------------------------------
    def subview(self, nodes: Iterable[int]) -> tuple["CSRGraph", list[int]]:
        """Induced subgraph as a new CSR plus the new-id -> old-id mapping.

        This is the CSR replacement for :meth:`Graph.subgraph`: a single
        index-remapped extraction pass with a flat remap table, no per-node
        dicts.  Under numpy the whole extraction is one vectorised gather
        (row-visit entry order is preserved, so results match the scalar
        path bit for bit); small extractions take the scalar loop, where
        the ndarray round-trips would cost more than they save.
        """
        node_list = list(nodes)
        if self.is_numpy and len(node_list) >= 512:
            return self._subview_numpy(node_list), node_list
        indptr, indices, edge_weights, node_weights_list = self.lists()
        old_to_new = [-1] * len(self.node_weights)
        for new, old in enumerate(node_list):
            old_to_new[old] = new
        sub_indptr = [0] * (len(node_list) + 1)
        sub_indices: list[int] = []
        sub_weights: list[float] = []
        src_indptr, src_indices, src_weights = indptr, indices, edge_weights
        append_index, append_weight = sub_indices.append, sub_weights.append
        weighted_degrees = [0.0] * len(node_list)
        for new, old in enumerate(node_list):
            start, end = src_indptr[old], src_indptr[old + 1]
            row_weight = 0.0
            for neighbor, weight in zip(src_indices[start:end], src_weights[start:end]):
                mapped = old_to_new[neighbor]
                if mapped >= 0:
                    append_index(mapped)
                    append_weight(weight)
                    row_weight += weight
            weighted_degrees[new] = row_weight
            sub_indptr[new + 1] = len(sub_indices)
        node_weights = [node_weights_list[old] for old in node_list]
        return (
            CSRGraph(sub_indptr, sub_indices, sub_weights, node_weights, weighted_degrees),
            node_list,
        )

    def _subview_numpy(self, node_list: list[int]) -> "CSRGraph":
        """Vectorised induced-subgraph extraction (numpy-backed graphs only).

        Entries are gathered in row-visit order (``node_list`` order, original
        CSR order within each row) and the per-row weight sums accumulate in
        that same order, so the result is bit-identical to the scalar path.
        """
        np = backend.numpy
        indptr, indices = self.indptr, self.indices
        num_nodes = len(self.node_weights)
        selected = np.asarray(node_list, dtype=np.int64)
        num_selected = len(node_list)
        remap = np.full(num_nodes, -1, dtype=np.int64)
        remap[selected] = np.arange(num_selected, dtype=np.int64)
        starts = indptr[selected]
        degrees = indptr[selected + 1] - starts
        total = int(degrees.sum())
        # Gather each selected row's entry positions contiguously.
        offsets = np.cumsum(degrees) - degrees
        positions = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, degrees)
            + np.repeat(starts, degrees)
        )
        mapped = remap[indices[positions]]
        keep = mapped >= 0
        kept_rows = np.repeat(np.arange(num_selected, dtype=np.int64), degrees)[keep]
        kept_cols = mapped[keep]
        kept_weights = self.edge_weights[positions][keep]
        sub_indptr = np.zeros(num_selected + 1, dtype=np.int64)
        np.cumsum(np.bincount(kept_rows, minlength=num_selected), out=sub_indptr[1:])
        weighted_degrees = np.bincount(
            kept_rows, weights=kept_weights, minlength=num_selected
        ).tolist()
        return CSRGraph(
            sub_indptr, kept_cols, kept_weights, self.node_weights[selected], weighted_degrees
        )

    def thaw(self) -> Graph:
        """Materialise a mutable :class:`Graph` with identical structure."""
        graph = Graph()
        for weight in self.lists()[3]:
            graph.add_node(weight)
        for u, v, weight in self.edges():
            graph.add_edge(u, v, weight)
        return graph

    def __repr__(self) -> str:
        return f"CSRGraph(nodes={self.num_nodes}, edges={self.num_edges})"


def as_csr(graph: "Graph | CSRGraph") -> CSRGraph:
    """Return ``graph`` as a :class:`CSRGraph`, freezing mutable graphs."""
    if isinstance(graph, CSRGraph):
        return graph
    return graph.freeze()
