"""Weighted undirected graph used by the partitioner.

The structure is deliberately simple: node ids are dense integers, node
weights are floats, and adjacency is a list of ``dict[int, float]`` so that
edge weights accumulate when the same pair is connected by many transactions.
All partitioner phases (matching, region growing, FM refinement) only need
neighbour iteration and O(1) edge-weight lookup, which this provides.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Graph:
    """A weighted undirected graph with dense integer node ids."""

    def __init__(self) -> None:
        self.node_weights: list[float] = []
        self.adjacency: list[dict[int, float]] = []

    # -- construction --------------------------------------------------------------
    def add_node(self, weight: float = 1.0) -> int:
        """Add a node and return its id."""
        if weight < 0:
            raise ValueError("node weight must be non-negative")
        self.node_weights.append(weight)
        self.adjacency.append({})
        return len(self.node_weights) - 1

    def add_nodes(self, count: int, weight: float = 1.0) -> list[int]:
        """Add ``count`` nodes with the same weight, returning their ids."""
        return [self.add_node(weight) for _ in range(count)]

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or accumulate onto) the undirected edge ``{u, v}``.

        Self-loops are ignored: they can never be cut so they carry no
        information for partitioning.
        """
        if u == v:
            return
        if weight < 0:
            raise ValueError("edge weight must be non-negative")
        self._check_node(u)
        self._check_node(v)
        self.adjacency[u][v] = self.adjacency[u].get(v, 0.0) + weight
        self.adjacency[v][u] = self.adjacency[v].get(u, 0.0) + weight

    def set_node_weight(self, node: int, weight: float) -> None:
        """Overwrite the weight of ``node``."""
        self._check_node(node)
        if weight < 0:
            raise ValueError("node weight must be non-negative")
        self.node_weights[node] = weight

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self.node_weights):
            raise IndexError(f"node {node} does not exist")

    # -- queries --------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.node_weights)

    @property
    def num_edges(self) -> int:
        """Number of distinct undirected edges."""
        return sum(len(neighbors) for neighbors in self.adjacency) // 2

    def neighbors(self, node: int) -> dict[int, float]:
        """Mapping of neighbour id -> edge weight (live dict; do not mutate)."""
        return self.adjacency[node]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of the edge ``{u, v}`` (0 when absent)."""
        return self.adjacency[u].get(v, 0.0)

    def degree(self, node: int) -> int:
        """Number of neighbours of ``node``."""
        return len(self.adjacency[node])

    def total_node_weight(self) -> float:
        """Sum of all node weights."""
        return sum(self.node_weights)

    def total_edge_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(sum(neighbors.values()) for neighbors in self.adjacency) / 2.0

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over edges as ``(u, v, weight)`` with ``u < v``."""
        for u, neighbors in enumerate(self.adjacency):
            for v, weight in neighbors.items():
                if u < v:
                    yield u, v, weight

    def nodes(self) -> range:
        """Iterable of node ids."""
        return range(self.num_nodes)

    # -- derived graphs ---------------------------------------------------------------
    def subgraph(self, nodes: Iterable[int]) -> tuple["Graph", list[int]]:
        """Return the induced subgraph and the list mapping new ids -> old ids."""
        node_list = list(nodes)
        old_to_new = {old: new for new, old in enumerate(node_list)}
        sub = Graph()
        for old in node_list:
            sub.add_node(self.node_weights[old])
        for new_u, old_u in enumerate(node_list):
            for old_v, weight in self.adjacency[old_u].items():
                new_v = old_to_new.get(old_v)
                if new_v is not None and new_u < new_v:
                    sub.add_edge(new_u, new_v, weight)
        return sub, node_list

    def copy(self) -> "Graph":
        """Deep copy of the graph."""
        clone = Graph()
        clone.node_weights = list(self.node_weights)
        clone.adjacency = [dict(neighbors) for neighbors in self.adjacency]
        return clone

    def connected_components(self) -> list[list[int]]:
        """Connected components as lists of node ids (iterative BFS)."""
        seen = [False] * self.num_nodes
        components: list[list[int]] = []
        for start in range(self.num_nodes):
            if seen[start]:
                continue
            component = [start]
            seen[start] = True
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in self.adjacency[node]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        component.append(neighbor)
                        frontier.append(neighbor)
            components.append(component)
        return components

    def __repr__(self) -> str:
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges})"
