"""Graph representation of a database + workload, and a multilevel min-cut partitioner.

This package implements the heart of Schism:

* :mod:`repro.graph.model` — a weighted undirected graph tuned for the
  partitioner's access patterns: a mutable construction ``Graph`` (adjacency
  maps, float node/edge weights) plus the frozen ``CSRGraph`` compute
  representation every optimisation loop runs on (``Graph.freeze()``);
* :mod:`repro.graph.builder` — turning an access trace into the paper's graph
  (transaction clique edges, star-shaped replication nodes, data-size or
  workload node weights), including the tuple-coalescing heuristic;
* :mod:`repro.graph.coarsen` / :mod:`initial` / :mod:`refine` /
  :mod:`partitioner` — a from-scratch METIS-style multilevel k-way balanced
  min-cut partitioner (heavy-edge matching, greedy graph growing,
  Fiduccia–Mattheyses refinement, recursive bisection).
"""

from repro.graph.builder import GraphBuildOptions, TupleGraph, build_tuple_graph
from repro.graph.model import CSRGraph, Graph, as_csr
from repro.graph.partitioner import GraphPartitioner, PartitionerOptions, cut_weight, partition_graph
from repro.graph.assignment import PartitionAssignment

__all__ = [
    "CSRGraph",
    "Graph",
    "as_csr",
    "GraphBuildOptions",
    "GraphPartitioner",
    "PartitionAssignment",
    "PartitionerOptions",
    "TupleGraph",
    "build_tuple_graph",
    "cut_weight",
    "partition_graph",
]
