"""Graph coarsening via heavy-edge matching, running on the frozen CSR form.

The multilevel scheme repeatedly contracts a maximal matching of the graph,
preferring heavy edges, so that a good partition of the small coarse graph is
also a good partition of the original when projected back (Karypis & Kumar,
1998).  Each call to :func:`coarsen_once` produces one level.

All levels are :class:`~repro.graph.model.CSRGraph` instances.  The matching
itself is inherently sequential (each decision depends on earlier matches),
but under numpy each row's neighbours are pre-sorted by (weight desc,
position asc) with one stable lexsort, so the sequential walk just takes the
first unmatched candidate — provably the same choice as the scalar
max-scan, usually after one probe.  The contraction — building the coarse
CSR — has two implementations: a scalar
scatter-accumulate (one dense ``accumulator``/``marker`` pair reused across
coarse nodes) and a vectorised numpy path (gather entries in member-visit
order, stable-sort by (row, column), ``reduceat`` the duplicate runs).  Both
emit coarse rows in **sorted column order** and accumulate parallel fine
edges in member-visit order, so the two backends produce bit-identical
coarse graphs even for non-integer edge weights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph import backend
from repro.graph.model import CSRGraph, Graph, as_csr
from repro.utils.rng import SeededRng


@dataclass
class CoarseningLevel:
    """One level of the coarsening hierarchy."""

    graph: CSRGraph
    #: fine node id -> coarse node id
    fine_to_coarse: list[int]


def coarsen_once(graph: Graph | CSRGraph, rng: SeededRng) -> CoarseningLevel:
    """Contract a heavy-edge matching of ``graph``, returning the coarser level."""
    csr = as_csr(graph)
    num_nodes = csr.num_nodes
    indptr, indices, edge_weights, node_weights = csr.lists()
    order = list(range(num_nodes))
    rng.shuffle(order)
    match = [-1] * num_nodes
    if csr.is_numpy and len(indices) >= 2048:
        # Vectorised pre-sort: within each row, neighbours ordered by
        # (weight desc, position asc) — one stable lexsort.  The sequential
        # walk then takes the *first unmatched* candidate, which is exactly
        # the scalar scan's "max weight among unmatched, earliest position
        # on ties", so both paths match identically; the walk itself almost
        # always stops after one or two probes.
        np = backend.numpy
        permutation = np.lexsort(
            (-csr.edge_weights, np.repeat(np.arange(num_nodes), np.diff(csr.indptr)))
        )
        ranked = csr.indices[permutation].tolist()
        for node in order:
            if match[node] != -1:
                continue
            best_neighbor = -1
            for i in range(indptr[node], indptr[node + 1]):
                candidate = ranked[i]
                if match[candidate] == -1:
                    best_neighbor = candidate
                    break
            if best_neighbor != -1:
                match[node] = best_neighbor
                match[best_neighbor] = node
            else:
                match[node] = node
    else:
        for node in order:
            if match[node] != -1:
                continue
            best_neighbor = -1
            best_weight = -1.0
            start, end = indptr[node], indptr[node + 1]
            for neighbor, weight in zip(indices[start:end], edge_weights[start:end]):
                if weight > best_weight and match[neighbor] == -1:
                    best_weight = weight
                    best_neighbor = neighbor
            if best_neighbor != -1:
                match[node] = best_neighbor
                match[best_neighbor] = node
            else:
                match[node] = node

    # Assign coarse ids in traversal order; remember each coarse node's fine
    # members so the contraction can emit one coarse row per scan.
    fine_to_coarse = [-1] * num_nodes
    coarse_weights: list[float] = []
    members: list[tuple[int, int]] = []  # (fine, partner-or-fine) per coarse node
    for node in order:
        if fine_to_coarse[node] != -1:
            continue
        partner = match[node]
        coarse_id = len(coarse_weights)
        if partner == node or partner < 0:
            coarse_weights.append(node_weights[node])
            members.append((node, node))
            fine_to_coarse[node] = coarse_id
        else:
            coarse_weights.append(node_weights[node] + node_weights[partner])
            members.append((node, partner))
            fine_to_coarse[node] = coarse_id
            fine_to_coarse[partner] = coarse_id

    if csr.is_numpy and len(indices) >= 2048:
        coarse = _contract_numpy(csr, fine_to_coarse, members, coarse_weights)
    else:
        coarse = _contract_scalar(
            indptr, indices, edge_weights, fine_to_coarse, members, coarse_weights
        )
    return CoarseningLevel(coarse, fine_to_coarse)


def _contract_scalar(
    indptr: list[int],
    indices: list[int],
    edge_weights: list[float],
    fine_to_coarse: list[int],
    members: list[tuple[int, int]],
    coarse_weights: list[float],
) -> CSRGraph:
    """Scatter-accumulate the coarse adjacency straight into CSR arrays.

    The fine->coarse mapping is applied to the whole ``indices`` array first
    so the per-entry loop body stays minimal.  Parallel fine edges accumulate
    in member-visit order and each coarse row is emitted in sorted column
    order — the exact contract the vectorised path reproduces.
    """
    num_coarse = len(coarse_weights)
    coarse_indptr = [0] * (num_coarse + 1)
    coarse_indices: list[int] = []
    coarse_edge_weights: list[float] = []
    accumulator = [0.0] * num_coarse
    marker = [-1] * num_coarse
    touched: list[int] = []
    append_touched = touched.append
    append_index = coarse_indices.append
    append_weight = coarse_edge_weights.append
    mapped = [fine_to_coarse[fine] for fine in indices]
    weighted_degrees = [0.0] * num_coarse
    for coarse_id in range(num_coarse):
        first, second = members[coarse_id]
        fine_members = (first,) if first == second else (first, second)
        for fine in fine_members:
            start, end = indptr[fine], indptr[fine + 1]
            for coarse_neighbor, weight in zip(mapped[start:end], edge_weights[start:end]):
                if coarse_neighbor == coarse_id:
                    continue
                if marker[coarse_neighbor] != coarse_id:
                    marker[coarse_neighbor] = coarse_id
                    accumulator[coarse_neighbor] = weight
                    append_touched(coarse_neighbor)
                else:
                    accumulator[coarse_neighbor] += weight
        touched.sort()
        row_weight = 0.0
        for coarse_neighbor in touched:
            append_index(coarse_neighbor)
            weight = accumulator[coarse_neighbor]
            append_weight(weight)
            row_weight += weight
        weighted_degrees[coarse_id] = row_weight
        touched.clear()
        coarse_indptr[coarse_id + 1] = len(coarse_indices)

    return CSRGraph(
        coarse_indptr, coarse_indices, coarse_edge_weights, coarse_weights, weighted_degrees
    )


def _contract_numpy(
    csr: CSRGraph,
    fine_to_coarse: list[int],
    members: list[tuple[int, int]],
    coarse_weights: list[float],
) -> CSRGraph:
    """Vectorised contraction: gather, stable-sort, reduce duplicate runs.

    Entries are gathered in the scalar path's visit order (coarse id, then
    member, then CSR row order); the stable sort groups duplicates while
    preserving that order, so ``reduceat`` accumulates parallel fine edges
    in exactly the same sequence as the scalar accumulator (runs are at most
    4 entries long, well below numpy's pairwise-summation threshold).
    """
    np = backend.numpy
    num_coarse = len(coarse_weights)
    member_nodes: list[int] = []
    member_coarse: list[int] = []
    for coarse_id, (first, second) in enumerate(members):
        member_nodes.append(first)
        member_coarse.append(coarse_id)
        if second != first:
            member_nodes.append(second)
            member_coarse.append(coarse_id)
    member_arr = np.asarray(member_nodes, dtype=np.int64)
    indptr = csr.indptr
    starts = indptr[member_arr]
    degrees = indptr[member_arr + 1] - starts
    total = int(degrees.sum())
    offsets = np.cumsum(degrees) - degrees
    positions = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, degrees)
        + np.repeat(starts, degrees)
    )
    mapping = np.asarray(fine_to_coarse, dtype=np.int64)
    rows = np.repeat(np.asarray(member_coarse, dtype=np.int64), degrees)
    cols = mapping[csr.indices[positions]]
    weights = csr.edge_weights[positions]
    keep = cols != rows  # intra-coarse-node (contracted) edges vanish
    rows, cols, weights = rows[keep], cols[keep], weights[keep]
    if len(rows) == 0:
        coarse_indptr = np.zeros(num_coarse + 1, dtype=np.int64)
        return CSRGraph(coarse_indptr, rows, weights, coarse_weights, [0.0] * num_coarse)
    key = rows * num_coarse + cols
    permutation = np.argsort(key, kind="stable")
    key = key[permutation]
    run_flags = np.empty(len(key), dtype=bool)
    run_flags[0] = True
    np.not_equal(key[1:], key[:-1], out=run_flags[1:])
    run_starts = np.flatnonzero(run_flags)
    unique_rows = rows[permutation][run_starts]
    unique_cols = cols[permutation][run_starts]
    summed = np.add.reduceat(weights[permutation], run_starts)
    coarse_indptr = np.zeros(num_coarse + 1, dtype=np.int64)
    np.cumsum(np.bincount(unique_rows, minlength=num_coarse), out=coarse_indptr[1:])
    weighted_degrees = np.bincount(
        unique_rows, weights=summed, minlength=num_coarse
    ).tolist()
    return CSRGraph(coarse_indptr, unique_cols, summed, coarse_weights, weighted_degrees)


def coarsen_chain(
    csr: CSRGraph,
    target_nodes: int,
    seed: int,
    min_reduction: float = 0.9,
    max_levels: int = 40,
) -> list[CoarseningLevel]:
    """Memoised coarsening chain of ``csr`` down to ``target_nodes``.

    Unlike :func:`coarsen_to`, the per-level matching order comes from
    *forked* rng sub-streams (``fork((seed, "coarsen", index))``), so the
    chain is a pure function of ``(graph, seed)`` — it does not consume any
    caller rng state.  That makes it cacheable on the frozen graph itself:
    partitioning the same ``CSRGraph`` for several values of k (the
    Figure-5 sweep, the paper's "try several k and keep the best" loop)
    coarsens **once**, with each k using the chain prefix it needs.  Deeper
    targets extend the cached chain in place; shallower ones slice it.

    Returns the shortest prefix whose last level has at most
    ``target_nodes`` nodes (the whole chain if matching stalls first).
    """
    cache = csr._hierarchy
    if cache is None:
        cache = csr._hierarchy = {}
    state = cache.get(seed)
    if state is None:
        state = cache[seed] = {"levels": [], "stalled": False}
    levels: list[CoarseningLevel] = state["levels"]
    base = SeededRng(seed)
    while not state["stalled"] and len(levels) < max_levels:
        current = levels[-1].graph if levels else csr
        if current.num_nodes <= target_nodes:
            break
        level = coarsen_once(current, base.fork(("coarsen", len(levels))))
        if level.graph.num_nodes >= current.num_nodes * min_reduction:
            state["stalled"] = True
            if level.graph.num_nodes >= current.num_nodes:
                break
            levels.append(level)
            break
        levels.append(level)
    prefix: list[CoarseningLevel] = []
    for level in levels:
        prefix.append(level)
        if level.graph.num_nodes <= target_nodes:
            break
    return prefix


def coarsen_to(
    graph: Graph | CSRGraph,
    target_nodes: int,
    rng: SeededRng,
    min_reduction: float = 0.9,
    max_levels: int = 40,
) -> list[CoarseningLevel]:
    """Coarsen until the graph has at most ``target_nodes`` nodes.

    Returns the list of levels from finest to coarsest (the original graph is
    not included).  Coarsening stops early if a level shrinks the node count
    by less than ``1 - min_reduction`` (the matching has become ineffective,
    typically because the graph is mostly disconnected or star shaped).
    """
    levels: list[CoarseningLevel] = []
    current = as_csr(graph)
    for _ in range(max_levels):
        if current.num_nodes <= target_nodes:
            break
        level = coarsen_once(current, rng)
        if level.graph.num_nodes >= current.num_nodes * min_reduction:
            # Diminishing returns: accept the level only if it still helps a bit.
            if level.graph.num_nodes >= current.num_nodes:
                break
            levels.append(level)
            current = level.graph
            break
        levels.append(level)
        current = level.graph
    return levels


def project_assignment(level: CoarseningLevel, coarse_assignment: list[int]) -> list[int]:
    """Project a partition assignment of the coarse graph back to the finer graph."""
    fine_to_coarse = level.fine_to_coarse
    return [coarse_assignment[coarse] for coarse in fine_to_coarse]
