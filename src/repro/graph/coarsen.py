"""Graph coarsening via heavy-edge matching.

The multilevel scheme repeatedly contracts a maximal matching of the graph,
preferring heavy edges, so that a good partition of the small coarse graph is
also a good partition of the original when projected back (Karypis & Kumar,
1998).  Each call to :func:`coarsen_once` produces one level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.model import Graph
from repro.utils.rng import SeededRng


@dataclass
class CoarseningLevel:
    """One level of the coarsening hierarchy."""

    graph: Graph
    #: fine node id -> coarse node id
    fine_to_coarse: list[int]


def coarsen_once(graph: Graph, rng: SeededRng) -> CoarseningLevel:
    """Contract a heavy-edge matching of ``graph``, returning the coarser level."""
    order = list(graph.nodes())
    rng.shuffle(order)
    match = [-1] * graph.num_nodes
    for node in order:
        if match[node] != -1:
            continue
        best_neighbor = -1
        best_weight = -1.0
        for neighbor, weight in graph.neighbors(node).items():
            if match[neighbor] == -1 and weight > best_weight:
                best_weight = weight
                best_neighbor = neighbor
        if best_neighbor != -1:
            match[node] = best_neighbor
            match[best_neighbor] = node
        else:
            match[node] = node
    fine_to_coarse = [-1] * graph.num_nodes
    coarse = Graph()
    for node in order:
        if fine_to_coarse[node] != -1:
            continue
        partner = match[node]
        if partner == node or partner < 0:
            coarse_id = coarse.add_node(graph.node_weights[node])
            fine_to_coarse[node] = coarse_id
        else:
            coarse_id = coarse.add_node(graph.node_weights[node] + graph.node_weights[partner])
            fine_to_coarse[node] = coarse_id
            fine_to_coarse[partner] = coarse_id
    for u, v, weight in graph.edges():
        coarse_u = fine_to_coarse[u]
        coarse_v = fine_to_coarse[v]
        if coarse_u != coarse_v:
            coarse.add_edge(coarse_u, coarse_v, weight)
    return CoarseningLevel(coarse, fine_to_coarse)


def coarsen_to(
    graph: Graph,
    target_nodes: int,
    rng: SeededRng,
    min_reduction: float = 0.9,
    max_levels: int = 40,
) -> list[CoarseningLevel]:
    """Coarsen until the graph has at most ``target_nodes`` nodes.

    Returns the list of levels from finest to coarsest (the original graph is
    not included).  Coarsening stops early if a level shrinks the node count
    by less than ``1 - min_reduction`` (the matching has become ineffective,
    typically because the graph is mostly disconnected or star shaped).
    """
    levels: list[CoarseningLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.num_nodes <= target_nodes:
            break
        level = coarsen_once(current, rng)
        if level.graph.num_nodes >= current.num_nodes * min_reduction:
            # Diminishing returns: accept the level only if it still helps a bit.
            if level.graph.num_nodes >= current.num_nodes:
                break
            levels.append(level)
            current = level.graph
            break
        levels.append(level)
        current = level.graph
    return levels


def project_assignment(level: CoarseningLevel, coarse_assignment: list[int]) -> list[int]:
    """Project a partition assignment of the coarse graph back to the finer graph."""
    return [coarse_assignment[coarse] for coarse in level.fine_to_coarse]
