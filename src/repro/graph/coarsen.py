"""Graph coarsening via heavy-edge matching, running on the frozen CSR form.

The multilevel scheme repeatedly contracts a maximal matching of the graph,
preferring heavy edges, so that a good partition of the small coarse graph is
also a good partition of the original when projected back (Karypis & Kumar,
1998).  Each call to :func:`coarsen_once` produces one level.

All levels are :class:`~repro.graph.model.CSRGraph` instances: the coarse
graph is emitted directly into CSR arrays with a scatter-accumulate pass
(one dense ``accumulator``/``touched`` pair reused across coarse nodes), so
no intermediate per-node dicts are built anywhere in the hierarchy.  Mutable
:class:`~repro.graph.model.Graph` inputs are frozen on entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.model import CSRGraph, Graph, as_csr
from repro.utils.rng import SeededRng


@dataclass
class CoarseningLevel:
    """One level of the coarsening hierarchy."""

    graph: CSRGraph
    #: fine node id -> coarse node id
    fine_to_coarse: list[int]


def coarsen_once(graph: Graph | CSRGraph, rng: SeededRng) -> CoarseningLevel:
    """Contract a heavy-edge matching of ``graph``, returning the coarser level."""
    csr = as_csr(graph)
    num_nodes = csr.num_nodes
    indptr, indices, edge_weights, node_weights = (
        csr.indptr,
        csr.indices,
        csr.edge_weights,
        csr.node_weights,
    )
    order = list(range(num_nodes))
    rng.shuffle(order)
    match = [-1] * num_nodes
    for node in order:
        if match[node] != -1:
            continue
        best_neighbor = -1
        best_weight = -1.0
        start, end = indptr[node], indptr[node + 1]
        for neighbor, weight in zip(indices[start:end], edge_weights[start:end]):
            if weight > best_weight and match[neighbor] == -1:
                best_weight = weight
                best_neighbor = neighbor
        if best_neighbor != -1:
            match[node] = best_neighbor
            match[best_neighbor] = node
        else:
            match[node] = node

    # Assign coarse ids in traversal order; remember each coarse node's fine
    # members so the coarse CSR can be emitted with one scan per fine node.
    fine_to_coarse = [-1] * num_nodes
    coarse_weights: list[float] = []
    members: list[tuple[int, int]] = []  # (fine, partner-or-fine) per coarse node
    for node in order:
        if fine_to_coarse[node] != -1:
            continue
        partner = match[node]
        coarse_id = len(coarse_weights)
        if partner == node or partner < 0:
            coarse_weights.append(node_weights[node])
            members.append((node, node))
            fine_to_coarse[node] = coarse_id
        else:
            coarse_weights.append(node_weights[node] + node_weights[partner])
            members.append((node, partner))
            fine_to_coarse[node] = coarse_id
            fine_to_coarse[partner] = coarse_id

    # Scatter-accumulate the coarse adjacency straight into CSR arrays.  The
    # fine->coarse mapping is applied to the whole ``indices`` array first so
    # the per-entry loop body stays minimal.
    num_coarse = len(coarse_weights)
    coarse_indptr = [0] * (num_coarse + 1)
    coarse_indices: list[int] = []
    coarse_edge_weights: list[float] = []
    accumulator = [0.0] * num_coarse
    marker = [-1] * num_coarse
    touched: list[int] = []
    append_touched = touched.append
    append_index = coarse_indices.append
    append_weight = coarse_edge_weights.append
    mapped = [fine_to_coarse[fine] for fine in indices]
    weighted_degrees = [0.0] * num_coarse
    for coarse_id in range(num_coarse):
        first, second = members[coarse_id]
        fine_members = (first,) if first == second else (first, second)
        for fine in fine_members:
            start, end = indptr[fine], indptr[fine + 1]
            for coarse_neighbor, weight in zip(mapped[start:end], edge_weights[start:end]):
                if coarse_neighbor == coarse_id:
                    continue
                if marker[coarse_neighbor] != coarse_id:
                    marker[coarse_neighbor] = coarse_id
                    accumulator[coarse_neighbor] = weight
                    append_touched(coarse_neighbor)
                else:
                    accumulator[coarse_neighbor] += weight
        row_weight = 0.0
        for coarse_neighbor in touched:
            append_index(coarse_neighbor)
            weight = accumulator[coarse_neighbor]
            append_weight(weight)
            row_weight += weight
        weighted_degrees[coarse_id] = row_weight
        touched.clear()
        coarse_indptr[coarse_id + 1] = len(coarse_indices)

    coarse = CSRGraph(
        coarse_indptr, coarse_indices, coarse_edge_weights, coarse_weights, weighted_degrees
    )
    return CoarseningLevel(coarse, fine_to_coarse)


def coarsen_to(
    graph: Graph | CSRGraph,
    target_nodes: int,
    rng: SeededRng,
    min_reduction: float = 0.9,
    max_levels: int = 40,
) -> list[CoarseningLevel]:
    """Coarsen until the graph has at most ``target_nodes`` nodes.

    Returns the list of levels from finest to coarsest (the original graph is
    not included).  Coarsening stops early if a level shrinks the node count
    by less than ``1 - min_reduction`` (the matching has become ineffective,
    typically because the graph is mostly disconnected or star shaped).
    """
    levels: list[CoarseningLevel] = []
    current = as_csr(graph)
    for _ in range(max_levels):
        if current.num_nodes <= target_nodes:
            break
        level = coarsen_once(current, rng)
        if level.graph.num_nodes >= current.num_nodes * min_reduction:
            # Diminishing returns: accept the level only if it still helps a bit.
            if level.graph.num_nodes >= current.num_nodes:
                break
            levels.append(level)
            current = level.graph
            break
        levels.append(level)
        current = level.graph
    return levels


def project_assignment(level: CoarseningLevel, coarse_assignment: list[int]) -> list[int]:
    """Project a partition assignment of the coarse graph back to the finer graph."""
    fine_to_coarse = level.fine_to_coarse
    return [coarse_assignment[coarse] for coarse in fine_to_coarse]
