"""Build the Schism graph from an access trace.

The graph follows Section 4.1 of the paper:

* one node per tuple (or per *group* of tuples that are always accessed
  together, when tuple-coalescing is enabled);
* clique edges among the tuples accessed by the same transaction, with edge
  weights accumulating over transactions;
* optional star-shaped "replication" expansion: a tuple accessed by *n*
  transactions becomes *n + 1* nodes — one central node plus one satellite
  per accessing transaction — with replication edges whose weight equals the
  number of transactions that *write* the tuple (the cost of keeping replicas
  consistent).  Transaction edges then attach to the satellites, letting the
  min-cut partitioner trade replication against distribution per tuple.

Node weights implement the two balancing modes of the paper: ``workload``
(number of accesses) or ``data_size`` (bytes).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations

from repro.catalog.tuples import TupleId
from repro.engine.database import Database
from repro.graph.assignment import PartitionAssignment
from repro.graph.model import Graph
from repro.utils.rng import SeededRng
from repro.workload.rwsets import AccessTrace
from repro.workload.sampling import (
    filter_blanket_statements,
    filter_rare_tuples,
    sample_transactions,
    sample_tuples,
)


@dataclass
class GraphBuildOptions:
    """Options controlling graph construction and the size-reduction heuristics."""

    #: enable the star-shaped replication expansion.
    replication: bool = True
    #: only tuples accessed by at least this many transactions are exploded.
    min_accesses_for_replication: int = 2
    #: "workload" (accesses) or "data_size" (bytes) node weighting.
    node_weighting: str = "workload"
    #: transaction-level sampling fraction in (0, 1].
    transaction_sample_fraction: float = 1.0
    #: tuple-level sampling fraction in (0, 1].
    tuple_sample_fraction: float = 1.0
    #: drop statements touching more than this many tuples (None disables).
    blanket_statement_threshold: int | None = 100
    #: drop tuples accessed by fewer transactions than this (1 disables).
    min_tuple_accesses: int = 1
    #: merge tuples that are always accessed together into a single node.
    coalesce_tuples: bool = True
    #: small constant added to every replication edge so that replication is
    #: only chosen when it actually saves transaction edges (it models the
    #: storage/consistency cost of keeping an extra copy).
    replication_epsilon: float = 0.1
    #: random seed for the sampling heuristics.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.node_weighting not in ("workload", "data_size"):
            raise ValueError("node_weighting must be 'workload' or 'data_size'")


@dataclass
class _TupleGroup:
    """A coalesced group of tuples sharing the same access signature."""

    members: tuple[TupleId, ...]
    accessing_transactions: tuple[int, ...]
    writing_transactions: tuple[int, ...]
    center_node: int = -1
    #: transaction index -> satellite node id (empty when not exploded)
    satellites: dict[int, int] = field(default_factory=dict)

    @property
    def exploded(self) -> bool:
        """Whether the group was expanded into a replication star."""
        return bool(self.satellites)

    def nodes(self) -> list[int]:
        """All graph nodes representing this group."""
        return [self.center_node, *self.satellites.values()] if self.exploded else [self.center_node]

    def node_for_transaction(self, transaction_index: int) -> int:
        """The node a transaction's edges should attach to."""
        if self.exploded:
            return self.satellites[transaction_index]
        return self.center_node


class TupleGraph:
    """The graph plus the bookkeeping needed to map a node partition back to tuples."""

    def __init__(self, graph: Graph, groups: list[_TupleGroup], trace: AccessTrace) -> None:
        self.graph = graph
        self.groups = groups
        self.trace = trace
        self._group_of_tuple: dict[TupleId, _TupleGroup] = {}
        self._frozen = None
        for group in groups:
            for member in group.members:
                self._group_of_tuple[member] = group

    def frozen(self):
        """The CSR form of the graph, memoised.

        The partition stage (and any k sweep over the same graph) freezes
        once; the coarsening hierarchy is itself memoised on the frozen
        graph, so repeated partition calls share all the expensive setup.
        """
        if self._frozen is None:
            self._frozen = self.graph.freeze()
        return self._frozen

    # -- statistics -----------------------------------------------------------------
    @property
    def num_tuples(self) -> int:
        """Number of distinct tuples represented."""
        return len(self._group_of_tuple)

    @property
    def num_nodes(self) -> int:
        """Number of graph nodes (after coalescing/explosion)."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of graph edges."""
        return self.graph.num_edges

    @property
    def num_transactions(self) -> int:
        """Number of transactions represented in the (possibly sampled) trace."""
        return len(self.trace)

    def group_of(self, tuple_id: TupleId) -> _TupleGroup | None:
        """The coalesced group containing ``tuple_id`` (None when filtered out)."""
        return self._group_of_tuple.get(tuple_id)

    # -- mapping node assignments back to tuples --------------------------------------
    def to_partition_assignment(self, node_assignment: list[int], num_partitions: int) -> PartitionAssignment:
        """Translate a node->partition list into per-tuple replica sets.

        For exploded groups the replica set is the set of partitions used by
        the star's satellites (the central node only ties the copies
        together); if every satellite landed in one partition the tuple is
        simply placed there.  Non-exploded groups take their single node's
        partition.
        """
        assignment = PartitionAssignment(num_partitions)
        for group in self.groups:
            if group.exploded:
                partitions = {node_assignment[node] for node in group.satellites.values()}
            else:
                partitions = {node_assignment[group.center_node]}
            for member in group.members:
                assignment.assign(member, partitions)
        return assignment


def build_tuple_graph(
    trace: AccessTrace,
    database: Database | None = None,
    options: GraphBuildOptions | None = None,
) -> TupleGraph:
    """Build the Schism graph for ``trace``.

    Parameters
    ----------
    trace:
        The access trace (read/write sets per transaction).
    database:
        Needed only for ``data_size`` node weighting (to look up row sizes).
    options:
        Construction options; defaults are sensible for the bundled workloads.
    """
    options = options or GraphBuildOptions()
    rng = SeededRng(options.seed)
    reduced = trace
    if options.blanket_statement_threshold is not None:
        reduced = filter_blanket_statements(reduced, options.blanket_statement_threshold)
    if options.transaction_sample_fraction < 1.0:
        reduced = sample_transactions(reduced, options.transaction_sample_fraction, rng.fork("txn"))
    if options.tuple_sample_fraction < 1.0:
        reduced = sample_tuples(reduced, options.tuple_sample_fraction, rng.fork("tuple"))
    if options.min_tuple_accesses > 1:
        reduced = filter_rare_tuples(reduced, options.min_tuple_accesses)

    accesses = reduced.accesses
    touching: dict[TupleId, list[int]] = {}
    writing: dict[TupleId, set[int]] = {}
    for index, access in enumerate(accesses):
        for tuple_id in access.touched:
            touching.setdefault(tuple_id, []).append(index)
        for tuple_id in access.write_set:
            writing.setdefault(tuple_id, set()).add(index)

    groups = _build_groups(touching, writing, coalesce=options.coalesce_tuples)
    graph = Graph()
    for group in groups:
        _materialise_group(graph, group, options, database)

    # Transaction clique edges among the per-transaction representative nodes.
    # Pair weights are accumulated in one flat Counter (a single hash probe
    # per occurrence) and inserted into the graph in a single batched pass,
    # instead of hitting two per-node adjacency dicts for every clique pair of
    # every transaction.
    group_by_tuple: dict[TupleId, _TupleGroup] = {}
    for group in groups:
        for member in group.members:
            group_by_tuple[member] = group
    pair_weights: Counter[tuple[int, int]] = Counter()
    for index, access in enumerate(accesses):
        representative_nodes = sorted(
            {
                group_by_tuple[tuple_id].node_for_transaction(index)
                for tuple_id in access.touched
                if tuple_id in group_by_tuple
            }
        )
        # The list is sorted, so combinations() yields each pair as (u, v)
        # with u < v — already canonical for deduplication.
        pair_weights.update(combinations(representative_nodes, 2))
    graph.add_weighted_edges(
        (pair, float(count)) for pair, count in pair_weights.items()
    )

    return TupleGraph(graph, groups, reduced)


def _build_groups(
    touching: dict[TupleId, list[int]],
    writing: dict[TupleId, set[int]],
    coalesce: bool,
) -> list[_TupleGroup]:
    """Group tuples by access signature (or one group per tuple when disabled)."""
    groups: list[_TupleGroup] = []
    if coalesce:
        by_signature: dict[tuple[tuple[int, ...], tuple[int, ...]], list[TupleId]] = {}
        for tuple_id, transactions in touching.items():
            signature = (
                tuple(sorted(set(transactions))),
                tuple(sorted(writing.get(tuple_id, set()))),
            )
            by_signature.setdefault(signature, []).append(tuple_id)
        # Sort by the *minimum* member, not the first-appended one: the
        # member lists are built in ``touching``-dict order, which follows
        # frozenset iteration order and is therefore salted per process.
        for (accessing, writes), members in sorted(
            by_signature.items(), key=lambda item: min(item[1])
        ):
            groups.append(_TupleGroup(tuple(sorted(members)), accessing, writes))
    else:
        for tuple_id in sorted(touching):
            accessing = tuple(sorted(set(touching[tuple_id])))
            writes = tuple(sorted(writing.get(tuple_id, set())))
            groups.append(_TupleGroup((tuple_id,), accessing, writes))
    return groups


def _materialise_group(
    graph: Graph,
    group: _TupleGroup,
    options: GraphBuildOptions,
    database: Database | None,
) -> None:
    """Create the node(s) for one group: a single node or a replication star."""
    group_size = len(group.members)
    access_count = len(group.accessing_transactions)
    write_count = len(group.writing_transactions)
    if options.node_weighting == "data_size":
        if database is not None:
            weight = float(sum(database.tuple_byte_size(member) for member in group.members))
        else:
            weight = float(group_size)
    else:
        # Workload balancing: total number of (transaction, tuple) accesses.
        weight = float(group_size * access_count)
    explode = (
        options.replication
        and access_count >= options.min_accesses_for_replication
    )
    if not explode:
        group.center_node = graph.add_node(weight)
        return
    # Star-shaped expansion: the centre carries the storage weight, satellites
    # carry the per-transaction workload weight so that balance reflects where
    # the accesses actually land.
    if options.node_weighting == "data_size":
        center_weight = weight
        satellite_weight = 0.0
    else:
        center_weight = 0.0
        satellite_weight = float(group_size)
    group.center_node = graph.add_node(center_weight)
    replication_edge_weight = float(write_count * group_size) + options.replication_epsilon
    for transaction_index in group.accessing_transactions:
        satellite = graph.add_node(satellite_weight)
        group.satellites[transaction_index] = satellite
        graph.add_edge(group.center_node, satellite, replication_edge_weight)
