"""Multilevel balanced min-cut graph partitioner (METIS-style, pure Python).

The partitioner combines three classic ingredients:

1. **Coarsening** by heavy-edge matching until the graph is small;
2. **Initial bisection** of the coarsest graph by greedy graph growing (best
   of several trials);
3. **Uncoarsening** with Fiduccia–Mattheyses refinement at every level.

Two-way partitions run the classic multilevel bisection.  k-way partitions
for k > 2 use a **direct k-way multilevel path** by default: coarsen the
graph *once*, k-way partition the coarsest graph (by recursive bisection,
which is cheap at that size; k need not be a power of two — weight targets
split proportionally), then refine all k parts in one boundary-FM sweep per
uncoarsening level (:func:`~repro.graph.refine.kway_fm_refine`, per-part
gain buckets).  This eliminates the repeated subview/coarsen work that
recursive bisection performs once per bisection branch — log(k) coarsening
hierarchies collapse into one.  ``PartitionerOptions.kway_mode`` restores
the old recursive behaviour when needed.  Balance is expressed as a maximum
allowed relative imbalance over perfectly even partitions, matching the
"constant factor of perfect balance" constraint in the paper.

The whole pipeline runs on the frozen CSR representation
(:class:`~repro.graph.model.CSRGraph`): mutable ``Graph`` inputs are frozen
once on entry, recursive bisection extracts index-remapped ``subview``\\ s
instead of dict-copying subgraphs, and every level of the coarsening
hierarchy is CSR.  Under the numpy array backend
(:mod:`repro.graph.backend`) the bulk kernels are vectorised; both backends
produce bit-identical assignments for a fixed seed.  Callers that partition
the same graph repeatedly (e.g. the Figure-5 k sweep) can freeze once
themselves and pass the ``CSRGraph`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.graph.coarsen import coarsen_chain, coarsen_to, project_assignment
from repro.graph.initial import greedy_bisection, peripheral_seed, random_bisection
from repro.graph.model import CSRGraph, Graph, as_csr
from repro.obs import get_telemetry
from repro.graph.refine import (
    _fm_refine_csr,
    cut_weight_two_way,
    greedy_kway_refine,
    kway_fm_refine,
    rebalance,
    side_weights,
)
from repro.utils.rng import SeededRng


@dataclass
class PartitionerOptions:
    """Tuning knobs for the partitioner.

    Count-valued knobs (``coarsen_target``, ``initial_trials``,
    ``refine_passes``, ``fm_negative_streak``, ``kway_coarse_factor``,
    ``bisection_carry``, ``two_way_chain_trials``) are clamped to at least 1
    on construction — zero or negative values used to degrade silently
    (empty trial loops, runaway coarsening).  ``imbalance`` and
    ``kway_mode`` are validated outright, and a single-trial configuration
    still uses greedy growing for its initial bisection (it never silently
    degrades to a random split).

    Two-way quality knobs (``peripheral_seed_trial``, ``bisection_carry``,
    ``two_way_chain_trials``) apply to root-level bisections only; the
    direct k-way path pins them to their cheap settings for its
    coarsest-graph initial partition, whose quality is dominated by the
    k-way refinement that follows.

    The array backend (numpy vs. pure-Python CSR arrays) is *not* an option
    here: it is process-wide, selected by the ``REPRO_ARRAY_BACKEND``
    environment variable via :mod:`repro.graph.backend`.  Both backends
    produce identical assignments; the option surface stays
    backend-agnostic.
    """

    #: permissible relative imbalance; 0.05 means partitions may exceed the
    #: ideal weight by 5% (plus one maximal node, to guarantee feasibility).
    imbalance: float = 0.05
    #: stop coarsening when the graph has at most this many nodes.  The
    #: direct k-way path coarsens to ``max(coarsen_target, 4 * k)`` so the
    #: coarsest graph always has a few nodes per part to work with.
    coarsen_target: int = 120
    #: number of greedy-graph-growing trials for the initial bisection.
    initial_trials: int = 8
    #: number of FM passes per uncoarsening level (two-way and k-way alike).
    refine_passes: int = 4
    #: abort an FM pass after this many consecutive non-improving moves.  A
    #: short streak bounds the speculative hill-climb (and its rollback) per
    #: pass; empirically 16 is both faster and no worse in cut than long
    #: streaks on the Figure-5 graphs.
    fm_negative_streak: int = 16
    #: how partitions for k > 2 are produced: "auto"/"direct" use the direct
    #: k-way multilevel path (coarsen once, k-way FM per level), "recursive"
    #: forces the legacy recursive-bisection path.
    kway_mode: str = "auto"
    #: the direct k-way path stops coarsening at
    #: ``max(coarsen_target, kway_coarse_factor * k)`` nodes, so the initial
    #: k-way partition always has a handful of coarse nodes per part to
    #: allocate; larger factors trade initial-partition time for cut quality.
    kway_coarse_factor: int = 20
    #: run the extra FM polish when a bisection's graph needed no coarsening
    #: (the per-trial refinement already ran once).  The direct k-way path
    #: disables this for its coarsest-graph initial partition, where the
    #: k-way refinement sweep immediately follows anyway.
    flat_refine: bool = True
    #: add one deterministic greedy-growing trial seeded from a
    #: pseudo-peripheral node (double-BFS) to every *root-level* initial
    #: bisection, on top of the ``initial_trials`` random-seed trials.  A
    #: rim-grown region tends to meet the opposite rim with a short
    #: boundary, which stabilises two-way cut quality against unlucky
    #: random seeds (the k=2 regression noted after the PR-3 coarsening
    #: re-roll).  Inner recursive bisections skip it.
    peripheral_seed_trial: bool = True
    #: at a root-level bisection (the graphs that own a memoised coarsening
    #: chain), refine this many of the best initial candidates through the
    #: *whole* uncoarsening and keep the best final cut.  Selecting at the
    #: coarsest level alone commits to one basin before refinement has had a
    #: say — carrying 2 candidates recovers most of the spread at roughly
    #: twice the two-way refinement cost (coarsening itself is shared).
    #: Clamped to at least 1; inner recursive bisections always carry 1.
    bisection_carry: int = 2
    #: at a root-level *two-way* bisection, also try the multilevel pipeline
    #: over this many differently-seeded coarsening chains (seed, seed+1, …)
    #: and keep the best final cut.  The two-way cut's variance lives mostly
    #: in the coarsening randomisation — initial-candidate diversity alone
    #: cannot reach basins a chain never exposes.  Chains are memoised per
    #: seed on the frozen graph, so repeated k=2 calls pay the extra
    #: coarsening once.  Clamped to at least 1 (1 restores the single-chain
    #: behaviour); the direct k-way path's coarsest-level initial partition
    #: keeps a single chain, its quality being dominated by later refinement.
    two_way_chain_trials: int = 2
    #: random seed (tie-breaking, seed selection, matching order).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.imbalance < 0:
            raise ValueError("imbalance must be non-negative")
        if self.kway_mode not in ("auto", "direct", "recursive"):
            raise ValueError("kway_mode must be 'auto', 'direct' or 'recursive'")
        self.coarsen_target = max(1, int(self.coarsen_target))
        self.initial_trials = max(1, int(self.initial_trials))
        self.refine_passes = max(1, int(self.refine_passes))
        self.fm_negative_streak = max(1, int(self.fm_negative_streak))
        self.kway_coarse_factor = max(1, int(self.kway_coarse_factor))
        self.bisection_carry = max(1, int(self.bisection_carry))
        self.two_way_chain_trials = max(1, int(self.two_way_chain_trials))


class GraphPartitioner:
    """Balanced min-cut k-way partitioner."""

    def __init__(self, options: PartitionerOptions | None = None) -> None:
        self.options = options or PartitionerOptions()

    # -- public API -----------------------------------------------------------------
    def partition(self, graph: Graph | CSRGraph, num_parts: int) -> list[int]:
        """Partition ``graph`` into ``num_parts`` balanced parts, minimising the cut.

        ``graph`` may be a mutable :class:`Graph` (frozen internally) or an
        already-frozen :class:`CSRGraph`.  Returns a list assigning each node
        id to a partition in ``[0, num_parts)``.
        """
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        if graph.num_nodes == 0:
            return []
        if num_parts == 1:
            return [0] * graph.num_nodes
        csr = as_csr(graph)
        rng = SeededRng(self.options.seed)
        telemetry = get_telemetry()
        telemetry.metrics.counter(
            "partition.runs", "graph partitioner invocations"
        ).inc()
        with telemetry.tracer.span(
            "partition.kway", k=num_parts, nodes=csr.num_nodes
        ):
            if num_parts > 2 and self.options.kway_mode != "recursive":
                return self._direct_kway(csr, num_parts, rng)
            assignment = [0] * csr.num_nodes
            with telemetry.tracer.span("partition.bisect", k=num_parts):
                self._recursive_bisect(
                    csr,
                    list(csr.nodes()),
                    num_parts,
                    first_part=0,
                    assignment=assignment,
                    rng=rng,
                )
            max_weights = self._kway_max_weights(csr, num_parts)
            with telemetry.tracer.span("partition.refine", level=0, nodes=csr.num_nodes):
                rebalance(csr, assignment, num_parts, max_weights)
                greedy_kway_refine(
                    csr, assignment, num_parts, max_weights, self.options.refine_passes
                )
            phases = telemetry.metrics.counter(
                "partition.phases", "partitioner phase executions", labels=("phase",)
            )
            phases.inc(phase="bisect")
            phases.inc(phase="refine")
            return assignment

    # -- direct k-way -----------------------------------------------------------------
    def _direct_kway(self, csr: CSRGraph, num_parts: int, rng: SeededRng) -> list[int]:
        """Coarsen once, k-way partition the coarsest graph, k-way FM per level.

        The coarsening chain is memoised on the frozen graph
        (:func:`~repro.graph.coarsen.coarsen_chain`): sweeping k over one
        graph — the Figure-5 protocol, and the paper's own "partition for
        several k, keep the best" loop — pays for the hierarchy once.  The
        initial k-way partition of the coarsest graph comes from recursive
        bisection with a tightened balance (a quarter of the slack, so the
        per-branch tolerances cannot compound into overweight parts that the
        rebalance would then fix at the cut's expense) and a lean trial
        budget — at
        coarsest size its quality is dominated by the later refinement
        anyway.  Every uncoarsening level then refines all k parts in a
        single bucket-FM sweep instead of one two-way FM per bisection
        branch: one fast pass at the intermediate levels, ``refine_passes``
        hill-climbing passes (wider streak, adaptive early exit) at the
        finest level where the cut is actually realised, and a final greedy
        boundary polish.  Balance is repaired once at the coarsest level;
        projection preserves part weights and the FM never violates
        ``max_weights``, so the final rebalance is a no-op safety net.
        """
        options = self.options
        telemetry = get_telemetry()
        phases = telemetry.metrics.counter(
            "partition.phases", "partitioner phase executions", labels=("phase",)
        )
        max_weights = self._kway_max_weights(csr, num_parts)
        coarse_target = max(options.coarsen_target, options.kway_coarse_factor * num_parts)
        with telemetry.tracer.span("partition.coarsen", nodes=csr.num_nodes) as coarsen_span:
            levels = coarsen_chain(csr, coarse_target, options.seed)
            # A level far below the target over-coarsens the initial partition's
            # granularity (one matching round can overshoot); back up one level.
            while len(levels) > 1 and levels[-1].graph.num_nodes < coarse_target // 2:
                levels.pop()
            coarsest = levels[-1].graph if levels else csr
            coarsen_span.set_attribute("levels", len(levels))
            coarsen_span.set_attribute("coarsest_nodes", coarsest.num_nodes)
        phases.inc(phase="coarsen")
        initial = GraphPartitioner(
            replace(
                options,
                imbalance=options.imbalance * 0.25,
                initial_trials=min(options.initial_trials, 2),
                refine_passes=1,
                coarsen_target=max(options.coarsen_target, coarsest.num_nodes),
                flat_refine=False,
                # The coarsest-level initial partition is dominated by the
                # k-way refinement that follows; the two-way quality knobs
                # would only add work (and reshuffle the k>2 results).
                peripheral_seed_trial=False,
                bisection_carry=1,
                two_way_chain_trials=1,
            )
        )
        assignment = [0] * coarsest.num_nodes
        with telemetry.tracer.span(
            "partition.initial", k=num_parts, nodes=coarsest.num_nodes
        ):
            initial._recursive_bisect(
                coarsest,
                list(coarsest.nodes()),
                num_parts,
                first_part=0,
                assignment=assignment,
                rng=rng,
            )
            rebalance(coarsest, assignment, num_parts, max_weights)
            external = kway_fm_refine(
                coarsest,
                assignment,
                num_parts,
                max_weights,
                max_passes=max(options.refine_passes, 2),
                max_negative_streak=4 * options.fm_negative_streak,
                pass_gain_tolerance=0.002,
            )
        phases.inc(phase="initial")
        for index in range(len(levels) - 1, -1, -1):
            fine_to_coarse = levels[index].fine_to_coarse
            assignment = project_assignment(levels[index], assignment)
            boundary_hint = [external[coarse] > 0.0 for coarse in fine_to_coarse]
            finest = index == 0
            finer_graph = csr if finest else levels[index - 1].graph
            with telemetry.tracer.span(
                "partition.refine", level=index, nodes=finer_graph.num_nodes
            ):
                external = kway_fm_refine(
                    finer_graph,
                    assignment,
                    num_parts,
                    max_weights,
                    max_passes=options.refine_passes if finest else 1,
                    max_negative_streak=8 * options.fm_negative_streak
                    if finest
                    else 4 * options.fm_negative_streak,
                    boundary_hint=boundary_hint,
                    want_external=not finest,
                    pass_gain_tolerance=0.002,
                )
            phases.inc(phase="refine")
        rebalance(csr, assignment, num_parts, max_weights)
        greedy_kway_refine(csr, assignment, num_parts, max_weights, max_passes=1)
        return assignment

    # -- recursive bisection ----------------------------------------------------------
    def _recursive_bisect(
        self,
        original: CSRGraph,
        node_ids: list[int],
        num_parts: int,
        first_part: int,
        assignment: list[int],
        rng: SeededRng,
    ) -> None:
        if num_parts == 1 or not node_ids:
            for node in node_ids:
                assignment[node] = first_part
            return
        if len(node_ids) == original.num_nodes:
            # The first level of the recursion covers the whole graph: no
            # extraction needed, the identity mapping is node_ids itself.
            subgraph, mapping = original, node_ids
        else:
            subgraph, mapping = original.subview(node_ids)
        left_parts = (num_parts + 1) // 2
        right_parts = num_parts - left_parts
        target_fraction = left_parts / num_parts
        two_way = self._multilevel_bisection(
            subgraph, target_fraction, rng, use_chain=subgraph is original
        )
        left_nodes = [mapping[i] for i, side in enumerate(two_way) if side == 0]
        right_nodes = [mapping[i] for i, side in enumerate(two_way) if side == 1]
        if not left_nodes or not right_nodes:
            # Degenerate bisection (e.g. a single huge node): split arbitrarily
            # so that every part receives at least one node where possible.
            ordered = sorted(node_ids, key=lambda node: -original.node_weights[node])
            left_nodes = ordered[::2]
            right_nodes = ordered[1::2]
        self._recursive_bisect(original, left_nodes, left_parts, first_part, assignment, rng)
        self._recursive_bisect(
            original, right_nodes, right_parts, first_part + left_parts, assignment, rng
        )

    # -- multilevel bisection -----------------------------------------------------------
    def _multilevel_bisection(
        self,
        graph: CSRGraph,
        target_fraction: float,
        rng: SeededRng,
        use_chain: bool = False,
    ) -> list[int]:
        total_weight = graph.total_node_weight()
        max_node_weight = max(graph.lists()[3], default=0.0)
        slack = 1.0 + self.options.imbalance
        max_weights = (
            total_weight * target_fraction * slack + max_node_weight,
            total_weight * (1.0 - target_fraction) * slack + max_node_weight,
        )
        chain_trials = self.options.two_way_chain_trials if use_chain else 1
        best_assignment: list[int] | None = None
        best_score = float("inf")
        for chain_index in range(chain_trials):
            if use_chain:
                # Root bisection of a caller-owned graph: reuse (or build)
                # the memoised coarsening chain so repeated partitions of
                # the same frozen graph — any k, including 2 — share one
                # hierarchy per chain seed.
                levels = coarsen_chain(
                    graph, self.options.coarsen_target, self.options.seed + chain_index
                )
                chain_rng = (
                    rng if chain_trials == 1 else rng.fork(("chain", chain_index))
                )
            else:
                levels = coarsen_to(graph, self.options.coarsen_target, rng)
                chain_rng = rng
            coarsest = levels[-1].graph if levels else graph
            # Root-level bisections carry several initial candidates through
            # the full uncoarsening (selection at the coarsest level alone
            # commits to a basin before refinement has spoken); inner
            # recursive bisections carry one — their mistakes are cheap and
            # local.
            carry = self.options.bisection_carry if use_chain else 1
            candidates = self._initial_bisection(
                coarsest,
                target_fraction,
                chain_rng,
                max_weights,
                count=carry,
                root=use_chain,
            )
            single_shot = len(candidates) == 1 and chain_trials == 1
            for assignment, external in candidates:
                # Uncoarsen: project back level by level, refining at each
                # step.  The graph one step finer than levels[index] is
                # levels[index - 1] (or the input graph at index 0), so the
                # loop index is all we need.  A coarse node with zero
                # external weight proves all its fine members are interior,
                # so the finer FM call skips their adjacency during init.
                for index in range(len(levels) - 1, -1, -1):
                    fine_to_coarse = levels[index].fine_to_coarse
                    assignment = project_assignment(levels[index], assignment)
                    boundary_hint = [external[coarse] > 0.0 for coarse in fine_to_coarse]
                    finer_graph = graph if index == 0 else levels[index - 1].graph
                    external = _fm_refine_csr(
                        finer_graph,
                        assignment,
                        max_weights,
                        max_passes=self.options.refine_passes,
                        max_negative_streak=self.options.fm_negative_streak,
                        boundary_hint=boundary_hint,
                    )
                if not levels and self.options.flat_refine:
                    external = _fm_refine_csr(
                        graph,
                        assignment,
                        max_weights,
                        max_passes=self.options.refine_passes,
                        max_negative_streak=self.options.fm_negative_streak,
                    )
                if single_shot:
                    return assignment
                cut = sum(external) / 2.0
                penalty = (
                    0.0
                    if self._is_feasible(graph, assignment, max_weights)
                    else graph.total_edge_weight() + 1.0
                )
                if cut + penalty < best_score:
                    best_score = cut + penalty
                    best_assignment = assignment
        assert best_assignment is not None
        return best_assignment

    def _initial_bisection(
        self,
        graph: CSRGraph,
        target_fraction: float,
        rng: SeededRng,
        max_weights: tuple[float, float],
        count: int = 1,
        root: bool = False,
    ) -> list[tuple[list[int], list[float]]]:
        """The ``count`` best initial candidates, ranked, duplicates dropped.

        Each candidate is ``(assignment, external)`` after one quick FM pass;
        feasible bisections rank before infeasible ones, smaller cuts first.
        ``root`` marks a root-level bisection — the only place the two-way
        quality extras (the peripheral seed trial, the scaled trial pool)
        run; inner recursive bisections keep the lean per-branch cost.
        """
        total_weight = graph.total_node_weight()
        target_zero = total_weight * target_fraction
        #: (score, arrival order, assignment, external) — order breaks ties
        #: deterministically in favour of the earlier trial.
        ranked: list[tuple[float, int, list[int], list[float]]] = []
        seen_raw: set[tuple[int, ...]] = set()
        seen_refined: set[tuple[int, ...]] = set()

        def consider(candidate: list[int]) -> None:
            # Identical raw candidates refine identically: drop them before
            # paying the FM pass.  Distinct raw candidates can still refine
            # into the same assignment, so dedup again after refinement or
            # the carry would waste a full uncoarsening on a duplicate.
            raw_key = tuple(candidate)
            if raw_key in seen_raw:
                return
            seen_raw.add(raw_key)
            external = _fm_refine_csr(
                graph,
                candidate,
                max_weights,
                max_passes=1,
                max_negative_streak=self.options.fm_negative_streak,
            )
            key = tuple(candidate)
            if key in seen_refined:
                return
            seen_refined.add(key)
            # The refiner's external array is the per-node cut contribution,
            # so the cut falls out as a sum instead of an edge rescan.
            cut = sum(external) / 2.0
            balanced = self._is_feasible(graph, candidate, max_weights)
            # Prefer feasible bisections; among those, the smallest cut wins.
            penalty = 0.0 if balanced else graph.total_edge_weight() + 1.0
            ranked.append((cut + penalty, len(ranked), candidate, external))

        if root and self.options.peripheral_seed_trial:
            # Deterministic trial: grow from a pseudo-peripheral node.  Runs
            # first so random trials only replace it by strictly beating it.
            trial_rng = rng.fork(("initial", "peripheral"))
            consider(
                greedy_bisection(
                    graph, target_zero, trial_rng, seed_node=peripheral_seed(graph)
                )
            )
        trials = max(1, self.options.initial_trials)
        if count > 1:
            # A carried selection needs a candidate pool several times the
            # carry, or the "runners-up" are whatever happened to be drawn.
            # Root-level trials run on the coarsest graph, where each one is
            # a few thousand scalar ops — diversity here is nearly free,
            # unlike in recursive branches (count == 1) where trials
            # multiply across the bisection tree.
            trials = max(trials, 4 * count)
        for trial in range(trials):
            trial_rng = rng.fork(("initial", trial))
            if trial > 0 and trial == trials - 1 and not ranked:
                # Diversity fallback only: a single-trial configuration must
                # still use greedy growing (a lone random bisection would
                # silently degrade the partition).
                candidate = random_bisection(graph, target_zero, trial_rng)
            else:
                candidate = greedy_bisection(graph, target_zero, trial_rng)
            consider(candidate)
        ranked.sort(key=lambda entry: entry[:2])
        return [
            (assignment, external)
            for _, _, assignment, external in ranked[: max(1, count)]
        ]

    @staticmethod
    def _is_feasible(
        graph: CSRGraph, assignment: list[int], max_weights: tuple[float, float]
    ) -> bool:
        weights = side_weights(graph, assignment, 2)
        return weights[0] <= max_weights[0] and weights[1] <= max_weights[1]

    def _kway_max_weights(self, graph: CSRGraph, num_parts: int) -> list[float]:
        total_weight = graph.total_node_weight()
        max_node_weight = max(graph.lists()[3], default=0.0)
        per_part = total_weight / num_parts
        return [per_part * (1.0 + self.options.imbalance) + max_node_weight] * num_parts


def partition_graph(
    graph: Graph | CSRGraph,
    num_parts: int,
    options: PartitionerOptions | None = None,
) -> list[int]:
    """Convenience wrapper: partition ``graph`` into ``num_parts`` parts."""
    return GraphPartitioner(options).partition(graph, num_parts)


def cut_weight(graph: Graph | CSRGraph, assignment: list[int]) -> float:
    """Total weight of edges whose endpoints are assigned to different parts."""
    return cut_weight_two_way(graph, assignment)


def partition_weights(
    graph: Graph | CSRGraph, assignment: list[int], num_parts: int
) -> list[float]:
    """Total node weight per partition (re-exported for reports and tests)."""
    return side_weights(graph, assignment, num_parts)
