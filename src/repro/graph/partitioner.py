"""Multilevel balanced min-cut graph partitioner (METIS-style, pure Python).

The partitioner combines three classic ingredients:

1. **Coarsening** by heavy-edge matching until the graph is small;
2. **Initial bisection** of the coarsest graph by greedy graph growing (best
   of several trials);
3. **Uncoarsening** with Fiduccia–Mattheyses refinement at every level.

k-way partitions are obtained by recursive bisection (k need not be a power
of two: the weight targets are split proportionally), followed by a greedy
k-way boundary refinement pass on the full graph.  Balance is expressed as a
maximum allowed relative imbalance over perfectly even partitions, matching
the "constant factor of perfect balance" constraint in the paper.

The whole pipeline runs on the frozen CSR representation
(:class:`~repro.graph.model.CSRGraph`): mutable ``Graph`` inputs are frozen
once on entry, recursive bisection extracts index-remapped ``subview``\\ s
instead of dict-copying subgraphs, and every level of the coarsening
hierarchy is CSR.  Callers that partition the same graph repeatedly (e.g.
the Figure-5 k sweep) can freeze once themselves and pass the ``CSRGraph``
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.coarsen import coarsen_to, project_assignment
from repro.graph.initial import greedy_bisection, random_bisection
from repro.graph.model import CSRGraph, Graph, as_csr
from repro.graph.refine import (
    _fm_refine_csr,
    cut_weight_two_way,
    greedy_kway_refine,
    rebalance,
    side_weights,
)
from repro.utils.rng import SeededRng


@dataclass
class PartitionerOptions:
    """Tuning knobs for the partitioner."""

    #: permissible relative imbalance; 0.05 means partitions may exceed the
    #: ideal weight by 5% (plus one maximal node, to guarantee feasibility).
    imbalance: float = 0.05
    #: stop coarsening when the graph has at most this many nodes.
    coarsen_target: int = 120
    #: number of greedy-graph-growing trials for the initial bisection.
    initial_trials: int = 8
    #: number of FM passes per uncoarsening level.
    refine_passes: int = 4
    #: abort an FM pass after this many consecutive non-improving moves.  A
    #: short streak bounds the speculative hill-climb (and its rollback) per
    #: pass; empirically 16 is both faster and no worse in cut than long
    #: streaks on the Figure-5 graphs.
    fm_negative_streak: int = 16
    #: random seed (tie-breaking, seed selection, matching order).
    seed: int = 0


class GraphPartitioner:
    """Balanced min-cut k-way partitioner."""

    def __init__(self, options: PartitionerOptions | None = None) -> None:
        self.options = options or PartitionerOptions()

    # -- public API -----------------------------------------------------------------
    def partition(self, graph: Graph | CSRGraph, num_parts: int) -> list[int]:
        """Partition ``graph`` into ``num_parts`` balanced parts, minimising the cut.

        ``graph`` may be a mutable :class:`Graph` (frozen internally) or an
        already-frozen :class:`CSRGraph`.  Returns a list assigning each node
        id to a partition in ``[0, num_parts)``.
        """
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        if graph.num_nodes == 0:
            return []
        if num_parts == 1:
            return [0] * graph.num_nodes
        csr = as_csr(graph)
        rng = SeededRng(self.options.seed)
        assignment = [0] * csr.num_nodes
        self._recursive_bisect(
            csr,
            list(csr.nodes()),
            num_parts,
            first_part=0,
            assignment=assignment,
            rng=rng,
        )
        max_weights = self._kway_max_weights(csr, num_parts)
        rebalance(csr, assignment, num_parts, max_weights)
        greedy_kway_refine(csr, assignment, num_parts, max_weights, self.options.refine_passes)
        return assignment

    # -- recursive bisection ----------------------------------------------------------
    def _recursive_bisect(
        self,
        original: CSRGraph,
        node_ids: list[int],
        num_parts: int,
        first_part: int,
        assignment: list[int],
        rng: SeededRng,
    ) -> None:
        if num_parts == 1 or not node_ids:
            for node in node_ids:
                assignment[node] = first_part
            return
        if len(node_ids) == original.num_nodes:
            # The first level of the recursion covers the whole graph: no
            # extraction needed, the identity mapping is node_ids itself.
            subgraph, mapping = original, node_ids
        else:
            subgraph, mapping = original.subview(node_ids)
        left_parts = (num_parts + 1) // 2
        right_parts = num_parts - left_parts
        target_fraction = left_parts / num_parts
        two_way = self._multilevel_bisection(subgraph, target_fraction, rng)
        left_nodes = [mapping[i] for i, side in enumerate(two_way) if side == 0]
        right_nodes = [mapping[i] for i, side in enumerate(two_way) if side == 1]
        if not left_nodes or not right_nodes:
            # Degenerate bisection (e.g. a single huge node): split arbitrarily
            # so that every part receives at least one node where possible.
            ordered = sorted(node_ids, key=lambda node: -original.node_weights[node])
            left_nodes = ordered[::2]
            right_nodes = ordered[1::2]
        self._recursive_bisect(original, left_nodes, left_parts, first_part, assignment, rng)
        self._recursive_bisect(
            original, right_nodes, right_parts, first_part + left_parts, assignment, rng
        )

    # -- multilevel bisection -----------------------------------------------------------
    def _multilevel_bisection(
        self, graph: CSRGraph, target_fraction: float, rng: SeededRng
    ) -> list[int]:
        total_weight = graph.total_node_weight()
        max_node_weight = max(graph.node_weights, default=0.0)
        slack = 1.0 + self.options.imbalance
        max_weights = (
            total_weight * target_fraction * slack + max_node_weight,
            total_weight * (1.0 - target_fraction) * slack + max_node_weight,
        )
        levels = coarsen_to(graph, self.options.coarsen_target, rng)
        coarsest = levels[-1].graph if levels else graph
        assignment, external = self._initial_bisection(coarsest, target_fraction, rng, max_weights)
        # Uncoarsen: project back level by level, refining at each step.  The
        # graph one step finer than levels[index] is levels[index - 1] (or the
        # input graph at index 0), so the loop index is all we need.  A coarse
        # node with zero external weight proves all its fine members are
        # interior, so the finer FM call skips their adjacency during init.
        for index in range(len(levels) - 1, -1, -1):
            fine_to_coarse = levels[index].fine_to_coarse
            assignment = project_assignment(levels[index], assignment)
            boundary_hint = [external[coarse] > 0.0 for coarse in fine_to_coarse]
            finer_graph = graph if index == 0 else levels[index - 1].graph
            external = _fm_refine_csr(
                finer_graph,
                assignment,
                max_weights,
                max_passes=self.options.refine_passes,
                max_negative_streak=self.options.fm_negative_streak,
                boundary_hint=boundary_hint,
            )
        if not levels:
            _fm_refine_csr(
                graph,
                assignment,
                max_weights,
                max_passes=self.options.refine_passes,
                max_negative_streak=self.options.fm_negative_streak,
            )
        return assignment

    def _initial_bisection(
        self,
        graph: CSRGraph,
        target_fraction: float,
        rng: SeededRng,
        max_weights: tuple[float, float],
    ) -> tuple[list[int], list[float]]:
        total_weight = graph.total_node_weight()
        target_zero = total_weight * target_fraction
        best_assignment: list[int] | None = None
        best_external: list[float] | None = None
        best_cut = float("inf")
        trials = max(1, self.options.initial_trials)
        for trial in range(trials):
            trial_rng = rng.fork(("initial", trial))
            if trial == trials - 1 and best_assignment is None:
                candidate = random_bisection(graph, target_zero, trial_rng)
            else:
                candidate = greedy_bisection(graph, target_zero, trial_rng)
            external = _fm_refine_csr(
                graph,
                candidate,
                max_weights,
                max_passes=1,
                max_negative_streak=self.options.fm_negative_streak,
            )
            # The refiner's external array is the per-node cut contribution,
            # so the cut falls out as a sum instead of an edge rescan.
            cut = sum(external) / 2.0
            balanced = self._is_feasible(graph, candidate, max_weights)
            # Prefer feasible bisections; among those, the smallest cut wins.
            penalty = 0.0 if balanced else graph.total_edge_weight() + 1.0
            if cut + penalty < best_cut:
                best_cut = cut + penalty
                best_assignment = candidate
                best_external = external
        assert best_assignment is not None and best_external is not None
        return best_assignment, best_external

    @staticmethod
    def _is_feasible(
        graph: CSRGraph, assignment: list[int], max_weights: tuple[float, float]
    ) -> bool:
        weights = side_weights(graph, assignment, 2)
        return weights[0] <= max_weights[0] and weights[1] <= max_weights[1]

    def _kway_max_weights(self, graph: CSRGraph, num_parts: int) -> list[float]:
        total_weight = graph.total_node_weight()
        max_node_weight = max(graph.node_weights, default=0.0)
        per_part = total_weight / num_parts
        return [per_part * (1.0 + self.options.imbalance) + max_node_weight] * num_parts


def partition_graph(
    graph: Graph | CSRGraph,
    num_parts: int,
    options: PartitionerOptions | None = None,
) -> list[int]:
    """Convenience wrapper: partition ``graph`` into ``num_parts`` parts."""
    return GraphPartitioner(options).partition(graph, num_parts)


def cut_weight(graph: Graph | CSRGraph, assignment: list[int]) -> float:
    """Total weight of edges whose endpoints are assigned to different parts."""
    return cut_weight_two_way(graph, assignment)


def partition_weights(
    graph: Graph | CSRGraph, assignment: list[int], num_parts: int
) -> list[float]:
    """Total node weight per partition (re-exported for reports and tests)."""
    return side_weights(graph, assignment, num_parts)
