"""Partition assignment produced by the graph phase.

A :class:`PartitionAssignment` maps every tuple to the *set* of partitions
that store it.  Singleton sets mean normal placement; larger sets mean the
partitioner decided to replicate the tuple (Section 4.2 of the paper: all
replica nodes of a tuple landing in the same partition means "do not
replicate").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.catalog.tuples import TupleId


@dataclass
class PartitionAssignment:
    """Mapping of tuple id -> frozenset of partition ids.

    >>> from repro.catalog.tuples import TupleId
    >>> assignment = PartitionAssignment(num_partitions=2)
    >>> assignment.assign(TupleId("users", (1,)), {0})
    >>> assignment.assign(TupleId("users", (2,)), {0, 1})
    >>> assignment.is_replicated(TupleId("users", (2,)))
    True
    >>> assignment.replication_label(TupleId("users", (2,)))
    'R0_1'
    >>> assignment.partition_tuple_counts()
    [2, 1]
    """

    num_partitions: int
    placements: dict[TupleId, frozenset[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")

    # -- construction ----------------------------------------------------------------
    def assign(self, tuple_id: TupleId, partitions: Iterable[int]) -> None:
        """Assign ``tuple_id`` to ``partitions`` (validated against ``num_partitions``)."""
        partition_set = frozenset(partitions)
        if not partition_set:
            raise ValueError(f"tuple {tuple_id} must be assigned to at least one partition")
        for partition in partition_set:
            if not 0 <= partition < self.num_partitions:
                raise ValueError(f"partition {partition} out of range for {tuple_id}")
        self.placements[tuple_id] = partition_set

    # -- queries ----------------------------------------------------------------------
    def partitions_of(self, tuple_id: TupleId) -> frozenset[int] | None:
        """Partitions storing ``tuple_id`` (None when the tuple is unknown)."""
        return self.placements.get(tuple_id)

    def is_replicated(self, tuple_id: TupleId) -> bool:
        """Whether the tuple is stored on more than one partition."""
        placement = self.placements.get(tuple_id)
        return placement is not None and len(placement) > 1

    def __contains__(self, tuple_id: TupleId) -> bool:
        return tuple_id in self.placements

    def __len__(self) -> int:
        return len(self.placements)

    def __iter__(self) -> Iterator[TupleId]:
        return iter(self.placements)

    @property
    def replicated_count(self) -> int:
        """Number of tuples placed on more than one partition."""
        return sum(1 for placement in self.placements.values() if len(placement) > 1)

    def partition_tuple_counts(self) -> list[int]:
        """Number of tuples stored on each partition (replicas counted everywhere)."""
        counts = [0] * self.num_partitions
        for placement in self.placements.values():
            for partition in placement:
                counts[partition] += 1
        return counts

    def partition_weights(self, weights: Mapping[TupleId, float] | None = None) -> list[float]:
        """Total weight per partition; defaults to tuple counts when no weights given."""
        totals = [0.0] * self.num_partitions
        for tuple_id, placement in self.placements.items():
            weight = 1.0 if weights is None else weights.get(tuple_id, 0.0)
            for partition in placement:
                totals[partition] += weight
        return totals

    def replication_label(self, tuple_id: TupleId) -> str:
        """The classification label used by the explanation phase.

        Single-partition tuples are labelled with the partition number;
        replicated tuples get a stable ``R<sorted partition list>`` label
        (the paper's "virtual partition" labels, e.g. ``R1``).
        """
        placement = self.placements[tuple_id]
        if len(placement) == 1:
            return str(next(iter(placement)))
        return "R" + "_".join(str(partition) for partition in sorted(placement))

    def label_histogram(self) -> Counter:
        """Counter of replication labels (useful for reports/tests)."""
        histogram: Counter = Counter()
        for tuple_id in self.placements:
            histogram[self.replication_label(tuple_id)] += 1
        return histogram

    def most_common_partition(self) -> int:
        """The partition holding the most tuples (used as a default for unseen tuples)."""
        counts = self.partition_tuple_counts()
        return max(range(self.num_partitions), key=lambda partition: counts[partition])
