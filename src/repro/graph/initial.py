"""Initial bisection of the coarsest graph.

Greedy graph growing (GGGP): grow one region outwards from a random seed,
always absorbing the frontier node that improves the cut the most, until the
region reaches its target weight.  Several trials with different seeds are
run and the best resulting bisection (after a quick refinement pass done by
the caller) is kept.

Both entry points run on the frozen CSR representation: neighbour scans are
contiguous ``indices``/``edge_weights`` slice walks, and mutable ``Graph``
inputs are frozen on entry.
"""

from __future__ import annotations

import heapq

from repro.graph.model import CSRGraph, Graph, as_csr
from repro.utils.rng import SeededRng


def peripheral_seed(graph: Graph | CSRGraph) -> int:
    """A pseudo-peripheral node found by double-BFS (deterministic).

    Start from node 0, BFS to the last level and take its smallest node,
    then BFS again from there: the second endpoint lies near the graph's
    periphery, which makes it a strong *deterministic* seed for greedy
    growing — a region grown from the rim meets the opposite rim with a
    short boundary, where a random interior seed can leave a ragged cut.
    On a disconnected graph this explores node 0's component only; the seed
    is a heuristic, so that is acceptable.
    """
    csr = as_csr(graph)
    num_nodes = csr.num_nodes
    if num_nodes == 0:
        raise ValueError("cannot seed an empty graph")
    indptr, indices, _, _ = csr.lists()

    def farthest(start: int) -> int:
        seen = [False] * num_nodes
        seen[start] = True
        frontier = [start]
        representative = start
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                for neighbor in indices[indptr[node] : indptr[node + 1]]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        next_frontier.append(neighbor)
            if next_frontier:
                representative = min(next_frontier)
            frontier = next_frontier
        return representative

    return farthest(farthest(0))


def greedy_bisection(
    graph: Graph | CSRGraph,
    target_weight_zero: float,
    rng: SeededRng,
    seed_node: int | None = None,
) -> list[int]:
    """Return a 0/1 assignment whose side 0 weighs approximately ``target_weight_zero``.

    The algorithm grows side 0 from a random seed node (or ``seed_node``
    when given — e.g. a :func:`peripheral_seed` for a deterministic trial);
    everything not absorbed stays on side 1.  Disconnected graphs are
    handled by restarting the growth from a new unabsorbed seed whenever
    the frontier empties.
    """
    csr = as_csr(graph)
    num_nodes = csr.num_nodes
    if num_nodes == 0:
        return []
    indptr, indices, edge_weights, node_weights = csr.lists()
    assignment = [1] * num_nodes
    grown_weight = 0.0
    in_region = [False] * num_nodes
    # Max-heap of (-gain, tiebreak, node); gain = weight towards region - weight away.
    # Gains are maintained incrementally: a node outside the region starts at
    # -weighted_degree, and every region neighbour it acquires flips 2w of
    # that from "away" to "towards" — so each push costs O(1) instead of a
    # full neighbourhood rescan.
    frontier: list[tuple[float, float, int]] = []
    gains = [-degree for degree in csr.weighted_degrees()]

    def push_neighbors(node: int) -> None:
        start, end = indptr[node], indptr[node + 1]
        for neighbor, weight in zip(indices[start:end], edge_weights[start:end]):
            if not in_region[neighbor]:
                gain = gains[neighbor] + weight + weight
                gains[neighbor] = gain
                heapq.heappush(frontier, (-gain, rng.random(), neighbor))

    def new_seed() -> int | None:
        candidates = [node for node in range(num_nodes) if not in_region[node]]
        if not candidates:
            return None
        return candidates[rng.randint(0, len(candidates) - 1)]

    seed = seed_node if seed_node is not None else new_seed()
    while grown_weight < target_weight_zero and seed is not None:
        if not in_region[seed]:
            in_region[seed] = True
            assignment[seed] = 0
            grown_weight += node_weights[seed]
            push_neighbors(seed)
        # Absorb from the frontier until it empties or the target is reached.
        while frontier and grown_weight < target_weight_zero:
            _neg_gain, _tie, node = heapq.heappop(frontier)
            if in_region[node]:
                continue
            in_region[node] = True
            assignment[node] = 0
            grown_weight += node_weights[node]
            push_neighbors(node)
        if grown_weight < target_weight_zero:
            seed = new_seed()
        else:
            break
    return assignment


def random_bisection(
    graph: Graph | CSRGraph, target_weight_zero: float, rng: SeededRng
) -> list[int]:
    """Assign random nodes to side 0 until it reaches the target weight (fallback)."""
    num_nodes = graph.num_nodes
    node_weights = graph.node_weights
    if not isinstance(node_weights, list):
        node_weights = graph.lists()[3]
    order = list(range(num_nodes))
    rng.shuffle(order)
    assignment = [1] * num_nodes
    weight = 0.0
    for node in order:
        if weight >= target_weight_zero:
            break
        assignment[node] = 0
        weight += node_weights[node]
    return assignment
