"""Initial bisection of the coarsest graph.

Greedy graph growing (GGGP): grow one region outwards from a random seed,
always absorbing the frontier node that improves the cut the most, until the
region reaches its target weight.  Several trials with different seeds are
run and the best resulting bisection (after a quick refinement pass done by
the caller) is kept.
"""

from __future__ import annotations

import heapq

from repro.graph.model import Graph
from repro.utils.rng import SeededRng


def greedy_bisection(
    graph: Graph,
    target_weight_zero: float,
    rng: SeededRng,
) -> list[int]:
    """Return a 0/1 assignment whose side 0 weighs approximately ``target_weight_zero``.

    The algorithm grows side 0 from a random seed node; everything not
    absorbed stays on side 1.  Disconnected graphs are handled by restarting
    the growth from a new unabsorbed seed whenever the frontier empties.
    """
    num_nodes = graph.num_nodes
    if num_nodes == 0:
        return []
    assignment = [1] * num_nodes
    grown_weight = 0.0
    in_region = [False] * num_nodes
    # Max-heap of (-gain, tiebreak, node); gain = weight towards region - weight away.
    frontier: list[tuple[float, float, int]] = []
    visited_frontier = [False] * num_nodes

    def push_neighbors(node: int) -> None:
        for neighbor, _weight in graph.neighbors(node).items():
            if not in_region[neighbor]:
                gain = _region_gain(graph, neighbor, in_region)
                heapq.heappush(frontier, (-gain, rng.random(), neighbor))
                visited_frontier[neighbor] = True

    def new_seed() -> int | None:
        candidates = [node for node in graph.nodes() if not in_region[node]]
        if not candidates:
            return None
        return candidates[rng.randint(0, len(candidates) - 1)]

    seed = new_seed()
    while grown_weight < target_weight_zero and seed is not None:
        if not in_region[seed]:
            in_region[seed] = True
            assignment[seed] = 0
            grown_weight += graph.node_weights[seed]
            push_neighbors(seed)
        # Absorb from the frontier until it empties or the target is reached.
        while frontier and grown_weight < target_weight_zero:
            _neg_gain, _tie, node = heapq.heappop(frontier)
            if in_region[node]:
                continue
            in_region[node] = True
            assignment[node] = 0
            grown_weight += graph.node_weights[node]
            push_neighbors(node)
        if grown_weight < target_weight_zero:
            seed = new_seed()
        else:
            break
    return assignment


def _region_gain(graph: Graph, node: int, in_region: list[bool]) -> float:
    """Cut-improvement of absorbing ``node`` into the region."""
    towards = 0.0
    away = 0.0
    for neighbor, weight in graph.neighbors(node).items():
        if in_region[neighbor]:
            towards += weight
        else:
            away += weight
    return towards - away


def random_bisection(graph: Graph, target_weight_zero: float, rng: SeededRng) -> list[int]:
    """Assign random nodes to side 0 until it reaches the target weight (fallback)."""
    order = list(graph.nodes())
    rng.shuffle(order)
    assignment = [1] * graph.num_nodes
    weight = 0.0
    for node in order:
        if weight >= target_weight_zero:
            break
        assignment[node] = 0
        weight += graph.node_weights[node]
    return assignment
