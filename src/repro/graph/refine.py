"""Partition refinement.

Two refiners are provided:

* :func:`fm_refine_bisection` — a Fiduccia–Mattheyses style pass for two-way
  partitions, used inside the multilevel bisection at every uncoarsening
  level.  It permits temporarily negative-gain moves (up to a bounded streak)
  and rolls back to the best prefix, which lets it climb out of small local
  minima.
* :func:`greedy_kway_refine` — a greedy boundary pass for k-way partitions,
  run once on the full graph after recursive bisection.  Nodes on the
  boundary are moved to the neighbouring partition with the highest positive
  gain provided the balance constraint stays satisfied.
"""

from __future__ import annotations

import heapq

from repro.graph.model import Graph


def cut_weight_two_way(graph: Graph, assignment: list[int]) -> float:
    """Total weight of edges crossing a two-way (or k-way) assignment."""
    total = 0.0
    for u, v, weight in graph.edges():
        if assignment[u] != assignment[v]:
            total += weight
    return total


def side_weights(graph: Graph, assignment: list[int], num_parts: int = 2) -> list[float]:
    """Total node weight per partition."""
    weights = [0.0] * num_parts
    for node, part in enumerate(assignment):
        weights[part] += graph.node_weights[node]
    return weights


def fm_refine_bisection(
    graph: Graph,
    assignment: list[int],
    max_weights: tuple[float, float],
    max_passes: int = 4,
    max_negative_streak: int = 50,
) -> list[int]:
    """Refine a two-way assignment in place and return it.

    Parameters
    ----------
    graph:
        The graph being partitioned.
    assignment:
        Current 0/1 side per node; modified in place.
    max_weights:
        Maximum allowed total node weight of side 0 and side 1.
    max_passes:
        Number of full FM passes.
    max_negative_streak:
        Abort a pass after this many consecutive non-improving moves.
    """
    num_nodes = graph.num_nodes
    if num_nodes == 0:
        return assignment
    for _ in range(max_passes):
        weights = side_weights(graph, assignment, 2)
        gains = [_move_gain(graph, node, assignment) for node in range(num_nodes)]
        heap: list[tuple[float, int, int]] = []
        for node in range(num_nodes):
            heapq.heappush(heap, (-gains[node], node, assignment[node]))
        locked = [False] * num_nodes
        best_cut_delta = 0.0
        current_delta = 0.0
        moves: list[int] = []
        best_prefix = 0
        negative_streak = 0
        while heap and negative_streak < max_negative_streak:
            neg_gain, node, side_at_push = heapq.heappop(heap)
            if locked[node] or assignment[node] != side_at_push:
                continue
            gain = -neg_gain
            if abs(gain - _move_gain(graph, node, assignment)) > 1e-9:
                # Stale entry: re-push with the fresh gain.
                heapq.heappush(heap, (-_move_gain(graph, node, assignment), node, assignment[node]))
                continue
            source = assignment[node]
            target = 1 - source
            node_weight = graph.node_weights[node]
            if weights[target] + node_weight > max_weights[target]:
                locked[node] = True
                continue
            # Perform the move.
            assignment[node] = target
            weights[source] -= node_weight
            weights[target] += node_weight
            locked[node] = True
            moves.append(node)
            current_delta += gain
            if current_delta > best_cut_delta + 1e-12:
                best_cut_delta = current_delta
                best_prefix = len(moves)
                negative_streak = 0
            else:
                negative_streak += 1
            # Update neighbours' gains lazily.
            for neighbor in graph.neighbors(node):
                if not locked[neighbor]:
                    heapq.heappush(
                        heap,
                        (-_move_gain(graph, neighbor, assignment), neighbor, assignment[neighbor]),
                    )
        # Roll back the moves after the best prefix.
        for node in reversed(moves[best_prefix:]):
            assignment[node] = 1 - assignment[node]
        if best_cut_delta <= 1e-12:
            break
    return assignment


def _move_gain(graph: Graph, node: int, assignment: list[int]) -> float:
    """Cut reduction obtained by moving ``node`` to the other side."""
    external = 0.0
    internal = 0.0
    side = assignment[node]
    for neighbor, weight in graph.neighbors(node).items():
        if assignment[neighbor] == side:
            internal += weight
        else:
            external += weight
    return external - internal


def greedy_kway_refine(
    graph: Graph,
    assignment: list[int],
    num_parts: int,
    max_weights: list[float],
    max_passes: int = 3,
) -> list[int]:
    """Greedy boundary refinement for a k-way assignment (modified in place)."""
    if graph.num_nodes == 0 or num_parts <= 1:
        return assignment
    weights = side_weights(graph, assignment, num_parts)
    for _ in range(max_passes):
        improved = False
        for node in graph.nodes():
            neighbors = graph.neighbors(node)
            if not neighbors:
                continue
            source = assignment[node]
            connectivity = [0.0] * num_parts
            for neighbor, weight in neighbors.items():
                connectivity[assignment[neighbor]] += weight
            internal = connectivity[source]
            best_part = source
            best_gain = 0.0
            node_weight = graph.node_weights[node]
            for part in range(num_parts):
                if part == source:
                    continue
                gain = connectivity[part] - internal
                if gain > best_gain + 1e-12 and weights[part] + node_weight <= max_weights[part]:
                    best_gain = gain
                    best_part = part
            if best_part != source:
                assignment[node] = best_part
                weights[source] -= node_weight
                weights[best_part] += node_weight
                improved = True
        if not improved:
            break
    return assignment


def rebalance(
    graph: Graph,
    assignment: list[int],
    num_parts: int,
    max_weights: list[float],
) -> list[int]:
    """Move nodes out of overweight partitions, preferring low-connectivity nodes.

    Used as a last resort when recursive bisection produces a slightly
    infeasible assignment (e.g. one giant coalesced node).  Cut quality is a
    secondary concern here; feasibility comes first.
    """
    weights = side_weights(graph, assignment, num_parts)
    overweight = [part for part in range(num_parts) if weights[part] > max_weights[part]]
    if not overweight:
        return assignment
    for part in overweight:
        movable = sorted(
            (node for node in graph.nodes() if assignment[node] == part),
            key=lambda node: sum(
                weight
                for neighbor, weight in graph.neighbors(node).items()
                if assignment[neighbor] == part
            ),
        )
        for node in movable:
            if weights[part] <= max_weights[part]:
                break
            node_weight = graph.node_weights[node]
            # Send the node to the partition with the most slack.
            target = min(
                (candidate for candidate in range(num_parts) if candidate != part),
                key=lambda candidate: weights[candidate] / max(max_weights[candidate], 1e-9),
            )
            assignment[node] = target
            weights[part] -= node_weight
            weights[target] += node_weight
    return assignment
