"""Partition refinement on the frozen CSR representation.

Two refiners are provided:

* :func:`fm_refine_bisection` — a Fiduccia–Mattheyses style pass for two-way
  partitions, used inside the multilevel bisection at every uncoarsening
  level.  It permits temporarily negative-gain moves (up to a bounded streak)
  and rolls back to the best prefix, which lets it climb out of small local
  minima.
* :func:`greedy_kway_refine` — a greedy boundary pass for k-way partitions,
  run once on the full graph after recursive bisection.  Nodes on the
  boundary are moved to the neighbouring partition with the highest positive
  gain provided the balance constraint stays satisfied.

**Incremental-gain invariant.**  The FM pass maintains a per-node ``gains``
array holding the exact cut reduction of moving each node to the other side.
When node ``u`` moves, only its neighbours change: a neighbour ``v`` now on
``u``'s new side loses ``2 * w(u, v)`` of gain, a neighbour on the old side
wins ``2 * w(u, v)``.  Applying those deltas keeps ``gains`` exact at all
times, so a heap pop never needs an O(degree) recomputation; staleness is
detected with a per-node generation counter (an entry is valid only when its
generation matches the node's current one).  The edge weights reachable here
are sums of the builder's integer transaction counts (plus the replication
epsilon), so the ±2w updates stay exact in floating point for the workloads
that matter.

The k-way pass keeps a conservative boundary flag per node (any node whose
neighbourhood may straddle partitions); interior nodes are skipped without
touching their adjacency, which is what makes late passes — when only a thin
frontier is still active — cheap.

All public functions accept either a mutable :class:`Graph` (frozen on
entry) or a :class:`CSRGraph`; ``assignment`` lists are modified in place
either way.
"""

from __future__ import annotations

import heapq

from repro.graph.model import CSRGraph, Graph, as_csr


def cut_weight_two_way(graph: Graph | CSRGraph, assignment: list[int]) -> float:
    """Total weight of edges crossing a two-way (or k-way) assignment."""
    csr = as_csr(graph)
    indptr, indices, edge_weights = csr.indptr, csr.indices, csr.edge_weights
    total = 0.0
    for u in range(csr.num_nodes):
        side = assignment[u]
        start, end = indptr[u], indptr[u + 1]
        for v, weight in zip(indices[start:end], edge_weights[start:end]):
            if assignment[v] != side:
                total += weight
    return total / 2.0


def side_weights(
    graph: Graph | CSRGraph, assignment: list[int], num_parts: int = 2
) -> list[float]:
    """Total node weight per partition."""
    weights = [0.0] * num_parts
    node_weights = graph.node_weights
    for node, part in enumerate(assignment):
        weights[part] += node_weights[node]
    return weights


def fm_refine_bisection(
    graph: Graph | CSRGraph,
    assignment: list[int],
    max_weights: tuple[float, float],
    max_passes: int = 4,
    max_negative_streak: int = 50,
) -> list[int]:
    """Refine a two-way assignment in place and return it.

    Parameters
    ----------
    graph:
        The graph being partitioned (``Graph`` inputs are frozen on entry).
    assignment:
        Current 0/1 side per node; modified in place.
    max_weights:
        Maximum allowed total node weight of side 0 and side 1.
    max_passes:
        Number of full FM passes.
    max_negative_streak:
        Abort a pass after this many consecutive non-improving moves.
    """
    csr = as_csr(graph)
    if csr.num_nodes == 0:
        return assignment
    _fm_refine_csr(csr, assignment, max_weights, max_passes, max_negative_streak)
    return assignment


def _fm_refine_csr(
    csr: CSRGraph,
    assignment: list[int],
    max_weights: tuple[float, float],
    max_passes: int,
    max_negative_streak: int = 50,
    boundary_hint: list[bool] | None = None,
) -> list[float]:
    """FM core: refine ``assignment`` in place, return the final ``external`` array.

    ``external[v]`` — total weight of v's cut edges — is the maintained
    quantity of the incremental-gain invariant: gain(v) = 2 * external(v)
    - weighted_degree(v).  It is initialised once per call (O(E)) and kept
    exact through every move *and* every rollback flip, so each subsequent
    pass re-seeds its heap in O(boundary).  The returned array lets callers
    derive the cut (``sum(external) / 2``) and seed the next uncoarsening
    level's ``boundary_hint`` without rescanning the graph.

    ``boundary_hint``, when given, must be ``False`` only for nodes that are
    guaranteed to have zero external weight (e.g. fine nodes whose coarse
    parent was interior); their adjacency is never scanned during init.
    """
    num_nodes = csr.num_nodes
    indptr, indices, edge_weights, node_weights = (
        csr.indptr,
        csr.indices,
        csr.edge_weights,
        csr.node_weights,
    )
    heappush, heappop = heapq.heappush, heapq.heappop
    max_weight_zero, max_weight_one = max_weights[0], max_weights[1]
    weighted_degrees = csr.weighted_degrees()
    external = [0.0] * num_nodes
    for node in range(num_nodes):
        if boundary_hint is not None and not boundary_hint[node]:
            continue
        side = assignment[node]
        start, end = indptr[node], indptr[node + 1]
        cross = 0.0
        for neighbor, weight in zip(indices[start:end], edge_weights[start:end]):
            if assignment[neighbor] != side:
                cross += weight
        external[node] = cross
    # Side weights are maintained through moves *and* rollbacks, so they are
    # computed once per call rather than once per pass.
    weight_zero, weight_one = side_weights(csr, assignment, 2)
    for _ in range(max_passes):
        generation = [0] * num_nodes
        # Seed the heap with boundary nodes only: an interior node has gain
        # -weighted_degree <= 0 and is reachable anyway through the neighbour
        # updates of whichever move first exposes it.
        heap: list[tuple[float, int, int]] = [
            (weighted_degrees[node] - external[node] - external[node], node, 0)
            for node in range(num_nodes)
            if external[node] > 0.0
        ]
        heapq.heapify(heap)
        locked = [False] * num_nodes
        best_cut_delta = 0.0
        current_delta = 0.0
        moves: list[int] = []
        best_prefix = 0
        negative_streak = 0
        while heap and negative_streak < max_negative_streak:
            neg_gain, node, entry_generation = heappop(heap)
            if locked[node] or entry_generation != generation[node]:
                continue
            target = 1 - assignment[node]
            node_weight = node_weights[node]
            if target == 0:
                if weight_zero + node_weight > max_weight_zero:
                    locked[node] = True
                    continue
                weight_zero += node_weight
                weight_one -= node_weight
            else:
                if weight_one + node_weight > max_weight_one:
                    locked[node] = True
                    continue
                weight_one += node_weight
                weight_zero -= node_weight
            # Perform the move.
            assignment[node] = target
            external[node] = weighted_degrees[node] - external[node]
            locked[node] = True
            moves.append(node)
            current_delta -= neg_gain
            if current_delta > best_cut_delta + 1e-12:
                best_cut_delta = current_delta
                best_prefix = len(moves)
                negative_streak = 0
            else:
                negative_streak += 1
            # Incremental update: a neighbour on the node's new side has one
            # edge turn internal (-w external), one left behind turns cut
            # (+w).  Locked neighbours still get the update (next pass needs
            # it) but no heap entry.
            start, end = indptr[node], indptr[node + 1]
            for neighbor, weight in zip(indices[start:end], edge_weights[start:end]):
                if assignment[neighbor] == target:
                    new_external = external[neighbor] - weight
                else:
                    new_external = external[neighbor] + weight
                external[neighbor] = new_external
                if not locked[neighbor]:
                    fresh = generation[neighbor] + 1
                    generation[neighbor] = fresh
                    heappush(
                        heap,
                        (weighted_degrees[neighbor] - new_external - new_external, neighbor, fresh),
                    )
        # Roll back the moves after the best prefix, applying the inverse
        # external/side-weight updates so the invariants hold at the next
        # pass start.
        for node in reversed(moves[best_prefix:]):
            back_side = 1 - assignment[node]
            assignment[node] = back_side
            external[node] = weighted_degrees[node] - external[node]
            node_weight = node_weights[node]
            if back_side == 0:
                weight_zero += node_weight
                weight_one -= node_weight
            else:
                weight_one += node_weight
                weight_zero -= node_weight
            start, end = indptr[node], indptr[node + 1]
            for neighbor, weight in zip(indices[start:end], edge_weights[start:end]):
                if assignment[neighbor] == back_side:
                    external[neighbor] -= weight
                else:
                    external[neighbor] += weight
        if best_cut_delta <= 1e-12:
            break
    return external


def _move_gain(graph: Graph | CSRGraph, node: int, assignment: list[int]) -> float:
    """Cut reduction obtained by moving ``node`` to the other side.

    Kept as the reference (non-incremental) definition of the gain the FM
    pass maintains incrementally; used by tests and cold paths only.
    """
    external = 0.0
    internal = 0.0
    side = assignment[node]
    for neighbor, weight in graph.neighbors(node).items():
        if assignment[neighbor] == side:
            internal += weight
        else:
            external += weight
    return external - internal


def greedy_kway_refine(
    graph: Graph | CSRGraph,
    assignment: list[int],
    num_parts: int,
    max_weights: list[float],
    max_passes: int = 3,
) -> list[int]:
    """Greedy boundary refinement for a k-way assignment (modified in place).

    Only nodes flagged as (potentially) on the partition boundary are
    examined: a node with every neighbour in its own partition can never have
    a positive move gain, so interior nodes are skipped outright.  The flag
    is conservative — moving a node re-flags its neighbourhood — which keeps
    the pass exact while making converged passes nearly free.
    """
    csr = as_csr(graph)
    num_nodes = csr.num_nodes
    if num_nodes == 0 or num_parts <= 1:
        return assignment
    indptr, indices, edge_weights, node_weights = (
        csr.indptr,
        csr.indices,
        csr.edge_weights,
        csr.node_weights,
    )
    weights = side_weights(csr, assignment, num_parts)
    # Conservative boundary flags: start from the exact boundary.
    on_boundary = [False] * num_nodes
    for u in range(num_nodes):
        side = assignment[u]
        for v in indices[indptr[u] : indptr[u + 1]]:
            if assignment[v] != side:
                on_boundary[u] = True
                break
    connectivity = [0.0] * num_parts
    parts_touched: list[int] = []
    for _ in range(max_passes):
        improved = False
        for node in range(num_nodes):
            if not on_boundary[node]:
                continue
            start, end = indptr[node], indptr[node + 1]
            if start == end:
                on_boundary[node] = False
                continue
            source = assignment[node]
            for neighbor, weight in zip(indices[start:end], edge_weights[start:end]):
                part = assignment[neighbor]
                if connectivity[part] == 0.0:
                    parts_touched.append(part)
                connectivity[part] += weight
            internal = connectivity[source]
            best_part = source
            best_gain = 0.0
            node_weight = node_weights[node]
            external_parts = 0
            for part in parts_touched:
                if part == source:
                    continue
                external_parts += 1
                gain = connectivity[part] - internal
                if gain > best_gain + 1e-12 and weights[part] + node_weight <= max_weights[part]:
                    best_gain = gain
                    best_part = part
            for part in parts_touched:
                connectivity[part] = 0.0
            parts_touched.clear()
            if best_part != source:
                assignment[node] = best_part
                weights[source] -= node_weight
                weights[best_part] += node_weight
                improved = True
                # The move may have pulled neighbours onto the boundary.
                for neighbor in indices[start:end]:
                    on_boundary[neighbor] = True
            elif external_parts == 0:
                # Interior node: stays skippable until a neighbour moves.
                on_boundary[node] = False
        if not improved:
            break
    return assignment


def rebalance(
    graph: Graph | CSRGraph,
    assignment: list[int],
    num_parts: int,
    max_weights: list[float],
) -> list[int]:
    """Move nodes out of overweight partitions, preferring low-connectivity nodes.

    Used as a last resort when recursive bisection produces a slightly
    infeasible assignment (e.g. one giant coalesced node).  Cut quality is a
    secondary concern here; feasibility comes first.
    """
    csr = as_csr(graph)
    indptr, indices, edge_weights = csr.indptr, csr.indices, csr.edge_weights
    weights = side_weights(csr, assignment, num_parts)
    overweight = [part for part in range(num_parts) if weights[part] > max_weights[part]]
    if not overweight:
        return assignment

    def internal_weight(node: int) -> float:
        part = assignment[node]
        return sum(
            edge_weights[i]
            for i in range(indptr[node], indptr[node + 1])
            if assignment[indices[i]] == part
        )

    for part in overweight:
        movable = sorted(
            (node for node in csr.nodes() if assignment[node] == part),
            key=internal_weight,
        )
        for node in movable:
            if weights[part] <= max_weights[part]:
                break
            node_weight = csr.node_weights[node]
            # Send the node to the partition with the most slack.
            target = min(
                (candidate for candidate in range(num_parts) if candidate != part),
                key=lambda candidate: weights[candidate] / max(max_weights[candidate], 1e-9),
            )
            assignment[node] = target
            weights[part] -= node_weight
            weights[target] += node_weight
    return assignment
