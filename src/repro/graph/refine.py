"""Partition refinement on the frozen CSR representation.

Three refiners are provided:

* :func:`fm_refine_bisection` — a Fiduccia–Mattheyses style pass for two-way
  partitions, used inside the multilevel bisection at every uncoarsening
  level.  It permits temporarily negative-gain moves (up to a bounded streak)
  and rolls back to the best prefix, which lets it climb out of small local
  minima.
* :func:`kway_fm_refine` — the direct k-way counterpart: boundary FM over all
  k parts in one sweep, built on a **per-part gain structure** — each
  boundary node keeps a dense connectivity row over the k parts plus its
  cached best move, mirrored by one target-tagged entry in the move queue —
  so the best admissible move is one heap pop and most row updates are O(1).
  It powers the direct k-way multilevel path and, through an optional
  :class:`MoveCostModel`, the online budgeted re-partitioner's warm-start
  refinement.
* :func:`greedy_kway_refine` — a greedy boundary pass for k-way partitions,
  run on the full graph after recursive bisection.  Nodes on the boundary are
  moved to the neighbouring partition with the highest positive gain provided
  the balance constraint stays satisfied.

**Incremental-gain invariant.**  The FM passes maintain a per-node ``gains``
quantity holding the exact cut reduction of the node's best move.  When node
``u`` moves, only its neighbours change: the two-way pass applies exact
``±2w`` deltas, while the k-way pass updates each neighbour's connectivity
row in two slots and its cached best move in O(1) (a full O(k) rescan only
when the vacated part was the cached target).  Staleness is detected with a
per-node generation counter (an entry is valid only when its generation
matches the node's current one), so a heap pop never acts on outdated state.

**Array backends.**  All public functions accept either a mutable
:class:`Graph` (frozen on entry) or a :class:`CSRGraph`; ``assignment``
lists are modified in place either way.  Bulk initialisation (the per-node
external cut weight, :func:`compute_external`; k-way gain seeding) is
vectorised when the graph is numpy-backed, with order-preserving summation
so both backends produce bit-identical refinements.  The sequential move
loops always run on the plain-list views.
"""

from __future__ import annotations

import heapq

from repro.graph import backend
from repro.graph.model import CSRGraph, Graph, as_csr

#: comparison slack for "strictly improving" decisions, shared by all passes.
_TOL = 1e-12


def cut_weight_two_way(graph: Graph | CSRGraph, assignment: list[int]) -> float:
    """Total weight of edges crossing a two-way (or k-way) assignment."""
    csr = as_csr(graph)
    indptr, indices, edge_weights, _ = csr.lists()
    total = 0.0
    for u in range(csr.num_nodes):
        side = assignment[u]
        start, end = indptr[u], indptr[u + 1]
        for v, weight in zip(indices[start:end], edge_weights[start:end]):
            if assignment[v] != side:
                total += weight
    return total / 2.0


def side_weights(
    graph: Graph | CSRGraph, assignment: list[int], num_parts: int = 2
) -> list[float]:
    """Total node weight per partition."""
    weights = [0.0] * num_parts
    node_weights = graph.node_weights
    if not isinstance(node_weights, list):
        node_weights = graph.lists()[3]
    for node, part in enumerate(assignment):
        weights[part] += node_weights[node]
    return weights


def compute_external(
    graph: Graph | CSRGraph,
    assignment: list[int],
    boundary_hint: list[bool] | None = None,
) -> list[float]:
    """Per-node total weight of cut edges (``external[v]``), as a plain list.

    The seed of the incremental-gain invariant: ``gain_2way(v) =
    2 * external(v) - weighted_degree(v)``, a node is on the boundary iff
    ``external[v] > 0``, and the cut is ``sum(external) / 2``.

    ``boundary_hint``, when given, must be ``False`` only for nodes that are
    guaranteed to have zero external weight (e.g. fine nodes whose coarse
    parent was interior); the scalar path skips their adjacency entirely.
    The vectorised path computes every row — the hint's guarantee makes the
    results identical.
    """
    csr = as_csr(graph)
    num_nodes = csr.num_nodes
    if csr.is_numpy and len(csr.indices) >= 2048:
        np = backend.numpy
        part = np.asarray(assignment, dtype=np.int64)
        rows = np.repeat(np.arange(num_nodes), np.diff(csr.indptr))
        cut = part[csr.indices] != part[rows]
        masked = np.where(cut, csr.edge_weights, 0.0)
        return np.bincount(rows, weights=masked, minlength=num_nodes).tolist()
    indptr, indices, edge_weights, _ = csr.lists()
    external = [0.0] * num_nodes
    for node in range(num_nodes):
        if boundary_hint is not None and not boundary_hint[node]:
            continue
        side = assignment[node]
        start, end = indptr[node], indptr[node + 1]
        cross = 0.0
        for neighbor, weight in zip(indices[start:end], edge_weights[start:end]):
            if assignment[neighbor] != side:
                cross += weight
        external[node] = cross
    return external


def fm_refine_bisection(
    graph: Graph | CSRGraph,
    assignment: list[int],
    max_weights: tuple[float, float],
    max_passes: int = 4,
    max_negative_streak: int = 50,
) -> list[int]:
    """Refine a two-way assignment in place and return it.

    Parameters
    ----------
    graph:
        The graph being partitioned (``Graph`` inputs are frozen on entry).
    assignment:
        Current 0/1 side per node; modified in place.
    max_weights:
        Maximum allowed total node weight of side 0 and side 1.
    max_passes:
        Number of full FM passes.
    max_negative_streak:
        Abort a pass after this many consecutive non-improving moves.
    """
    csr = as_csr(graph)
    if csr.num_nodes == 0:
        return assignment
    _fm_refine_csr(csr, assignment, max_weights, max_passes, max_negative_streak)
    return assignment


def _fm_refine_csr(
    csr: CSRGraph,
    assignment: list[int],
    max_weights: tuple[float, float],
    max_passes: int,
    max_negative_streak: int = 50,
    boundary_hint: list[bool] | None = None,
) -> list[float]:
    """FM core: refine ``assignment`` in place, return the final ``external`` array.

    ``external[v]`` — total weight of v's cut edges — is the maintained
    quantity of the incremental-gain invariant: gain(v) = 2 * external(v)
    - weighted_degree(v).  It is initialised once per call
    (:func:`compute_external`, vectorised under numpy) and kept exact through
    every move *and* every rollback flip, so each subsequent pass re-seeds
    its heap in O(boundary).  The returned array lets callers derive the cut
    (``sum(external) / 2``) and seed the next uncoarsening level's
    ``boundary_hint`` without rescanning the graph.
    """
    num_nodes = csr.num_nodes
    indptr, indices, edge_weights, node_weights = csr.lists()
    heappush, heappop = heapq.heappush, heapq.heappop
    max_weight_zero, max_weight_one = max_weights[0], max_weights[1]
    weighted_degrees = csr.weighted_degrees()
    external = compute_external(csr, assignment, boundary_hint)
    # Side weights are maintained through moves *and* rollbacks, so they are
    # computed once per call rather than once per pass.
    weight_zero, weight_one = side_weights(csr, assignment, 2)
    for _ in range(max_passes):
        generation = [0] * num_nodes
        # Seed the heap with boundary nodes only: an interior node has gain
        # -weighted_degree <= 0 and is reachable anyway through the neighbour
        # updates of whichever move first exposes it.
        heap: list[tuple[float, int, int]] = [
            (weighted_degrees[node] - external[node] - external[node], node, 0)
            for node in range(num_nodes)
            if external[node] > 0.0
        ]
        heapq.heapify(heap)
        locked = [False] * num_nodes
        best_cut_delta = 0.0
        current_delta = 0.0
        moves: list[int] = []
        best_prefix = 0
        negative_streak = 0
        while heap and negative_streak < max_negative_streak:
            neg_gain, node, entry_generation = heappop(heap)
            if locked[node] or entry_generation != generation[node]:
                continue
            target = 1 - assignment[node]
            node_weight = node_weights[node]
            if target == 0:
                if weight_zero + node_weight > max_weight_zero:
                    locked[node] = True
                    continue
                weight_zero += node_weight
                weight_one -= node_weight
            else:
                if weight_one + node_weight > max_weight_one:
                    locked[node] = True
                    continue
                weight_one += node_weight
                weight_zero -= node_weight
            # Perform the move.
            assignment[node] = target
            external[node] = weighted_degrees[node] - external[node]
            locked[node] = True
            moves.append(node)
            current_delta -= neg_gain
            if current_delta > best_cut_delta + _TOL:
                best_cut_delta = current_delta
                best_prefix = len(moves)
                negative_streak = 0
            else:
                negative_streak += 1
            # Incremental update: a neighbour on the node's new side has one
            # edge turn internal (-w external), one left behind turns cut
            # (+w).  Locked neighbours still get the update (next pass needs
            # it) but no heap entry.
            start, end = indptr[node], indptr[node + 1]
            for neighbor, weight in zip(indices[start:end], edge_weights[start:end]):
                if assignment[neighbor] == target:
                    new_external = external[neighbor] - weight
                else:
                    new_external = external[neighbor] + weight
                external[neighbor] = new_external
                if not locked[neighbor]:
                    fresh = generation[neighbor] + 1
                    generation[neighbor] = fresh
                    heappush(
                        heap,
                        (weighted_degrees[neighbor] - new_external - new_external, neighbor, fresh),
                    )
        # Roll back the moves after the best prefix, applying the inverse
        # external/side-weight updates so the invariants hold at the next
        # pass start.
        for node in reversed(moves[best_prefix:]):
            back_side = 1 - assignment[node]
            assignment[node] = back_side
            external[node] = weighted_degrees[node] - external[node]
            node_weight = node_weights[node]
            if back_side == 0:
                weight_zero += node_weight
                weight_one -= node_weight
            else:
                weight_one += node_weight
                weight_zero -= node_weight
            start, end = indptr[node], indptr[node + 1]
            for neighbor, weight in zip(indices[start:end], edge_weights[start:end]):
                if assignment[neighbor] == back_side:
                    external[neighbor] -= weight
                else:
                    external[neighbor] += weight
        if best_cut_delta <= _TOL:
            break
    return external


def _move_gain(graph: Graph | CSRGraph, node: int, assignment: list[int]) -> float:
    """Cut reduction obtained by moving ``node`` to the other side.

    Kept as the reference (non-incremental) definition of the gain the FM
    pass maintains incrementally; used by tests and cold paths only.
    """
    external = 0.0
    internal = 0.0
    side = assignment[node]
    for neighbor, weight in graph.neighbors(node).items():
        if assignment[neighbor] == side:
            internal += weight
        else:
            external += weight
    return external - internal


class MoveCostModel:
    """Migration-cost charging for warm-start k-way refinement.

    Shared between :func:`kway_fm_refine` and the online budgeted
    re-partitioner: each move is charged relative to the node's *home* (the
    deployed placement) — leaving home costs ``costs[node]``, returning home
    refunds it, moving between two foreign partitions is free.  ``spent`` is
    the running ledger; when ``budget`` is set, cost-increasing moves that
    would exceed it are inadmissible.  The presence of a cost model switches
    :func:`kway_fm_refine` to greedy mode: only moves whose cut gain exceeds
    ``cost_weight`` times the cost delta are taken, and there is no
    speculative hill-climbing (a live system never wants to migrate tuples
    it will migrate straight back).
    """

    __slots__ = ("home", "costs", "cost_weight", "budget", "spent")

    def __init__(
        self,
        home: list[int],
        costs: list[float],
        cost_weight: float,
        budget: float | None = None,
        already_spent: float = 0.0,
    ) -> None:
        self.home = home
        self.costs = costs
        self.cost_weight = cost_weight
        self.budget = budget
        self.spent = already_spent

    def delta(self, node: int, source: int, target: int) -> float:
        """Migration-cost change of moving ``node`` from ``source`` to ``target``."""
        home_part = self.home[node]
        if source == home_part and target != home_part:
            return self.costs[node]
        if source != home_part and target == home_part:
            return -self.costs[node]
        return 0.0

    def admissible(self, cost_delta: float) -> bool:
        """Whether a move with this cost delta fits in the remaining budget."""
        return (
            self.budget is None
            or cost_delta <= 0.0
            or self.spent + cost_delta <= self.budget
        )


def kway_fm_refine(
    graph: Graph | CSRGraph,
    assignment: list[int],
    num_parts: int,
    max_weights: list[float],
    max_passes: int = 4,
    max_negative_streak: int = 16,
    boundary_hint: list[bool] | None = None,
    cost_model: MoveCostModel | None = None,
    want_external: bool = True,
    pass_gain_tolerance: float = 0.0,
) -> list[float]:
    """Direct k-way FM with a per-part gain structure; returns the external array.

    Refines all ``num_parts`` parts in one sweep instead of log(k)
    bisections.  The k-ary gain structure: every boundary node keeps a dense
    **per-part connectivity row** (weight towards each of the k parts) plus
    its cached best move ``(gain, target)``, mirrored by one live
    target-tagged entry in the move queue.  When node ``u`` moves from ``a``
    to ``b``, each neighbour's row changes in exactly two slots
    (``row[a] -= w``, ``row[b] += w``), so the cached best move updates in
    O(1) for the common cases — a full O(k) row rescan is needed only when
    the cached target was ``a`` (its gain fell) or the node just became
    boundary.  Entries are invalidated by a per-node generation counter;
    when a popped entry's target is balance- (or budget-)blocked, the node's
    best *admissible* move is recomputed from its row and re-queued, so a
    saturated part never stalls the sweep.

    Without a cost model the pass hill-climbs exactly like the two-way FM
    (bounded negative streak, rollback to the best prefix).  With a
    :class:`MoveCostModel` it runs greedily: only net-positive moves (cut
    gain minus weighted cost delta) are applied and nothing is rolled back.

    ``assignment`` is modified in place.  The returned list is the exact
    per-node external weight of the final assignment (recomputed once at the
    end), ready to seed the next uncoarsening level's boundary hint.
    """
    csr = as_csr(graph)
    num_nodes = csr.num_nodes
    if num_nodes == 0 or num_parts <= 1:
        return [0.0] * num_nodes
    indptr, indices, edge_weights, node_weights = csr.lists()
    heappush, heappop = heapq.heappush, heapq.heappop
    weighted_degrees = csr.weighted_degrees()
    external = compute_external(csr, assignment, boundary_hint)
    weights = side_weights(csr, assignment, num_parts)
    greedy = cost_model is not None
    cost_weight = cost_model.cost_weight if greedy else 0.0
    neg_inf = -float("inf")
    # Adaptive pass exit: a pass that shaves less than this fraction of the
    # entry cut is treated as converged (0.0 keeps the exact-convergence
    # behaviour).  ``sum`` over the plain list is backend-identical.
    min_pass_delta = _TOL
    if pass_gain_tolerance > 0.0:
        min_pass_delta = max(_TOL, pass_gain_tolerance * (sum(external) / 2.0))
    #: greedy mode converges within one seeding except for balance/budget
    #: blocked nodes; later passes re-seed only those.
    reseed_nodes: list[int] | None = None

    for _ in range(max_passes):
        #: per-pass k-ary gain state.  ``rows[v]`` is v's connectivity row
        #: (None until v reaches the boundary); ``best_gain``/``best_target``
        #: mirror v's live queue entry (−inf/−1 = no entry).
        rows: list[list[float] | None] = [None] * num_nodes
        #: parts each row has (ever had) weight towards — scan_best iterates
        #: this short list instead of all k parts.  May contain duplicates or
        #: parts whose weight decayed back to zero; both are skipped cheaply.
        row_parts: list[list[int] | None] = [None] * num_nodes
        best_gain = [neg_inf] * num_nodes
        best_target = [-1] * num_nodes
        generation = [0] * num_nodes
        locked = [False] * num_nodes
        #: move queue: (−gain, node, target, generation).  One live entry per
        #: node; the global minimum is exactly the best of the per-part
        #: bucket tops, found in O(log) instead of a k-way peek.
        heap: list[tuple[float, int, int, int]] = []

        def build_row(node: int) -> list[float]:
            row = [0.0] * num_parts
            parts: list[int] = []
            for i in range(indptr[node], indptr[node + 1]):
                part = assignment[indices[i]]
                if row[part] == 0.0:
                    parts.append(part)
                row[part] += edge_weights[i]
            rows[node] = row
            row_parts[node] = parts
            return row

        def scan_best(node: int, row: list[float], blocked_target: int = -1) -> tuple[float, int]:
            """Best (gain, target) from ``node``'s row; ties to the smallest part.

            Only connected parts are candidates — an unconnected target's
            gain (``-internal``) can never beat a connected one, and boundary
            nodes always have at least one connected foreign part.  The
            explicit smallest-part tie-break makes the scan independent of
            the candidate list's order (and of its harmless duplicates).
            With ``blocked_target`` >= 0 only currently admissible targets
            count (balance and, in greedy mode, budget), excluding the
            blocked part itself so re-queueing makes progress.
            """
            source = assignment[node]
            internal = row[source]
            node_weight = node_weights[node]
            check_admissible = blocked_target >= 0
            gain_best = neg_inf
            target_best = -1
            for part in row_parts[node]:
                if part == source:
                    continue
                towards = row[part]
                if towards == 0.0:
                    continue
                if check_admissible:
                    if part == blocked_target:
                        continue
                    if weights[part] + node_weight > max_weights[part]:
                        continue
                gain = towards - internal
                if greedy:
                    cost_delta = cost_model.delta(node, source, part)
                    if check_admissible and not cost_model.admissible(cost_delta):
                        continue
                    gain -= cost_weight * cost_delta
                if gain > gain_best or (gain == gain_best and part < target_best):
                    gain_best = gain
                    target_best = part
            return gain_best, target_best

        seeded = _seed_kway_queue(
            csr, assignment, num_parts, external, rows, row_parts, best_gain,
            best_target, heap, build_row, scan_best, greedy, reseed_nodes,
            cost_model,
        )
        if not seeded:
            break
        moves: list[tuple[int, int, int]] = []  # (node, source, target)
        best_cut_delta = 0.0
        current_delta = 0.0
        best_prefix = 0
        negative_streak = 0
        moved_this_pass = 0
        blocked_locks = 0
        blocked_list: list[int] = []
        # Greedy mode runs to convergence within one seeding: moved nodes are
        # not locked (each accepted move strictly decreases cut +
        # cost_weight·displacement, so the loop terminates), capped defensively.
        greedy_move_cap = num_nodes * max(max_passes, 4)
        while heap and (greedy or negative_streak < max_negative_streak):
            neg_gain, node, target, entry_generation = heappop(heap)
            if locked[node] or entry_generation != generation[node]:
                continue
            gain = -neg_gain
            source = assignment[node]
            node_weight = node_weights[node]
            blocked = weights[target] + node_weight > max_weights[target]
            if greedy and not blocked:
                blocked = not cost_model.admissible(cost_model.delta(node, source, target))
            if blocked:
                retry_gain, retry_target = scan_best(node, rows[node], blocked_target=target)
                if retry_target >= 0 and (not greedy or retry_gain > _TOL):
                    generation[node] += 1
                    best_gain[node] = retry_gain
                    best_target[node] = retry_target
                    heappush(heap, (-retry_gain, node, retry_target, generation[node]))
                else:
                    locked[node] = True
                    blocked_locks += 1
                    if greedy:
                        blocked_list.append(node)
                continue
            if greedy and gain <= _TOL:
                locked[node] = True
                continue
            # Perform the move.
            assignment[node] = target
            weights[source] -= node_weight
            weights[target] += node_weight
            moved_this_pass += 1
            external[node] = weighted_degrees[node] - rows[node][target]
            if greedy:
                cost_model.spent += cost_model.delta(node, source, target)
                if moved_this_pass >= greedy_move_cap:
                    break
                fresh_gain, fresh_target = scan_best(node, rows[node])
                best_gain[node] = fresh_gain
                best_target[node] = fresh_target
                generation[node] += 1
                if fresh_target >= 0 and fresh_gain > _TOL:
                    heappush(heap, (-fresh_gain, node, fresh_target, generation[node]))
            else:
                locked[node] = True
                moves.append((node, source, target))
                current_delta += gain
                if current_delta > best_cut_delta + _TOL:
                    best_cut_delta = current_delta
                    best_prefix = len(moves)
                    negative_streak = 0
                else:
                    negative_streak += 1
            # Propagate the move: each neighbour's row changes in two slots;
            # its cached best move updates in O(1) unless the old target was
            # the vacated part (or the node just reached the boundary).
            for i in range(indptr[node], indptr[node + 1]):
                neighbor = indices[i]
                weight = edge_weights[i]
                neighbor_part = assignment[neighbor]
                if neighbor_part == target:
                    external[neighbor] -= weight
                elif neighbor_part == source:
                    external[neighbor] += weight
                if locked[neighbor]:
                    continue
                row = rows[neighbor]
                if row is None:
                    if external[neighbor] > 0.0:
                        row = build_row(neighbor)
                        fresh_gain, fresh_target = scan_best(neighbor, row)
                        best_gain[neighbor] = fresh_gain
                        best_target[neighbor] = fresh_target
                        if fresh_target >= 0 and (not greedy or fresh_gain > _TOL):
                            generation[neighbor] += 1
                            heappush(
                                heap,
                                (-fresh_gain, neighbor, fresh_target, generation[neighbor]),
                            )
                    continue
                row[source] -= weight
                row[target] += weight
                if row[target] == weight:
                    # First weight towards this part (0 + w == w exactly);
                    # a rare duplicate append (decay back through zero) is
                    # harmless — scans skip zero entries and re-visits.
                    row_parts[neighbor].append(target)
                old_gain = best_gain[neighbor]
                old_target = best_target[neighbor]
                if old_target == source or old_target == -1:
                    new_gain, new_target = scan_best(neighbor, row)
                else:
                    new_gain, new_target = old_gain, old_target
                    if neighbor_part == source:
                        new_gain += weight
                    elif neighbor_part == target:
                        new_gain -= weight
                    if target != neighbor_part:
                        candidate = row[target] - row[neighbor_part]
                        if greedy:
                            candidate -= cost_weight * cost_model.delta(
                                neighbor, neighbor_part, target
                            )
                        if candidate > new_gain or (
                            candidate == new_gain and target < new_target
                        ):
                            new_gain = candidate
                            new_target = target
                if new_gain != old_gain or new_target != old_target:
                    best_gain[neighbor] = new_gain
                    best_target[neighbor] = new_target
                    generation[neighbor] += 1
                    if new_target >= 0 and (not greedy or new_gain > _TOL):
                        heappush(
                            heap,
                            (-new_gain, neighbor, new_target, generation[neighbor]),
                        )
        if not greedy:
            # Roll back the moves after the best prefix.  Neighbour external
            # updates only need *current* parts; the undone node's own
            # external is recomputed exactly from its adjacency.
            for node, source, target in reversed(moves[best_prefix:]):
                assignment[node] = source
                node_weight = node_weights[node]
                weights[target] -= node_weight
                weights[source] += node_weight
                start, end = indptr[node], indptr[node + 1]
                cross = 0.0
                for neighbor, weight in zip(indices[start:end], edge_weights[start:end]):
                    part = assignment[neighbor]
                    if part == source:
                        external[neighbor] -= weight
                    elif part == target:
                        external[neighbor] += weight
                    if part != source:
                        cross += weight
                external[node] = cross
            if best_cut_delta <= min_pass_delta:
                break
        elif (
            moved_this_pass == 0
            or blocked_locks == 0
            or moved_this_pass >= greedy_move_cap
        ):
            # Greedy convergence: the queue drained with nothing blocked, so
            # another seeding round cannot surface new net-positive moves.
            break
        else:
            # Unblocked candidates converged live; only the blocked nodes
            # need a fresh look now that part weights have shifted.
            reseed_nodes = blocked_list
    if not want_external:
        # Final-level callers discard the hint; skip the exit recompute.
        return []
    # The maintained external is only a boundary filter (the incremental
    # updates drift in ulps); recompute it exactly for the caller.
    return compute_external(csr, assignment)


def _seed_kway_queue(
    csr: CSRGraph,
    assignment: list[int],
    num_parts: int,
    external: list[float],
    rows: list,
    row_parts: list,
    best_gain: list[float],
    best_target: list[int],
    heap: list[tuple[float, int, int, int]],
    build_row,
    scan_best,
    greedy: bool,
    reseed_nodes: list[int] | None = None,
    cost_model: MoveCostModel | None = None,
) -> int:
    """Fill the k-ary gain structure with every boundary node's best move.

    Returns the number of seeded entries.  The numpy path computes the whole
    boundary's connectivity matrix with one order-preserving ``bincount``
    and takes a row-wise argmax — bit-identical to the scalar
    ``build_row``/``scan_best`` pair: same accumulation order, the same
    ``(towards - internal)`` then cost-adjustment operation order in greedy
    mode, argmax picks the smallest part on ties, and unconnected parts are
    masked out exactly as the scalar scan skips them.  Small graphs and
    blocked-node re-seeds take the scalar path outright: below a few
    thousand entries the ndarray round-trips cost more than the loop.
    """
    seeded = 0
    if csr.is_numpy and reseed_nodes is None and len(csr.indices) >= 2048:
        np = backend.numpy
        boundary = np.flatnonzero(np.asarray(external) > 0.0)
        if len(boundary) == 0:
            return 0
        part = np.asarray(assignment, dtype=np.int64)
        indptr = csr.indptr
        starts = indptr[boundary]
        degrees = indptr[boundary + 1] - starts
        total = int(degrees.sum())
        offsets = np.cumsum(degrees) - degrees
        positions = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, degrees)
            + np.repeat(starts, degrees)
        )
        local_rows = np.repeat(np.arange(len(boundary), dtype=np.int64), degrees)
        connectivity = np.bincount(
            local_rows * num_parts + part[csr.indices[positions]],
            weights=csr.edge_weights[positions],
            minlength=len(boundary) * num_parts,
        ).reshape(len(boundary), num_parts)
        row_lists = connectivity.tolist()
        nonzero_rows, nonzero_cols = np.nonzero(connectivity)
        part_offsets = np.cumsum(
            np.bincount(nonzero_rows, minlength=len(boundary))
        ).tolist()
        nonzero_cols = nonzero_cols.tolist()
        row_ids = np.arange(len(boundary))
        source_parts = part[boundary]
        internal = connectivity[row_ids, source_parts]
        if greedy:
            # Candidate gains with migration-cost charging, in the scalar
            # operation order: (towards - internal), then -= cost_weight *
            # cost_delta.  Leaving home charges every foreign target the
            # same penalty (uniform row shift); a foreign node's home target
            # gets the refund.  Unconnected parts are no candidates.
            adjusted = connectivity - internal[:, None]
            adjusted[connectivity == 0.0] = -np.inf
            adjusted[row_ids, source_parts] = -np.inf
            penalty = cost_model.cost_weight * np.asarray(cost_model.costs)[boundary]
            home = np.asarray(cost_model.home, dtype=np.int64)[boundary]
            leaving = source_parts == home
            adjusted[leaving] -= penalty[leaving][:, None]
            foreign = ~leaving
            adjusted[row_ids[foreign], home[foreign]] += penalty[foreign]
            targets = np.argmax(adjusted, axis=1)
            gains = adjusted[row_ids, targets].tolist()
        else:
            masked = connectivity.copy()
            # Unconnected parts are no candidates (matches the scalar scan);
            # a maintained-external drift can flag a node with zero true
            # foreign connectivity as boundary, so the guard is load-bearing.
            masked[masked == 0.0] = -np.inf
            masked[row_ids, source_parts] = -np.inf
            targets = np.argmax(masked, axis=1)
            gains = (masked[row_ids, targets] - internal).tolist()
        targets = targets.tolist()
        neg_inf = float("-inf")
        parts_start = 0
        for local, node in enumerate(boundary.tolist()):
            rows[node] = row_lists[local]
            parts_end = part_offsets[local]
            row_parts[node] = nonzero_cols[parts_start:parts_end]
            parts_start = parts_end
            gain = gains[local]
            if gain == neg_inf:
                # No connected foreign part: the scalar scan returns -1.
                best_gain[node] = neg_inf
                best_target[node] = -1
                continue
            target = targets[local]
            best_gain[node] = gain
            best_target[node] = target
            if greedy and gain <= _TOL:
                continue
            heap.append((-gain, node, target, 0))
            seeded += 1
        heapq.heapify(heap)
        return seeded
    candidates = range(csr.num_nodes) if reseed_nodes is None else reseed_nodes
    for node in candidates:
        if external[node] <= 0.0:
            continue
        gain, target = scan_best(node, build_row(node))
        best_gain[node] = gain
        best_target[node] = target
        if target < 0 or (greedy and gain <= _TOL):
            continue
        heap.append((-gain, node, target, 0))
        seeded += 1
    heapq.heapify(heap)
    return seeded


def greedy_kway_refine(
    graph: Graph | CSRGraph,
    assignment: list[int],
    num_parts: int,
    max_weights: list[float],
    max_passes: int = 3,
) -> list[int]:
    """Greedy boundary refinement for a k-way assignment (modified in place).

    Only nodes flagged as (potentially) on the partition boundary are
    examined: a node with every neighbour in its own partition can never have
    a positive move gain, so interior nodes are skipped outright.  The flag
    is conservative — moving a node re-flags its neighbourhood — which keeps
    the pass exact while making converged passes nearly free.
    """
    csr = as_csr(graph)
    num_nodes = csr.num_nodes
    if num_nodes == 0 or num_parts <= 1:
        return assignment
    indptr, indices, edge_weights, node_weights = csr.lists()
    weights = side_weights(csr, assignment, num_parts)
    # Conservative boundary flags, from the (vectorised) exact boundary.
    external = compute_external(csr, assignment)
    on_boundary = [cross > 0.0 for cross in external]
    connectivity = [0.0] * num_parts
    parts_touched: list[int] = []
    for _ in range(max_passes):
        improved = False
        for node in range(num_nodes):
            if not on_boundary[node]:
                continue
            start, end = indptr[node], indptr[node + 1]
            if start == end:
                on_boundary[node] = False
                continue
            source = assignment[node]
            for neighbor, weight in zip(indices[start:end], edge_weights[start:end]):
                part = assignment[neighbor]
                if connectivity[part] == 0.0:
                    parts_touched.append(part)
                connectivity[part] += weight
            internal = connectivity[source]
            best_part = source
            best_gain = 0.0
            node_weight = node_weights[node]
            external_parts = 0
            for part in parts_touched:
                if part == source:
                    continue
                external_parts += 1
                gain = connectivity[part] - internal
                if gain > best_gain + _TOL and weights[part] + node_weight <= max_weights[part]:
                    best_gain = gain
                    best_part = part
            for part in parts_touched:
                connectivity[part] = 0.0
            parts_touched.clear()
            if best_part != source:
                assignment[node] = best_part
                weights[source] -= node_weight
                weights[best_part] += node_weight
                improved = True
                # The move may have pulled neighbours onto the boundary.
                for neighbor in indices[start:end]:
                    on_boundary[neighbor] = True
            elif external_parts == 0:
                # Interior node: stays skippable until a neighbour moves.
                on_boundary[node] = False
        if not improved:
            break
    return assignment


def rebalance(
    graph: Graph | CSRGraph,
    assignment: list[int],
    num_parts: int,
    max_weights: list[float],
) -> list[int]:
    """Move nodes out of overweight partitions, preferring low-connectivity nodes.

    Used as a last resort when the initial k-way assignment is slightly
    infeasible (e.g. one giant coalesced node).  Cut quality is a secondary
    concern here; feasibility comes first.
    """
    csr = as_csr(graph)
    indptr, indices, edge_weights, node_weights = csr.lists()
    weights = side_weights(csr, assignment, num_parts)
    overweight = [part for part in range(num_parts) if weights[part] > max_weights[part]]
    if not overweight:
        return assignment

    def internal_weight(node: int) -> float:
        part = assignment[node]
        return sum(
            edge_weights[i]
            for i in range(indptr[node], indptr[node + 1])
            if assignment[indices[i]] == part
        )

    for part in overweight:
        movable = sorted(
            (node for node in csr.nodes() if assignment[node] == part),
            key=internal_weight,
        )
        for node in movable:
            if weights[part] <= max_weights[part]:
                break
            node_weight = node_weights[node]
            # Send the node to the partition with the most slack.
            target = min(
                (candidate for candidate in range(num_parts) if candidate != part),
                key=lambda candidate: weights[candidate] / max(max_weights[candidate], 1e-9),
            )
            assignment[node] = target
            weights[part] -= node_weight
            weights[target] += node_weight
    return assignment
