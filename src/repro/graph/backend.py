"""Array-backend selection for the frozen CSR pipeline.

The partitioner's frozen :class:`~repro.graph.model.CSRGraph` stores its
``indptr``/``indices``/``edge_weights``/``node_weights`` arrays in one of two
interchangeable backends:

* ``numpy`` — ``float64``/``int64`` ndarrays.  Bulk kernels (freezing,
  ``subview`` extraction, coarsening scatter-accumulate, FM gain
  initialisation) run as vectorised array operations.
* ``list`` — flat Python lists, the dependency-free fallback.  Every kernel
  has a pure-Python implementation that produces **bit-identical** results:
  each vectorised kernel is written so its floating-point additions happen in
  exactly the same order as the scalar loop (order-preserving ``bincount`` /
  stable-sort + ``reduceat`` formulations), so a fixed seed yields the same
  assignment on either backend.  ``tests/graph/test_backend_parity.py``
  enforces this.

Selection happens once at import from the ``REPRO_ARRAY_BACKEND`` environment
variable (``auto`` — the default — picks numpy when importable, ``numpy``
forces it and raises if missing, ``list`` forces the fallback) and can be
changed at runtime with :func:`set_array_backend` / :func:`backend_context`
(tests, benchmarks).  Switching affects **newly built** ``CSRGraph`` objects
only; existing instances keep the arrays they were built with — both kinds
keep working side by side because the scalar kernels go through
:meth:`CSRGraph.lists`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

try:  # optional dependency: the library must work without numpy installed
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _numpy = None

#: the numpy module when importable, else None.  Kernels must only reach for
#: it through :func:`use_numpy` so the runtime override is respected.
numpy = _numpy

_VALID = ("numpy", "list")


def _resolve(requested: str) -> str:
    requested = requested.strip().lower() or "auto"
    if requested == "auto":
        return "numpy" if _numpy is not None else "list"
    if requested not in _VALID:
        raise ValueError(
            f"REPRO_ARRAY_BACKEND must be one of 'auto', 'numpy', 'list'; got {requested!r}"
        )
    if requested == "numpy" and _numpy is None:
        raise ImportError("REPRO_ARRAY_BACKEND=numpy but numpy is not importable")
    return requested


_backend = _resolve(os.environ.get("REPRO_ARRAY_BACKEND", "auto"))


def array_backend() -> str:
    """Name of the active backend: ``"numpy"`` or ``"list"``."""
    return _backend


def use_numpy() -> bool:
    """True when newly built CSR graphs should use numpy arrays."""
    return _backend == "numpy"


def set_array_backend(name: str) -> str:
    """Switch the backend for subsequently built CSR graphs; returns the old name."""
    global _backend
    previous = _backend
    _backend = _resolve(name)
    return previous


@contextmanager
def backend_context(name: str) -> Iterator[str]:
    """Temporarily switch the array backend (used by parity tests)."""
    previous = set_array_backend(name)
    try:
        yield _backend
    finally:
        set_array_backend(previous)


# -- conversion helpers ----------------------------------------------------------------
def as_index_array(values) -> "object":
    """``values`` as the backend's integer array type (int64 ndarray or list)."""
    if _backend == "numpy":
        return _numpy.asarray(values, dtype=_numpy.int64)
    if isinstance(values, list):
        return values
    return [int(value) for value in values]


def as_weight_array(values) -> "object":
    """``values`` as the backend's float array type (float64 ndarray or list)."""
    if _backend == "numpy":
        return _numpy.asarray(values, dtype=_numpy.float64)
    if isinstance(values, list):
        return values
    return [float(value) for value in values]


def to_list(values) -> list:
    """A plain Python list view of either backend's array type."""
    if isinstance(values, list):
        return values
    return values.tolist()
