"""Schism: workload-driven database replication and partitioning (VLDB 2010).

A pure-Python reproduction of Curino, Jones, Zhang and Madden's Schism
system: it takes a database, a representative OLTP workload, and a number of
partitions, and produces a replication/partitioning strategy that minimises
distributed transactions while keeping partitions balanced.

Typical use::

    from repro import Pipeline, SchismOptions
    from repro.workloads import generate_tpcc

    bundle = generate_tpcc()
    run = Pipeline(SchismOptions(num_partitions=2)).run(bundle.database, bundle.workload)
    plan = run.plan(workload=bundle.name)
    plan.save("plan.json")           # the durable artifact
    print(plan.describe())

or, from a shell::

    python -m repro run --workload tpcc --partitions 2 --out plan.json

The legacy one-call facade (``Schism``/``run_schism``) still works and now
shims onto the pipeline.
"""

from repro.core.schism import Schism, SchismOptions, SchismResult, run_schism, start_online
from repro.core.strategies import (
    CompositePartitioning,
    FullReplication,
    HashPartitioning,
    LookupTablePartitioning,
    PartitioningStrategy,
    RangePredicatePartitioning,
)
from repro.core.cost import CostReport, evaluate_strategy
from repro.core.validation import validate_strategies
from repro.engine.database import Database
from repro.pipeline import (
    PartitionPlan,
    PhaseTimings,
    Pipeline,
    PipelineRun,
    PipelineState,
    PlanDiff,
)
from repro.workload.trace import Transaction, Workload
from repro.workload.rwsets import extract_access_trace
from repro.workload.splitter import split_workload

__version__ = "2.0.0"

__all__ = [
    "CompositePartitioning",
    "CostReport",
    "Database",
    "FullReplication",
    "HashPartitioning",
    "LookupTablePartitioning",
    "PartitionPlan",
    "PartitioningStrategy",
    "PhaseTimings",
    "Pipeline",
    "PipelineRun",
    "PipelineState",
    "PlanDiff",
    "RangePredicatePartitioning",
    "Schism",
    "SchismOptions",
    "SchismResult",
    "Transaction",
    "Workload",
    "__version__",
    "evaluate_strategy",
    "extract_access_trace",
    "run_schism",
    "split_workload",
    "start_online",
    "validate_strategies",
]
