"""Schism: workload-driven database replication and partitioning (VLDB 2010).

A pure-Python reproduction of Curino, Jones, Zhang and Madden's Schism
system: it takes a database, a representative OLTP workload, and a number of
partitions, and produces a replication/partitioning strategy that minimises
distributed transactions while keeping partitions balanced.

Typical use::

    from repro import Schism, SchismOptions
    from repro.workloads import generate_tpcc

    bundle = generate_tpcc()
    result = Schism(SchismOptions(num_partitions=2)).run(bundle.database, bundle.workload)
    print(result.describe())
"""

from repro.core.schism import Schism, SchismOptions, SchismResult, run_schism
from repro.core.strategies import (
    CompositePartitioning,
    FullReplication,
    HashPartitioning,
    LookupTablePartitioning,
    PartitioningStrategy,
    RangePredicatePartitioning,
)
from repro.core.cost import CostReport, evaluate_strategy
from repro.core.validation import validate_strategies
from repro.engine.database import Database
from repro.workload.trace import Transaction, Workload
from repro.workload.rwsets import extract_access_trace
from repro.workload.splitter import split_workload

__version__ = "1.0.0"

__all__ = [
    "CompositePartitioning",
    "CostReport",
    "Database",
    "FullReplication",
    "HashPartitioning",
    "LookupTablePartitioning",
    "PartitioningStrategy",
    "RangePredicatePartitioning",
    "Schism",
    "SchismOptions",
    "SchismResult",
    "Transaction",
    "Workload",
    "__version__",
    "evaluate_strategy",
    "extract_access_trace",
    "run_schism",
    "split_workload",
    "validate_strategies",
]
