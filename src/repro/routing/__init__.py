"""Middleware routing layer: lookup-table backends and the statement router.

Corresponds to Appendix C of the paper: the router parses each statement's
WHERE clause, compares the extracted conditions to the partitioning scheme
(lookup tables, range predicates, or hashing), and returns the set of
partitions the statement must be sent to, broadcasting when it cannot narrow
the destination.  Reads of replicated tuples prefer partitions the transaction
has already touched.
"""

from repro.routing.lookup import (
    BitArrayLookupTable,
    BloomFilterLookupTable,
    DictLookupTable,
    LookupTable,
    build_lookup_table,
)
from repro.routing.router import Router, RoutingDecision, TransactionRoutingContext

__all__ = [
    "BitArrayLookupTable",
    "BloomFilterLookupTable",
    "DictLookupTable",
    "LookupTable",
    "Router",
    "RoutingDecision",
    "TransactionRoutingContext",
    "build_lookup_table",
]
