"""Statement and transaction routing (Appendix C.2 of the paper).

Given a partitioning strategy (and, for fine-grained schemes, a lookup
table), the router decides which partitions each statement must be sent to:

* statements whose WHERE clause pins the partitioning attributes (or the
  primary key, for lookup tables) are sent only to the owning partition(s);
* statements over other attributes are broadcast to every partition and the
  results unioned;
* reads of replicated tuples are sent to a single replica, preferring a
  partition the surrounding transaction has already touched — this is the
  replica-selection optimisation the paper credits with reducing distributed
  transactions for read-mostly workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import Schema
from repro.catalog.tuples import TupleId
from repro.core.strategies import PartitioningStrategy
from repro.obs import get_telemetry
from repro.routing.lookup import LookupTable
from repro.sqlparse.ast import InsertStatement, Statement, is_write, statement_tables
from repro.sqlparse.predicates import AttributeCondition, conjunctive_conditions, statement_where
from repro.workload.trace import Transaction


@dataclass(frozen=True)
class RoutingDecision:
    """Where one statement must be executed."""

    statement: Statement
    partitions: frozenset[int]
    broadcast: bool
    reason: str

    @property
    def is_single_partition(self) -> bool:
        """Whether the statement touches exactly one partition."""
        return len(self.partitions) == 1


@dataclass
class TransactionRoutingContext:
    """State carried across the statements of one transaction."""

    touched_partitions: set[int] = field(default_factory=set)

    def record(self, decision: RoutingDecision) -> None:
        """Remember the partitions a routed statement will touch."""
        self.touched_partitions.update(decision.partitions)


_NO_EXTRA: frozenset[int] = frozenset()


class MigrationWindow:
    """Dual-write window a journaled migration opens on the router.

    While a migration is in flight, a write to a tuple whose placement is
    changing must reach the replicas being *added* as well as the current
    ones — otherwise an update landing after the copy step would be lost at
    the new location.  Reads keep preferring the source placement (the
    lookup table is untouched until the routing flip), so the window only
    widens the destination set of pk-resolved **writes**.

    The window maps each in-flight tuple to its extra write partitions; it
    opens before the first copy and closes at the routing flip (forward
    path) or once rollback restores the old placement (cancel path).
    """

    def __init__(self) -> None:
        self._extra: dict[TupleId, frozenset[int]] = {}
        self._window_events = get_telemetry().metrics.counter(
            "router.window",
            "dual-write window lifecycle (opens/closes with in-flight tuples)",
            labels=("event",),
        )

    def __bool__(self) -> bool:
        return bool(self._extra)

    def __len__(self) -> int:
        return len(self._extra)

    def open(self, entries) -> None:
        """Start dual-writing: ``entries`` yields ``(tuple_id, extra)`` pairs."""
        for tuple_id, extra in entries:
            if extra:
                self._extra[tuple_id] = frozenset(extra)
        if self._extra:
            self._window_events.inc(event="opened")

    def close(self) -> None:
        """Stop dual-writing (after the flip, or once rollback completes)."""
        if self._extra:
            self._window_events.inc(event="closed")
        self._extra.clear()

    def extra_write_partitions(self, tuple_id: TupleId) -> frozenset[int]:
        """Extra partitions a write to ``tuple_id`` must also reach."""
        return self._extra.get(tuple_id, _NO_EXTRA)


class Router:
    """Routes statements according to a partitioning strategy."""

    def __init__(
        self,
        strategy: PartitioningStrategy,
        schema: Schema | None = None,
        lookup_table: LookupTable | None = None,
    ) -> None:
        self.strategy = strategy
        self.schema = schema
        self.lookup_table = lookup_table
        self.num_partitions = strategy.num_partitions
        #: dual-write window of an in-flight migration (empty when idle).
        self.migration_window = MigrationWindow()
        self._dual_writes = get_telemetry().metrics.counter(
            "router.dual_writes", "writes widened by the dual-write window"
        )

    def replace_strategy(
        self, strategy: PartitioningStrategy, lookup_table: LookupTable | None = None
    ) -> None:
        """Swap in a new strategy (and lookup table), e.g. after an elastic resize.

        All three fields change together so ``num_partitions`` can never
        disagree with the strategy; in CPython each rebind is atomic, and the
        elastic controller only calls this after the migration copies have
        completed, so statements routed under either generation of the state
        find resident replicas.
        """
        self.strategy = strategy
        self.lookup_table = lookup_table
        self.num_partitions = strategy.num_partitions

    # -- statements ----------------------------------------------------------------------
    def route_statement(
        self,
        statement: Statement,
        context: TransactionRoutingContext | None = None,
    ) -> RoutingDecision:
        """Decide the destination partitions of one statement."""
        all_partitions = frozenset(range(self.num_partitions))
        destinations: set[int] = set()
        broadcast = False
        reasons: list[str] = []
        conditions = self._statement_conditions(statement)
        for table in statement_tables(statement):
            table_conditions = [
                condition
                for condition in conditions
                if condition.table in (None, table)
            ]
            resolved_by_lookup = False
            partitions = self._lookup_route(table, table_conditions, statement, context)
            if partitions is not None:
                resolved_by_lookup = True
            else:
                partitions = self.strategy.partitions_for_conditions(table, table_conditions)
            if partitions is None:
                destinations.update(all_partitions)
                broadcast = True
                reasons.append(f"{table}: broadcast")
                continue
            if (
                not resolved_by_lookup
                and not is_write(statement)
                and partitions == all_partitions
                and len(partitions) > 1
            ):
                # The table (or matching rows) is replicated everywhere: a read
                # only needs one replica, preferably one we already visit.
                partitions = frozenset({self._pick_replica(partitions, context)})
                reasons.append(f"{table}: replicated read")
            else:
                reasons.append(f"{table}: routed")
            destinations.update(partitions)
        if not destinations:
            destinations = set(all_partitions)
            broadcast = True
            reasons.append("no destination: broadcast")
        decision = RoutingDecision(
            statement, frozenset(destinations), broadcast, "; ".join(reasons)
        )
        if context is not None:
            context.record(decision)
        return decision

    def route_transaction(self, transaction: Transaction) -> list[RoutingDecision]:
        """Route every statement of a transaction, sharing one routing context."""
        context = TransactionRoutingContext()
        return [self.route_statement(statement, context) for statement in transaction.statements]

    def transaction_participants(self, transaction: Transaction) -> frozenset[int]:
        """Union of destination partitions across a transaction's statements."""
        participants: set[int] = set()
        for decision in self.route_transaction(transaction):
            participants.update(decision.partitions)
        return frozenset(participants)

    def participants_for_workload(self, workload) -> list[frozenset[int]]:
        """Participant sets of every transaction of a workload, in order.

        The routing signature of a deployment: two routers that agree on
        this list for a workload are indistinguishable to it.  Used by the
        plan round-trip tests (save -> load -> deploy must not change a
        single routing decision) and the CLI's ``deploy`` report.
        """
        return [
            self.transaction_participants(transaction) for transaction in workload
        ]

    def placement_of(self, tuple_id: TupleId) -> frozenset[int]:
        """Full replica set of one tuple (lookup table first, then strategy).

        Where :meth:`route_statement` narrows a replicated read to a single
        replica, this returns every partition holding the tuple — the
        fallback set a storage coordinator walks when the chosen replica's
        worker is unreachable.
        """
        if self.lookup_table is not None:
            placement = self.lookup_table.get(tuple_id)
            if placement is not None:
                return placement
        return self.strategy.partitions_for_tuple(tuple_id)

    # -- helpers ------------------------------------------------------------------------
    def _statement_conditions(self, statement: Statement) -> list[AttributeCondition]:
        if isinstance(statement, InsertStatement):
            return [
                AttributeCondition(statement.table, column, "=", value)
                for column, value in statement.row.items()
            ]
        return conjunctive_conditions(statement_where(statement))

    def _lookup_route(
        self,
        table: str,
        conditions: list[AttributeCondition],
        statement: Statement,
        context: TransactionRoutingContext | None,
    ) -> frozenset[int] | None:
        """Resolve primary-key equality conditions through the lookup table.

        Each matched key contributes its placement; for reads, a key stored on
        several partitions (a replicated tuple) only contributes one replica,
        chosen to coincide with partitions already involved where possible.
        """
        if self.lookup_table is None or self.schema is None or not self.schema.has_table(table):
            return None
        primary_key = self.schema.table(table).primary_key
        values: dict[str, tuple[object, ...]] = {}
        for condition in conditions:
            if condition.column in primary_key:
                candidates = condition.candidate_values()
                if candidates:
                    values[condition.column] = candidates
        if set(values) != set(primary_key):
            return None
        keys: list[tuple[object, ...]] = [()]
        for column in primary_key:
            keys = [key + (value,) for key in keys for value in values[column]]
        partitions: set[int] = set()
        writing = is_write(statement)
        window = self.migration_window
        for key in keys:
            tuple_id = TupleId(table, key)
            placement = self.lookup_table.get(tuple_id)
            if placement is None:
                # Unknown tuple: defer to the strategy (its default policy).
                placement = self.strategy.partitions_for_tuple(tuple_id)
            if not writing and len(placement) > 1:
                already = placement & partitions
                if context is not None and not already:
                    already = placement & frozenset(context.touched_partitions)
                partitions.add(min(already) if already else min(placement))
            else:
                partitions.update(placement)
                if writing and window:
                    # Dual-write window: a migration in flight needs writes
                    # to also land on the replicas being added, or updates
                    # applied after the copy step would be lost at the new
                    # location.  Reads stay on the source placement.
                    extra = window.extra_write_partitions(tuple_id)
                    if extra:
                        partitions.update(extra)
                        self._dual_writes.inc()
        return frozenset(partitions) if partitions else None

    def _pick_replica(
        self, replicas: frozenset[int], context: TransactionRoutingContext | None
    ) -> int:
        if context is not None:
            already = replicas & frozenset(context.touched_partitions)
            if already:
                return min(already)
        return min(replicas)
