"""Lookup-table backends (Appendix C.1 of the paper).

Three physical representations of the tuple -> partition-set mapping:

* :class:`DictLookupTable` — a hash index; works for any key type, largest
  memory footprint, exact answers.
* :class:`BitArrayLookupTable` — one byte per key for dense integer keys and
  up to 255 partitions (the paper's "one byte per ID for 15 billion tuples"
  back-of-envelope); replicated tuples fall back to a small side dict.
* :class:`BloomFilterLookupTable` — one Bloom filter per partition; compact
  but allows false positives, which cost extra participants, never
  correctness.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.catalog.tuples import TupleId
from repro.core.strategies import stable_hash
from repro.graph.assignment import PartitionAssignment


class LookupTable(ABC):
    """Mapping from tuple id to the set of partitions storing the tuple."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions

    @abstractmethod
    def put(self, tuple_id: TupleId, partitions: frozenset[int]) -> None:
        """Record that ``tuple_id`` lives on ``partitions`` (overwriting any prior entry)."""

    @abstractmethod
    def get(self, tuple_id: TupleId) -> frozenset[int] | None:
        """Partitions storing ``tuple_id`` (None when unknown)."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the backend."""

    def supports_update(self) -> bool:
        """Whether :meth:`put` can correctly *narrow* an existing entry.

        Bloom filters cannot unset bits, so re-partitioning must rebuild
        them; the exact backends update in place.  Live migration uses this
        to decide between ``apply_delta`` and a full table rebuild + swap.
        """
        return True

    def entries(self) -> Iterator[tuple[TupleId, frozenset[int]]]:
        """Iterate all ``(tuple_id, replica set)`` entries (exact backends only).

        Bloom filters cannot enumerate their members, so they raise
        ``NotImplementedError`` — callers that need enumeration (consistency
        checks, rebuilds at a new partition count) must keep the authoritative
        :class:`PartitionAssignment` around, which is exactly what the
        elastic controller's wholesale-swap path does.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot enumerate its entries"
        )

    def load(self, assignment: PartitionAssignment) -> "LookupTable":
        """Bulk-load from a :class:`PartitionAssignment`."""
        for tuple_id in assignment:
            placement = assignment.partitions_of(tuple_id)
            assert placement is not None
            self.put(tuple_id, placement)
        return self

    def apply_delta(self, changes: Iterable[tuple[TupleId, frozenset[int]]]) -> int:
        """Apply placement changes in bulk; returns the number of entries written.

        This is the live-migration update path: after a budgeted
        re-partition only the moved tuples are re-written, instead of
        rebuilding the whole table.  Backends for which in-place narrowing
        is unsound (``supports_update() == False``) must be rebuilt instead.
        """
        if not self.supports_update():
            raise ValueError(
                f"{type(self).__name__} cannot update entries in place; rebuild it"
            )
        count = 0
        for tuple_id, partitions in changes:
            self.put(tuple_id, partitions)
            count += 1
        return count


class DictLookupTable(LookupTable):
    """Exact lookup table backed by a Python dict.

    >>> from repro.catalog.tuples import TupleId
    >>> table = DictLookupTable(num_partitions=2)
    >>> table.put(TupleId("users", (7,)), frozenset({1}))
    >>> sorted(table.get(TupleId("users", (7,))))
    [1]
    >>> table.get(TupleId("users", (8,))) is None
    True
    """

    def __init__(self, num_partitions: int) -> None:
        super().__init__(num_partitions)
        self._mapping: dict[TupleId, frozenset[int]] = {}

    def put(self, tuple_id: TupleId, partitions: frozenset[int]) -> None:
        self._mapping[tuple_id] = frozenset(partitions)

    def get(self, tuple_id: TupleId) -> frozenset[int] | None:
        return self._mapping.get(tuple_id)

    def memory_bytes(self) -> int:
        # Rough: ~100 bytes of Python overhead per entry.
        return 100 * len(self._mapping)

    def entries(self) -> Iterator[tuple[TupleId, frozenset[int]]]:
        return iter(self._mapping.items())

    def __len__(self) -> int:
        return len(self._mapping)

    def __iter__(self) -> Iterator[TupleId]:
        return iter(self._mapping)


class BitArrayLookupTable(LookupTable):
    """One byte per dense integer key, per table.

    Requires single-column integer primary keys.  The byte stores
    ``partition + 1`` (0 means "unknown"); replicated tuples are stored in a
    small overflow dict because a single byte cannot encode a set.
    """

    _UNKNOWN = 0

    def __init__(self, num_partitions: int, initial_capacity: int = 1024) -> None:
        super().__init__(num_partitions)
        if num_partitions > 255:
            raise ValueError("BitArrayLookupTable supports at most 255 partitions")
        self._arrays: dict[str, bytearray] = {}
        self._replicated: dict[TupleId, frozenset[int]] = {}
        self._initial_capacity = max(16, initial_capacity)

    def _array_for(self, table: str, key: int) -> bytearray:
        array = self._arrays.get(table)
        if array is None:
            array = bytearray(max(self._initial_capacity, key + 1))
            self._arrays[table] = array
        if key >= len(array):
            grown = bytearray(max(key + 1, len(array) * 2))
            grown[: len(array)] = array
            self._arrays[table] = grown
            array = grown
        return array

    @staticmethod
    def _int_key(tuple_id: TupleId) -> int:
        if len(tuple_id.key) != 1 or not isinstance(tuple_id.key[0], int) or tuple_id.key[0] < 0:
            raise TypeError(
                "BitArrayLookupTable requires dense non-negative single-integer keys; "
                f"got {tuple_id!r}"
            )
        return tuple_id.key[0]

    def put(self, tuple_id: TupleId, partitions: frozenset[int]) -> None:
        key = self._int_key(tuple_id)
        if len(partitions) > 1:
            self._replicated[tuple_id] = frozenset(partitions)
            array = self._array_for(tuple_id.table, key)
            array[key] = self._UNKNOWN
            return
        # A tuple that used to be replicated may collapse to a single
        # partition (live migration dropping replicas): clear the overflow
        # entry or ``get`` would keep answering the stale replica set.
        self._replicated.pop(tuple_id, None)
        partition = next(iter(partitions))
        array = self._array_for(tuple_id.table, key)
        array[key] = partition + 1

    def get(self, tuple_id: TupleId) -> frozenset[int] | None:
        if tuple_id in self._replicated:
            return self._replicated[tuple_id]
        try:
            key = self._int_key(tuple_id)
        except TypeError:
            return None
        array = self._arrays.get(tuple_id.table)
        if array is None or key >= len(array):
            return None
        value = array[key]
        if value == self._UNKNOWN:
            return None
        return frozenset({value - 1})

    def entries(self) -> Iterator[tuple[TupleId, frozenset[int]]]:
        for table, array in self._arrays.items():
            for key, value in enumerate(array):
                if value != self._UNKNOWN:
                    yield TupleId(table, (key,)), frozenset({value - 1})
        yield from self._replicated.items()

    def memory_bytes(self) -> int:
        return sum(len(array) for array in self._arrays.values()) + 100 * len(self._replicated)


class BloomFilterLookupTable(LookupTable):
    """One Bloom filter per partition.

    ``get`` returns the set of partitions whose filter claims the tuple; this
    may include false positives (extra participants) but never misses a true
    location.  Unknown tuples typically hit zero filters, reported as None.
    """

    def __init__(
        self,
        num_partitions: int,
        expected_items: int = 10_000,
        false_positive_rate: float = 0.01,
    ) -> None:
        super().__init__(num_partitions)
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError("false_positive_rate must be in (0, 1)")
        self._bits_per_filter = max(
            64,
            int(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)),
        )
        self._hash_count = max(1, int(round(self._bits_per_filter / max(1, expected_items) * math.log(2))))
        self._filters = [bytearray(self._bits_per_filter // 8 + 1) for _ in range(num_partitions)]

    def _positions(self, tuple_id: TupleId) -> list[int]:
        base = stable_hash((tuple_id.table, tuple_id.key))
        second = stable_hash((tuple_id.key, tuple_id.table, "salt"))
        return [
            (base + index * second) % self._bits_per_filter for index in range(self._hash_count)
        ]

    def supports_update(self) -> bool:
        # Bits can only be set, never cleared: moving a tuple off a partition
        # cannot be expressed, so migration rebuilds Bloom tables wholesale.
        return False

    def put(self, tuple_id: TupleId, partitions: frozenset[int]) -> None:
        positions = self._positions(tuple_id)
        for partition in partitions:
            filter_bits = self._filters[partition]
            for position in positions:
                filter_bits[position // 8] |= 1 << (position % 8)

    def get(self, tuple_id: TupleId) -> frozenset[int] | None:
        positions = self._positions(tuple_id)
        hits = set()
        for partition, filter_bits in enumerate(self._filters):
            if all(filter_bits[position // 8] & (1 << (position % 8)) for position in positions):
                hits.add(partition)
        return frozenset(hits) if hits else None

    def memory_bytes(self) -> int:
        return sum(len(filter_bits) for filter_bits in self._filters)


def build_lookup_table(
    assignment: PartitionAssignment,
    backend: str = "dict",
    **kwargs: object,
) -> LookupTable:
    """Build and load a lookup table of the requested backend.

    ``backend`` is one of ``"dict"``, ``"bitarray"``, ``"bloom"``.
    """
    if backend == "dict":
        table: LookupTable = DictLookupTable(assignment.num_partitions)
    elif backend == "bitarray":
        table = BitArrayLookupTable(assignment.num_partitions, **kwargs)  # type: ignore[arg-type]
    elif backend == "bloom":
        table = BloomFilterLookupTable(assignment.num_partitions, **kwargs)  # type: ignore[arg-type]
    else:
        raise ValueError(f"unknown lookup-table backend {backend!r}")
    return table.load(assignment)
