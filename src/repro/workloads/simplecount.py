"""The ``simplecount`` micro-benchmark of Section 3 ("The Price of Distribution").

One table with ``id`` and ``counter`` columns; every transaction issues two
single-row SELECTs.  Two access patterns are generated:

* ``single_partition=True`` — both rows of a transaction come from the same
  client block, so a block-aligned range partitioning executes every
  transaction on one server;
* ``single_partition=False`` — the two rows are drawn from different blocks,
  so with more than one server every transaction is distributed.
"""

from __future__ import annotations

from repro.catalog.schema import Schema, Table, integer_column
from repro.core.strategies import CompositePartitioning, PartitioningStrategy, range_on
from repro.engine.database import Database
from repro.sqlparse.ast import SelectStatement, eq
from repro.utils.rng import SeededRng
from repro.workload.trace import Workload
from repro.workloads.base import WorkloadBundle


def simplecount_schema() -> Schema:
    """Schema with the single ``simplecount`` table."""
    return Schema(
        "simplecount",
        [
            Table(
                "simplecount",
                [integer_column("id"), integer_column("counter")],
                primary_key=["id"],
            )
        ],
    )


def generate_simplecount(
    num_rows: int = 1500,
    num_transactions: int = 2000,
    num_blocks: int = 5,
    single_partition: bool = True,
    seed: int = 0,
) -> WorkloadBundle:
    """Generate the simplecount database and workload.

    ``num_blocks`` models the number of servers in the paper's experiment:
    the table is divided into that many equal blocks, and the
    ``single_partition`` flag controls whether both reads of a transaction
    fall into the same block.
    """
    if num_rows % num_blocks != 0:
        raise ValueError("num_rows must be divisible by num_blocks")
    rng = SeededRng(seed)
    database = Database(simplecount_schema())
    for row_id in range(num_rows):
        database.insert_row("simplecount", {"id": row_id, "counter": 0})
    block_size = num_rows // num_blocks
    workload = Workload("simplecount" + ("-local" if single_partition else "-distributed"))
    for _ in range(num_transactions):
        if single_partition:
            block = rng.randint(0, num_blocks - 1)
            first = block * block_size + rng.randint(0, block_size - 1)
            second = block * block_size + rng.randint(0, block_size - 1)
        else:
            first_block = rng.randint(0, num_blocks - 1)
            second_block = (first_block + 1 + rng.randint(0, num_blocks - 2)) % num_blocks if num_blocks > 1 else first_block
            first = first_block * block_size + rng.randint(0, block_size - 1)
            second = second_block * block_size + rng.randint(0, block_size - 1)
        workload.add_statements(
            [
                SelectStatement(("simplecount",), where=eq("id", first)),
                SelectStatement(("simplecount",), where=eq("id", second)),
            ],
            kind="read-pair",
        )
    bundle = WorkloadBundle(
        name=workload.name,
        database=database,
        workload=workload,
        manual_strategy_factory=lambda k: simplecount_block_strategy(k, num_rows),
        hash_columns=None,
        metadata={
            "rows": num_rows,
            "transactions": num_transactions,
            "blocks": num_blocks,
            "single_partition": single_partition,
        },
    )
    return bundle


def simplecount_block_strategy(num_partitions: int, num_rows: int) -> PartitioningStrategy:
    """Range partitioning aligned with the client blocks (the "ideal" layout)."""
    boundaries = [
        (index + 1) * num_rows / num_partitions - 1 for index in range(num_partitions - 1)
    ]
    return CompositePartitioning(
        num_partitions,
        {"simplecount": range_on("id", boundaries)},
        name="block-range",
    )
