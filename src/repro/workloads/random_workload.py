"""The "Random" workload (Appendix D.5): designed to be impossible to partition.

Every transaction updates two tuples chosen uniformly at random from a single
table.  No locality exists, so lookup tables, range predicates and hash
partitioning all perform equally (a pair of uniform random tuples lands on
the same of *k* partitions with probability 1/k), while full replication is
strictly worse because every transaction is a write.  The point of the
experiment is that Schism's validation phase falls back to the simplest
strategy — hash partitioning.
"""

from __future__ import annotations

from repro.catalog.schema import Schema, Table, integer_column
from repro.engine.database import Database
from repro.sqlparse.ast import UpdateStatement, eq
from repro.utils.rng import SeededRng
from repro.workload.trace import Workload
from repro.workloads.base import WorkloadBundle


def random_schema() -> Schema:
    """A single two-column table."""
    return Schema(
        "random",
        [
            Table(
                "random_table",
                [integer_column("id"), integer_column("value")],
                primary_key=["id"],
            )
        ],
    )


def generate_random_workload(
    num_rows: int = 10_000,
    num_transactions: int = 5000,
    seed: int = 0,
) -> WorkloadBundle:
    """Generate the random pair-update workload."""
    rng = SeededRng(seed)
    database = Database(random_schema())
    for row_id in range(num_rows):
        database.insert_row("random_table", {"id": row_id, "value": 0})
    workload = Workload("random")
    for _ in range(num_transactions):
        first = rng.randint(0, num_rows - 1)
        second = rng.randint(0, num_rows - 1)
        while second == first:
            second = rng.randint(0, num_rows - 1)
        workload.add_statements(
            [
                UpdateStatement("random_table", {"value": ("delta", 1)}, where=eq("id", first)),
                UpdateStatement("random_table", {"value": ("delta", 1)}, where=eq("id", second)),
            ],
            kind="pair-update",
        )
    return WorkloadBundle(
        name="random",
        database=database,
        workload=workload,
        manual_strategy_factory=None,
        hash_columns={"random_table": ("id",)},
        metadata={"rows": num_rows, "transactions": num_transactions},
    )
