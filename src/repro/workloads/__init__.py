"""Benchmark workload generators.

Each module builds (schema + data + transaction trace) for one of the
workloads evaluated in the paper, together with the manual-partitioning
baseline used in Figure 4 where one exists:

* :mod:`repro.workloads.simplecount` — the two-read micro-benchmark of Section 3;
* :mod:`repro.workloads.ycsb` — YCSB workloads A and E;
* :mod:`repro.workloads.tpcc` — TPC-C (9 tables, 5 transaction types);
* :mod:`repro.workloads.tpce` — a reduced TPC-E (12 tables, 10 transaction types);
* :mod:`repro.workloads.epinions` — the Epinions.com social-network workload;
* :mod:`repro.workloads.random_workload` — the "impossible to partition" workload;
* :mod:`repro.workloads.drifting` — multi-phase drifting workloads
  (rotating hotspot, read-hot skew, warehouse shift) for the online
  adaptivity layer.
"""

from repro.workloads.base import WorkloadBundle
from repro.workloads.drifting import (
    DriftingWorkloadBundle,
    generate_read_hot_skew,
    generate_rotating_hotspot,
    generate_warehouse_shift_tpcc,
)
from repro.workloads.simplecount import generate_simplecount
from repro.workloads.ycsb import generate_ycsb_a, generate_ycsb_e
from repro.workloads.tpcc import TpccConfig, generate_tpcc, tpcc_manual_strategy
from repro.workloads.tpce import TpceConfig, generate_tpce
from repro.workloads.epinions import EpinionsConfig, generate_epinions, epinions_manual_strategy
from repro.workloads.random_workload import generate_random_workload

__all__ = [
    "DriftingWorkloadBundle",
    "EpinionsConfig",
    "TpccConfig",
    "TpceConfig",
    "WorkloadBundle",
    "epinions_manual_strategy",
    "generate_epinions",
    "generate_random_workload",
    "generate_read_hot_skew",
    "generate_rotating_hotspot",
    "generate_simplecount",
    "generate_tpcc",
    "generate_tpce",
    "generate_warehouse_shift_tpcc",
    "generate_ycsb_a",
    "generate_ycsb_e",
    "tpcc_manual_strategy",
]
