"""A reduced TPC-E workload (brokerage firm OLTP, Appendix D.3 of the paper).

The real TPC-E schema has 33 tables and 188 columns; this generator keeps the
twelve tables and ten transaction types that carry the workload's structure
for partitioning purposes:

* customer-centred data (``customer``, ``customer_account``, ``holding``,
  ``holding_summary``, ``watch_list``, ``watch_item``) that partitions well by
  customer;
* market-wide reference data (``security``, ``company``, ``last_trade``,
  ``broker``) that is read by everyone and occasionally updated
  (``market_feed``), which the partitioner should mostly replicate;
* the ``trade`` / ``trade_history`` fact tables linking accounts, brokers and
  securities.

The ten transaction types follow the TPC-E mix in spirit (read-heavy, with
Trade-Order / Trade-Result as the write path), producing a workload that no
single-attribute hash partitioning handles well — matching the paper's
finding of ~12% distributed transactions for Schism's range predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import ForeignKey, Schema, Table, integer_column
from repro.engine.database import Database
from repro.sqlparse.ast import (
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
    conj,
    eq,
    in_list,
)
from repro.utils.rng import SeededRng, weighted_choice
from repro.workload.trace import Workload
from repro.workloads.base import WorkloadBundle


@dataclass
class TpceConfig:
    """Scale parameters for the reduced TPC-E instance."""

    customers: int = 300
    accounts_per_customer: int = 2
    securities: int = 100
    companies: int = 50
    brokers: int = 10
    holdings_per_account: int = 4
    watch_items_per_customer: int = 5
    initial_trades_per_account: int = 3
    seed: int = 0


#: transaction mix (name, weight) approximating the TPC-E specification mix.
TRANSACTION_MIX: tuple[tuple[str, float], ...] = (
    ("trade_order", 0.101),
    ("trade_result", 0.10),
    ("trade_lookup", 0.08),
    ("trade_status", 0.19),
    ("trade_update", 0.02),
    ("customer_position", 0.13),
    ("broker_volume", 0.049),
    ("security_detail", 0.14),
    ("market_watch", 0.18),
    ("market_feed", 0.01),
)


def tpce_schema() -> Schema:
    """Twelve-table reduced TPC-E schema."""
    return Schema(
        "tpce",
        [
            Table("customer", [integer_column("c_id"), integer_column("c_tier")], ["c_id"]),
            Table(
                "customer_account",
                [integer_column("ca_id"), integer_column("ca_c_id"), integer_column("ca_b_id"), integer_column("ca_bal")],
                ["ca_id"],
                [ForeignKey(("ca_c_id",), "customer", ("c_id",)), ForeignKey(("ca_b_id",), "broker", ("b_id",))],
            ),
            Table("broker", [integer_column("b_id"), integer_column("b_num_trades")], ["b_id"]),
            Table("company", [integer_column("co_id"), integer_column("co_sector")], ["co_id"]),
            Table(
                "security",
                [integer_column("s_id"), integer_column("s_co_id"), integer_column("s_issue")],
                ["s_id"],
                [ForeignKey(("s_co_id",), "company", ("co_id",))],
            ),
            Table(
                "last_trade",
                [integer_column("lt_s_id"), integer_column("lt_price"), integer_column("lt_vol")],
                ["lt_s_id"],
                [ForeignKey(("lt_s_id",), "security", ("s_id",))],
            ),
            Table(
                "trade",
                [
                    integer_column("t_id"),
                    integer_column("t_ca_id"),
                    integer_column("t_s_id"),
                    integer_column("t_b_id"),
                    integer_column("t_qty"),
                    integer_column("t_status"),
                ],
                ["t_id"],
                [
                    ForeignKey(("t_ca_id",), "customer_account", ("ca_id",)),
                    ForeignKey(("t_s_id",), "security", ("s_id",)),
                    ForeignKey(("t_b_id",), "broker", ("b_id",)),
                ],
            ),
            Table(
                "trade_history",
                [integer_column("th_id"), integer_column("th_t_id"), integer_column("th_status")],
                ["th_id"],
                [ForeignKey(("th_t_id",), "trade", ("t_id",))],
            ),
            Table(
                "holding_summary",
                [integer_column("hs_ca_id"), integer_column("hs_s_id"), integer_column("hs_qty")],
                ["hs_ca_id", "hs_s_id"],
                [
                    ForeignKey(("hs_ca_id",), "customer_account", ("ca_id",)),
                    ForeignKey(("hs_s_id",), "security", ("s_id",)),
                ],
            ),
            Table(
                "holding",
                [
                    integer_column("h_id"),
                    integer_column("h_ca_id"),
                    integer_column("h_s_id"),
                    integer_column("h_qty"),
                ],
                ["h_id"],
                [
                    ForeignKey(("h_ca_id",), "customer_account", ("ca_id",)),
                    ForeignKey(("h_s_id",), "security", ("s_id",)),
                ],
            ),
            Table(
                "watch_list",
                [integer_column("wl_id"), integer_column("wl_c_id")],
                ["wl_id"],
                [ForeignKey(("wl_c_id",), "customer", ("c_id",))],
            ),
            Table(
                "watch_item",
                [integer_column("wl_id"), integer_column("wi_s_id")],
                ["wl_id", "wi_s_id"],
                [
                    ForeignKey(("wl_id",), "watch_list", ("wl_id",)),
                    ForeignKey(("wi_s_id",), "security", ("s_id",)),
                ],
            ),
        ],
    )


class _TpceGenerator:
    """Builds the reduced TPC-E database and trace."""

    def __init__(self, config: TpceConfig) -> None:
        self.config = config
        self.rng = SeededRng(config.seed)
        self.database = Database(tpce_schema())
        self._next_trade_id = 0
        self._next_holding_id = 0
        self._next_history_id = 0
        #: account id -> customer id, broker id, securities held
        self._accounts: dict[int, tuple[int, int, list[int]]] = {}
        self._customer_accounts: dict[int, list[int]] = {}
        self._pending_trades: list[int] = []
        self._trades_by_account: dict[int, list[int]] = {}
        self._trades_by_broker: dict[int, list[int]] = {}
        self._load()

    def _load(self) -> None:
        config = self.config
        rng = self.rng.fork("load")
        for broker_id in range(config.brokers):
            self.database.insert_row("broker", {"b_id": broker_id, "b_num_trades": 0})
        for company_id in range(config.companies):
            self.database.insert_row(
                "company", {"co_id": company_id, "co_sector": rng.randint(0, 10)}
            )
        for security_id in range(config.securities):
            self.database.insert_row(
                "security",
                {
                    "s_id": security_id,
                    "s_co_id": security_id % config.companies,
                    "s_issue": rng.randint(0, 3),
                },
            )
            self.database.insert_row(
                "last_trade",
                {"lt_s_id": security_id, "lt_price": rng.randint(10, 500), "lt_vol": 0},
            )
        account_id = 0
        for customer_id in range(config.customers):
            self.database.insert_row(
                "customer", {"c_id": customer_id, "c_tier": rng.randint(1, 3)}
            )
            self.database.insert_row("watch_list", {"wl_id": customer_id, "wl_c_id": customer_id})
            watch_securities = {
                rng.randint(0, config.securities - 1)
                for _ in range(config.watch_items_per_customer)
            }
            for security_id in watch_securities:
                self.database.insert_row(
                    "watch_item", {"wl_id": customer_id, "wi_s_id": security_id}
                )
            self._customer_accounts[customer_id] = []
            for _ in range(config.accounts_per_customer):
                broker_id = rng.randint(0, config.brokers - 1)
                self.database.insert_row(
                    "customer_account",
                    {
                        "ca_id": account_id,
                        "ca_c_id": customer_id,
                        "ca_b_id": broker_id,
                        "ca_bal": rng.randint(1000, 100000),
                    },
                )
                held: list[int] = []
                for _ in range(config.holdings_per_account):
                    security_id = rng.randint(0, config.securities - 1)
                    if security_id in held:
                        continue
                    held.append(security_id)
                    self.database.insert_row(
                        "holding_summary",
                        {"hs_ca_id": account_id, "hs_s_id": security_id, "hs_qty": rng.randint(1, 100)},
                    )
                    self.database.insert_row(
                        "holding",
                        {
                            "h_id": self._next_holding_id,
                            "h_ca_id": account_id,
                            "h_s_id": security_id,
                            "h_qty": rng.randint(1, 100),
                        },
                    )
                    self._next_holding_id += 1
                self._accounts[account_id] = (customer_id, broker_id, held)
                self._customer_accounts[customer_id].append(account_id)
                self._trades_by_account[account_id] = []
                for _ in range(config.initial_trades_per_account):
                    self._load_trade(account_id, rng)
                account_id += 1

    def _load_trade(self, account_id: int, rng: SeededRng) -> None:
        customer_id, broker_id, held = self._accounts[account_id]
        security_id = held[rng.randint(0, len(held) - 1)] if held else rng.randint(0, self.config.securities - 1)
        trade_id = self._next_trade_id
        self._next_trade_id += 1
        self.database.insert_row(
            "trade",
            {
                "t_id": trade_id,
                "t_ca_id": account_id,
                "t_s_id": security_id,
                "t_b_id": broker_id,
                "t_qty": rng.randint(1, 50),
                "t_status": 1,
            },
        )
        self.database.insert_row(
            "trade_history",
            {"th_id": self._next_history_id, "th_t_id": trade_id, "th_status": 1},
        )
        self._next_history_id += 1
        self._trades_by_account[account_id].append(trade_id)
        self._trades_by_broker.setdefault(broker_id, []).append(trade_id)

    # -- transactions ------------------------------------------------------------------
    def generate_workload(self, num_transactions: int, name: str) -> Workload:
        """Generate the ten-type transaction mix."""
        workload = Workload(name)
        builders = {
            "trade_order": self._trade_order,
            "trade_result": self._trade_result,
            "trade_lookup": self._trade_lookup,
            "trade_status": self._trade_status,
            "trade_update": self._trade_update,
            "customer_position": self._customer_position,
            "broker_volume": self._broker_volume,
            "security_detail": self._security_detail,
            "market_watch": self._market_watch,
            "market_feed": self._market_feed,
        }
        for _ in range(num_transactions):
            kind = weighted_choice(self.rng, list(TRANSACTION_MIX))
            statements = builders[kind]()
            if statements:
                workload.add_statements(statements, kind=kind)
        return workload

    def _random_account(self) -> int:
        return self.rng.randint(0, len(self._accounts) - 1)

    def _trade_order(self) -> list[Statement]:
        account_id = self._random_account()
        customer_id, broker_id, held = self._accounts[account_id]
        security_id = (
            held[self.rng.randint(0, len(held) - 1)]
            if held and self.rng.bernoulli(0.7)
            else self.rng.randint(0, self.config.securities - 1)
        )
        trade_id = self._next_trade_id
        self._next_trade_id += 1
        self._pending_trades.append(trade_id)
        self._trades_by_account[account_id].append(trade_id)
        self._trades_by_broker.setdefault(broker_id, []).append(trade_id)
        return [
            SelectStatement(("customer_account",), where=eq("ca_id", account_id)),
            SelectStatement(("customer",), where=eq("c_id", customer_id)),
            SelectStatement(("broker",), where=eq("b_id", broker_id)),
            SelectStatement(("security",), where=eq("s_id", security_id)),
            SelectStatement(("last_trade",), where=eq("lt_s_id", security_id)),
            SelectStatement(
                ("holding_summary",),
                where=conj(eq("hs_ca_id", account_id), eq("hs_s_id", security_id)),
            ),
            InsertStatement(
                "trade",
                {
                    "t_id": trade_id,
                    "t_ca_id": account_id,
                    "t_s_id": security_id,
                    "t_b_id": broker_id,
                    "t_qty": self.rng.randint(1, 50),
                    "t_status": 0,
                },
            ),
        ]

    def _trade_result(self) -> list[Statement]:
        if not self._pending_trades:
            return []
        trade_id = self._pending_trades.pop(0)
        history_id = self._next_history_id
        self._next_history_id += 1
        return [
            SelectStatement(("trade",), where=eq("t_id", trade_id)),
            UpdateStatement("trade", {"t_status": 1}, where=eq("t_id", trade_id)),
            InsertStatement(
                "trade_history", {"th_id": history_id, "th_t_id": trade_id, "th_status": 1}
            ),
            UpdateStatement(
                "customer_account",
                {"ca_bal": ("delta", -self.rng.randint(1, 500))},
                where=eq("ca_id", self._trade_account(trade_id)),
            ),
            UpdateStatement(
                "broker",
                {"b_num_trades": ("delta", 1)},
                where=eq("b_id", self._trade_broker(trade_id)),
            ),
        ]

    def _trade_account(self, trade_id: int) -> int:
        for account_id, trades in self._trades_by_account.items():
            if trade_id in trades:
                return account_id
        return self._random_account()

    def _trade_broker(self, trade_id: int) -> int:
        for broker_id, trades in self._trades_by_broker.items():
            if trade_id in trades:
                return broker_id
        return self.rng.randint(0, self.config.brokers - 1)

    def _trade_lookup(self) -> list[Statement]:
        account_id = self._random_account()
        trades = self._trades_by_account.get(account_id, [])
        statements: list[Statement] = [
            SelectStatement(("trade",), where=eq("t_ca_id", account_id), limit=5)
        ]
        if trades:
            recent = trades[-1]
            statements.append(SelectStatement(("trade_history",), where=eq("th_t_id", recent)))
        return statements

    def _trade_status(self) -> list[Statement]:
        account_id = self._random_account()
        customer_id, broker_id, _held = self._accounts[account_id]
        return [
            SelectStatement(("customer_account",), where=eq("ca_id", account_id)),
            SelectStatement(("customer",), where=eq("c_id", customer_id)),
            SelectStatement(("broker",), where=eq("b_id", broker_id)),
            SelectStatement(("trade",), where=eq("t_ca_id", account_id), limit=10),
        ]

    def _trade_update(self) -> list[Statement]:
        account_id = self._random_account()
        trades = self._trades_by_account.get(account_id, [])
        if not trades:
            return []
        trade_id = trades[self.rng.randint(0, len(trades) - 1)]
        return [
            SelectStatement(("trade",), where=eq("t_id", trade_id)),
            UpdateStatement("trade", {"t_qty": ("delta", 1)}, where=eq("t_id", trade_id)),
        ]

    def _customer_position(self) -> list[Statement]:
        customer_id = self.rng.randint(0, self.config.customers - 1)
        accounts = self._customer_accounts[customer_id]
        statements: list[Statement] = [
            SelectStatement(("customer",), where=eq("c_id", customer_id)),
            SelectStatement(("customer_account",), where=eq("ca_c_id", customer_id)),
        ]
        for account_id in accounts[:2]:
            statements.append(
                SelectStatement(("holding_summary",), where=eq("hs_ca_id", account_id))
            )
            _customer, _broker, held = self._accounts[account_id]
            if held:
                statements.append(
                    SelectStatement(("last_trade",), where=in_list("lt_s_id", held[:4]))
                )
        return statements

    def _broker_volume(self) -> list[Statement]:
        broker_id = self.rng.randint(0, self.config.brokers - 1)
        return [
            SelectStatement(("broker",), where=eq("b_id", broker_id)),
            SelectStatement(("trade",), where=eq("t_b_id", broker_id), limit=20),
        ]

    def _security_detail(self) -> list[Statement]:
        security_id = self.rng.randint(0, self.config.securities - 1)
        company_id = security_id % self.config.companies
        return [
            SelectStatement(("security",), where=eq("s_id", security_id)),
            SelectStatement(("company",), where=eq("co_id", company_id)),
            SelectStatement(("last_trade",), where=eq("lt_s_id", security_id)),
        ]

    def _market_watch(self) -> list[Statement]:
        customer_id = self.rng.randint(0, self.config.customers - 1)
        return [
            SelectStatement(("watch_list",), where=eq("wl_id", customer_id)),
            SelectStatement(("watch_item",), where=eq("wl_id", customer_id)),
            SelectStatement(
                ("last_trade",),
                where=in_list(
                    "lt_s_id",
                    sorted(
                        {
                            self.rng.randint(0, self.config.securities - 1)
                            for _ in range(3)
                        }
                    ),
                ),
            ),
        ]

    def _market_feed(self) -> list[Statement]:
        securities = sorted(
            {self.rng.randint(0, self.config.securities - 1) for _ in range(5)}
        )
        statements: list[Statement] = []
        for security_id in securities:
            statements.append(
                UpdateStatement(
                    "last_trade",
                    {"lt_price": self.rng.randint(10, 500), "lt_vol": ("delta", 1)},
                    where=eq("lt_s_id", security_id),
                )
            )
        return statements


def generate_tpce(
    config: TpceConfig | None = None,
    num_transactions: int = 3000,
    name: str = "tpce",
) -> WorkloadBundle:
    """Generate the reduced TPC-E database and workload."""
    config = config or TpceConfig()
    generator = _TpceGenerator(config)
    workload = generator.generate_workload(num_transactions, name)
    return WorkloadBundle(
        name=name,
        database=generator.database,
        workload=workload,
        # The paper could not produce a manual partitioning for TPC-E either.
        manual_strategy_factory=None,
        hash_columns={
            "customer": ("c_id",),
            "customer_account": ("ca_c_id",),
            "holding_summary": ("hs_ca_id",),
            "holding": ("h_ca_id",),
            "trade": ("t_ca_id",),
            "watch_list": ("wl_c_id",),
            "watch_item": ("wl_id",),
        },
        metadata={
            "customers": config.customers,
            "securities": config.securities,
            "tables": len(tpce_schema().tables),
            "transactions": num_transactions,
        },
    )
