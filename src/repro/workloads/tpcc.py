"""TPC-C workload generator (order-processing OLTP, 9 tables, 5 transaction types).

The generator is faithful to the structure that matters for partitioning:

* the warehouse -> district -> customer / stock hierarchy, with the ``item``
  table shared by every warehouse;
* the five transaction types in their standard mix (NewOrder 45%, Payment
  43%, OrderStatus 4%, Delivery 4%, StockLevel 4%);
* the *remote* accesses that make TPC-C hard to partition naively: each
  NewOrder order line is supplied by a remote warehouse with small
  probability, and each Payment targets a customer of a remote warehouse 15%
  of the time — together roughly 10% of transactions touch more than one
  warehouse, matching the paper's 10.7%.

Scale parameters (districts per warehouse, customers per district, item
count, order lines per order) are configurable so tests stay fast while the
structure is preserved.  The known-good manual partitioning — range-partition
every table on its warehouse id and replicate ``item`` — is provided as the
Figure 4 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import Column, ColumnType, ForeignKey, Schema, Table, integer_column
from repro.core.strategies import (
    CompositePartitioning,
    PartitioningStrategy,
    range_on,
    replicate,
)
from repro.engine.database import Database
from repro.sqlparse.ast import (
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
    between,
    conj,
    eq,
    in_list,
)
from repro.utils.rng import SeededRng, weighted_choice
from repro.workload.trace import Workload
from repro.workloads.base import WorkloadBundle

#: column that carries the warehouse id in each table (used for manual
#: partitioning and attribute hashing); ``item`` has none.
WAREHOUSE_COLUMNS: dict[str, str] = {
    "warehouse": "w_id",
    "district": "d_w_id",
    "customer": "c_w_id",
    "history": "h_w_id",
    "stock": "s_w_id",
    "orders": "o_w_id",
    "new_order": "no_w_id",
    "order_line": "ol_w_id",
}


@dataclass
class TpccConfig:
    """Scale and mix parameters."""

    warehouses: int = 2
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    items: int = 200
    initial_orders_per_district: int = 10
    min_order_lines: int = 5
    max_order_lines: int = 15
    #: probability that one order line is supplied by a remote warehouse.
    remote_order_line_probability: float = 0.01
    #: probability that a payment targets a customer of a remote warehouse.
    remote_payment_probability: float = 0.15
    #: transaction mix (must sum to 1.0).
    new_order_weight: float = 0.45
    payment_weight: float = 0.43
    order_status_weight: float = 0.04
    delivery_weight: float = 0.04
    stock_level_weight: float = 0.04
    #: relative weight of each warehouse when choosing a transaction's home
    #: warehouse (None = uniform).  The drifting-workload generator shifts
    #: this between phases to model load moving across warehouses.
    home_warehouse_weights: tuple[float, ...] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.warehouses < 1:
            raise ValueError("warehouses must be >= 1")
        if (
            self.home_warehouse_weights is not None
            and len(self.home_warehouse_weights) != self.warehouses
        ):
            raise ValueError("home_warehouse_weights must have one entry per warehouse")
        total = (
            self.new_order_weight
            + self.payment_weight
            + self.order_status_weight
            + self.delivery_weight
            + self.stock_level_weight
        )
        if abs(total - 1.0) > 1e-6:
            raise ValueError("transaction mix weights must sum to 1.0")


def tpcc_schema() -> Schema:
    """The nine-table TPC-C schema (columns reduced to the partition-relevant ones)."""
    name_column = Column("name", ColumnType.STRING, 16)
    schema = Schema(
        "tpcc",
        [
            Table(
                "warehouse",
                [integer_column("w_id"), name_column, integer_column("w_ytd")],
                primary_key=["w_id"],
            ),
            Table(
                "district",
                [
                    integer_column("d_w_id"),
                    integer_column("d_id"),
                    integer_column("d_next_o_id"),
                    integer_column("d_ytd"),
                ],
                primary_key=["d_w_id", "d_id"],
                foreign_keys=[ForeignKey(("d_w_id",), "warehouse", ("w_id",))],
            ),
            Table(
                "customer",
                [
                    integer_column("c_w_id"),
                    integer_column("c_d_id"),
                    integer_column("c_id"),
                    integer_column("c_balance"),
                    integer_column("c_payment_cnt"),
                ],
                primary_key=["c_w_id", "c_d_id", "c_id"],
                foreign_keys=[ForeignKey(("c_w_id", "c_d_id"), "district", ("d_w_id", "d_id"))],
            ),
            Table(
                "history",
                [
                    integer_column("h_id"),
                    integer_column("h_w_id"),
                    integer_column("h_d_id"),
                    integer_column("h_c_w_id"),
                    integer_column("h_c_id"),
                    integer_column("h_amount"),
                ],
                primary_key=["h_id"],
            ),
            Table(
                "item",
                [integer_column("i_id"), Column("i_name", ColumnType.STRING, 24), integer_column("i_price")],
                primary_key=["i_id"],
            ),
            Table(
                "stock",
                [
                    integer_column("s_w_id"),
                    integer_column("s_i_id"),
                    integer_column("s_quantity"),
                    integer_column("s_ytd"),
                ],
                primary_key=["s_w_id", "s_i_id"],
                foreign_keys=[
                    ForeignKey(("s_w_id",), "warehouse", ("w_id",)),
                    ForeignKey(("s_i_id",), "item", ("i_id",)),
                ],
            ),
            Table(
                "orders",
                [
                    integer_column("o_w_id"),
                    integer_column("o_d_id"),
                    integer_column("o_id"),
                    integer_column("o_c_id"),
                    integer_column("o_carrier_id"),
                    integer_column("o_ol_cnt"),
                ],
                primary_key=["o_w_id", "o_d_id", "o_id"],
                foreign_keys=[
                    ForeignKey(("o_w_id", "o_d_id"), "district", ("d_w_id", "d_id")),
                    ForeignKey(("o_w_id", "o_d_id", "o_c_id"), "customer", ("c_w_id", "c_d_id", "c_id")),
                ],
            ),
            Table(
                "new_order",
                [integer_column("no_w_id"), integer_column("no_d_id"), integer_column("no_o_id")],
                primary_key=["no_w_id", "no_d_id", "no_o_id"],
                foreign_keys=[
                    ForeignKey(("no_w_id", "no_d_id", "no_o_id"), "orders", ("o_w_id", "o_d_id", "o_id"))
                ],
            ),
            Table(
                "order_line",
                [
                    integer_column("ol_w_id"),
                    integer_column("ol_d_id"),
                    integer_column("ol_o_id"),
                    integer_column("ol_number"),
                    integer_column("ol_i_id"),
                    integer_column("ol_supply_w_id"),
                    integer_column("ol_quantity"),
                ],
                primary_key=["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"],
                foreign_keys=[
                    ForeignKey(("ol_w_id", "ol_d_id", "ol_o_id"), "orders", ("o_w_id", "o_d_id", "o_id")),
                    ForeignKey(("ol_i_id",), "item", ("i_id",)),
                ],
            ),
        ],
    )
    return schema


@dataclass
class _DistrictState:
    """Generator-side bookkeeping for one district."""

    next_order_id: int
    undelivered: list[int] = field(default_factory=list)
    #: order id -> (customer id, order-line count)
    orders: dict[int, tuple[int, int]] = field(default_factory=dict)


class _TpccGenerator:
    """Builds the database and a consistent transaction trace."""

    def __init__(self, config: TpccConfig) -> None:
        self.config = config
        self.rng = SeededRng(config.seed)
        self.database = Database(tpcc_schema())
        self._district_state: dict[tuple[int, int], _DistrictState] = {}
        self._next_history_id = 0
        self._load()

    # -- data loading -----------------------------------------------------------------
    def _load(self) -> None:
        config = self.config
        load_rng = self.rng.fork("load")
        for item_id in range(1, config.items + 1):
            self.database.insert_row(
                "item",
                {"i_id": item_id, "i_name": f"item-{item_id}", "i_price": load_rng.randint(1, 100)},
            )
        for warehouse_id in range(1, config.warehouses + 1):
            self.database.insert_row(
                "warehouse", {"w_id": warehouse_id, "name": f"wh-{warehouse_id}", "w_ytd": 0}
            )
            for item_id in range(1, config.items + 1):
                self.database.insert_row(
                    "stock",
                    {
                        "s_w_id": warehouse_id,
                        "s_i_id": item_id,
                        "s_quantity": load_rng.randint(10, 100),
                        "s_ytd": 0,
                    },
                )
            for district_id in range(1, config.districts_per_warehouse + 1):
                state = _DistrictState(next_order_id=1)
                self._district_state[(warehouse_id, district_id)] = state
                for customer_id in range(1, config.customers_per_district + 1):
                    self.database.insert_row(
                        "customer",
                        {
                            "c_w_id": warehouse_id,
                            "c_d_id": district_id,
                            "c_id": customer_id,
                            "c_balance": 0,
                            "c_payment_cnt": 0,
                        },
                    )
                for _ in range(config.initial_orders_per_district):
                    self._load_order(warehouse_id, district_id, state, load_rng)
                self.database.insert_row(
                    "district",
                    {
                        "d_w_id": warehouse_id,
                        "d_id": district_id,
                        "d_next_o_id": state.next_order_id,
                        "d_ytd": 0,
                    },
                )

    def _load_order(
        self, warehouse_id: int, district_id: int, state: _DistrictState, rng: SeededRng
    ) -> None:
        config = self.config
        order_id = state.next_order_id
        state.next_order_id += 1
        customer_id = rng.randint(1, config.customers_per_district)
        line_count = rng.randint(config.min_order_lines, config.max_order_lines)
        self.database.insert_row(
            "orders",
            {
                "o_w_id": warehouse_id,
                "o_d_id": district_id,
                "o_id": order_id,
                "o_c_id": customer_id,
                "o_carrier_id": 0,
                "o_ol_cnt": line_count,
            },
        )
        self.database.insert_row(
            "new_order", {"no_w_id": warehouse_id, "no_d_id": district_id, "no_o_id": order_id}
        )
        state.undelivered.append(order_id)
        state.orders[order_id] = (customer_id, line_count)
        for line_number in range(1, line_count + 1):
            self.database.insert_row(
                "order_line",
                {
                    "ol_w_id": warehouse_id,
                    "ol_d_id": district_id,
                    "ol_o_id": order_id,
                    "ol_number": line_number,
                    "ol_i_id": rng.randint(1, config.items),
                    "ol_supply_w_id": warehouse_id,
                    "ol_quantity": rng.randint(1, 10),
                },
            )

    # -- transaction generation -----------------------------------------------------------
    def generate_workload(self, num_transactions: int, name: str) -> Workload:
        """Generate ``num_transactions`` transactions with the configured mix."""
        config = self.config
        workload = Workload(name)
        mix = [
            ("new_order", config.new_order_weight),
            ("payment", config.payment_weight),
            ("order_status", config.order_status_weight),
            ("delivery", config.delivery_weight),
            ("stock_level", config.stock_level_weight),
        ]
        builders = {
            "new_order": self._new_order,
            "payment": self._payment,
            "order_status": self._order_status,
            "delivery": self._delivery,
            "stock_level": self._stock_level,
        }
        for _ in range(num_transactions):
            kind = weighted_choice(self.rng, mix)
            statements = builders[kind]()
            if statements:
                workload.add_statements(statements, kind=kind)
        return workload

    def _random_district(self) -> tuple[int, int]:
        weights = self.config.home_warehouse_weights
        if weights is None:
            warehouse_id = self.rng.randint(1, self.config.warehouses)
        else:
            warehouse_id = weighted_choice(
                self.rng,
                [(index + 1, weight) for index, weight in enumerate(weights)],
            )
        district_id = self.rng.randint(1, self.config.districts_per_warehouse)
        return warehouse_id, district_id

    def _new_order(self) -> list[Statement]:
        config = self.config
        warehouse_id, district_id = self._random_district()
        state = self._district_state[(warehouse_id, district_id)]
        customer_id = self.rng.randint(1, config.customers_per_district)
        order_id = state.next_order_id
        state.next_order_id += 1
        line_count = self.rng.randint(config.min_order_lines, config.max_order_lines)
        state.orders[order_id] = (customer_id, line_count)
        state.undelivered.append(order_id)
        statements: list[Statement] = [
            SelectStatement(("warehouse",), where=eq("w_id", warehouse_id)),
            SelectStatement(
                ("district",), where=conj(eq("d_w_id", warehouse_id), eq("d_id", district_id))
            ),
            UpdateStatement(
                "district",
                {"d_next_o_id": ("delta", 1)},
                where=conj(eq("d_w_id", warehouse_id), eq("d_id", district_id)),
            ),
            SelectStatement(
                ("customer",),
                where=conj(
                    eq("c_w_id", warehouse_id), eq("c_d_id", district_id), eq("c_id", customer_id)
                ),
            ),
            InsertStatement(
                "orders",
                {
                    "o_w_id": warehouse_id,
                    "o_d_id": district_id,
                    "o_id": order_id,
                    "o_c_id": customer_id,
                    "o_carrier_id": 0,
                    "o_ol_cnt": line_count,
                },
            ),
            InsertStatement(
                "new_order",
                {"no_w_id": warehouse_id, "no_d_id": district_id, "no_o_id": order_id},
            ),
        ]
        for line_number in range(1, line_count + 1):
            item_id = self.rng.randint(1, config.items)
            supply_warehouse = warehouse_id
            if config.warehouses > 1 and self.rng.bernoulli(config.remote_order_line_probability):
                while supply_warehouse == warehouse_id:
                    supply_warehouse = self.rng.randint(1, config.warehouses)
            statements.append(SelectStatement(("item",), where=eq("i_id", item_id)))
            statements.append(
                SelectStatement(
                    ("stock",), where=conj(eq("s_w_id", supply_warehouse), eq("s_i_id", item_id))
                )
            )
            statements.append(
                UpdateStatement(
                    "stock",
                    {"s_quantity": ("delta", -1), "s_ytd": ("delta", 1)},
                    where=conj(eq("s_w_id", supply_warehouse), eq("s_i_id", item_id)),
                )
            )
            statements.append(
                InsertStatement(
                    "order_line",
                    {
                        "ol_w_id": warehouse_id,
                        "ol_d_id": district_id,
                        "ol_o_id": order_id,
                        "ol_number": line_number,
                        "ol_i_id": item_id,
                        "ol_supply_w_id": supply_warehouse,
                        "ol_quantity": self.rng.randint(1, 10),
                    },
                )
            )
        return statements

    def _payment(self) -> list[Statement]:
        config = self.config
        warehouse_id, district_id = self._random_district()
        customer_warehouse = warehouse_id
        customer_district = district_id
        if config.warehouses > 1 and self.rng.bernoulli(config.remote_payment_probability):
            while customer_warehouse == warehouse_id:
                customer_warehouse = self.rng.randint(1, config.warehouses)
            customer_district = self.rng.randint(1, config.districts_per_warehouse)
        customer_id = self.rng.randint(1, config.customers_per_district)
        amount = self.rng.randint(1, 5000)
        history_id = self._next_history_id
        self._next_history_id += 1
        return [
            UpdateStatement("warehouse", {"w_ytd": ("delta", amount)}, where=eq("w_id", warehouse_id)),
            SelectStatement(("warehouse",), where=eq("w_id", warehouse_id)),
            UpdateStatement(
                "district",
                {"d_ytd": ("delta", amount)},
                where=conj(eq("d_w_id", warehouse_id), eq("d_id", district_id)),
            ),
            SelectStatement(
                ("district",), where=conj(eq("d_w_id", warehouse_id), eq("d_id", district_id))
            ),
            UpdateStatement(
                "customer",
                {"c_balance": ("delta", -amount), "c_payment_cnt": ("delta", 1)},
                where=conj(
                    eq("c_w_id", customer_warehouse),
                    eq("c_d_id", customer_district),
                    eq("c_id", customer_id),
                ),
            ),
            InsertStatement(
                "history",
                {
                    "h_id": history_id,
                    "h_w_id": warehouse_id,
                    "h_d_id": district_id,
                    "h_c_w_id": customer_warehouse,
                    "h_c_id": customer_id,
                    "h_amount": amount,
                },
            ),
        ]

    def _order_status(self) -> list[Statement]:
        config = self.config
        warehouse_id, district_id = self._random_district()
        state = self._district_state[(warehouse_id, district_id)]
        customer_id = self.rng.randint(1, config.customers_per_district)
        statements: list[Statement] = [
            SelectStatement(
                ("customer",),
                where=conj(
                    eq("c_w_id", warehouse_id), eq("c_d_id", district_id), eq("c_id", customer_id)
                ),
            ),
            SelectStatement(
                ("orders",),
                where=conj(
                    eq("o_w_id", warehouse_id), eq("o_d_id", district_id), eq("o_c_id", customer_id)
                ),
                limit=1,
            ),
        ]
        if state.orders:
            recent_order = max(state.orders)
            statements.append(
                SelectStatement(
                    ("order_line",),
                    where=conj(
                        eq("ol_w_id", warehouse_id),
                        eq("ol_d_id", district_id),
                        eq("ol_o_id", recent_order),
                    ),
                )
            )
        return statements

    def _delivery(self) -> list[Statement]:
        config = self.config
        warehouse_id = self.rng.randint(1, config.warehouses)
        statements: list[Statement] = []
        for district_id in range(1, config.districts_per_warehouse + 1):
            state = self._district_state[(warehouse_id, district_id)]
            if not state.undelivered:
                continue
            order_id = state.undelivered.pop(0)
            customer_id, _line_count = state.orders[order_id]
            statements.extend(
                [
                    SelectStatement(
                        ("new_order",),
                        where=conj(
                            eq("no_w_id", warehouse_id),
                            eq("no_d_id", district_id),
                            eq("no_o_id", order_id),
                        ),
                    ),
                    UpdateStatement(
                        "orders",
                        {"o_carrier_id": self.rng.randint(1, 10)},
                        where=conj(
                            eq("o_w_id", warehouse_id),
                            eq("o_d_id", district_id),
                            eq("o_id", order_id),
                        ),
                    ),
                    SelectStatement(
                        ("order_line",),
                        where=conj(
                            eq("ol_w_id", warehouse_id),
                            eq("ol_d_id", district_id),
                            eq("ol_o_id", order_id),
                        ),
                    ),
                    UpdateStatement(
                        "customer",
                        {"c_balance": ("delta", self.rng.randint(1, 500))},
                        where=conj(
                            eq("c_w_id", warehouse_id),
                            eq("c_d_id", district_id),
                            eq("c_id", customer_id),
                        ),
                    ),
                ]
            )
        return statements

    def _stock_level(self) -> list[Statement]:
        config = self.config
        warehouse_id, district_id = self._random_district()
        state = self._district_state[(warehouse_id, district_id)]
        low_order = max(1, state.next_order_id - 5)
        item_ids = sorted(
            {self.rng.randint(1, config.items) for _ in range(5)}
        )
        return [
            SelectStatement(
                ("district",), where=conj(eq("d_w_id", warehouse_id), eq("d_id", district_id))
            ),
            SelectStatement(
                ("order_line",),
                where=conj(
                    eq("ol_w_id", warehouse_id),
                    eq("ol_d_id", district_id),
                    between("ol_o_id", low_order, state.next_order_id),
                ),
            ),
            SelectStatement(
                ("stock",),
                where=conj(eq("s_w_id", warehouse_id), in_list("s_i_id", item_ids)),
            ),
        ]


def generate_tpcc(
    config: TpccConfig | None = None,
    num_transactions: int = 2000,
    name: str | None = None,
) -> WorkloadBundle:
    """Generate a TPC-C database and workload bundle."""
    config = config or TpccConfig()
    generator = _TpccGenerator(config)
    workload_name = name or f"tpcc-{config.warehouses}w"
    workload = generator.generate_workload(num_transactions, workload_name)
    return WorkloadBundle(
        name=workload_name,
        database=generator.database,
        workload=workload,
        manual_strategy_factory=lambda k: tpcc_manual_strategy(k, config.warehouses),
        hash_columns={
            table: (column,) for table, column in WAREHOUSE_COLUMNS.items()
        },
        metadata={
            "warehouses": config.warehouses,
            "districts_per_warehouse": config.districts_per_warehouse,
            "customers_per_district": config.customers_per_district,
            "items": config.items,
            "transactions": num_transactions,
        },
    )


def tpcc_manual_strategy(num_partitions: int, warehouses: int) -> PartitioningStrategy:
    """The expert partitioning: range-partition by warehouse id, replicate ``item``.

    This is the strategy human experts (and H-Store) use for TPC-C, and the
    one Schism is expected to re-discover.
    """
    boundaries = [
        (index + 1) * warehouses / num_partitions for index in range(num_partitions - 1)
    ]
    policies = {
        table: range_on(column, boundaries) for table, column in WAREHOUSE_COLUMNS.items()
    }
    policies["item"] = replicate()
    return CompositePartitioning(num_partitions, policies, name="manual")
