"""Common container for generated workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.strategies import PartitioningStrategy
from repro.engine.database import Database
from repro.workload.trace import Workload


@dataclass
class WorkloadBundle:
    """Everything an experiment needs about one benchmark.

    Attributes
    ----------
    name:
        Benchmark name ("tpcc-2w", "ycsb-a", ...).
    database:
        The loaded database the workload runs against.
    workload:
        The generated transaction trace.
    manual_strategy_factory:
        Builds the best-known manual partitioning for a given number of
        partitions, or ``None`` when the paper has no manual baseline
        (TPC-E, Random).
    hash_columns:
        Per-table columns for the attribute-hashing candidate considered in
        the final validation phase (``None`` to skip it).
    metadata:
        Free-form facts about the generated instance (scale factors, mixes),
        echoed into experiment reports.
    """

    name: str
    database: Database
    workload: Workload
    manual_strategy_factory: Callable[[int], PartitioningStrategy] | None = None
    hash_columns: dict[str, tuple[str, ...]] | None = None
    metadata: dict[str, object] = field(default_factory=dict)

    def manual_strategy(self, num_partitions: int) -> PartitioningStrategy | None:
        """The manual baseline for ``num_partitions`` partitions, if defined."""
        if self.manual_strategy_factory is None:
            return None
        return self.manual_strategy_factory(num_partitions)
