"""Drifting workloads for the online adaptivity layer.

Three drift scenarios, each producing an ordered list of *phases* whose
union is one continuous stream:

* :func:`generate_rotating_hotspot` — a YCSB-style single table where every
  transaction touches a small **group** of keys inside a hot window, and the
  window (and with it the co-access structure) rotates across the key space
  between phases.  A placement trained on one phase serves its groups
  locally and degrades sharply when the hotspot rotates onto keys it never
  saw together.
* :func:`generate_read_hot_skew` — a YCSB-style table where phase 1 makes a
  handful of tuples **read-hot**: almost every transaction reads one of them
  alongside an otherwise-local group, so under singleton placement most
  transactions become distributed.  The cure is tuple-level replication
  (writes to the hot tuples stay rare), which is exactly what the
  replication-aware online adaptation provides.
* :func:`generate_warehouse_shift_tpcc` — TPC-C where the home-warehouse
  distribution concentrates on a rotating subset of warehouses per phase
  (``home_warehouse_weights``), modelling regional load shifting across a
  day.

All return a :class:`DriftingWorkloadBundle`: the loaded database, the
per-phase workloads, and the concatenated stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.engine.database import Database
from repro.sqlparse.ast import SelectStatement, UpdateStatement, eq
from repro.utils.rng import SeededRng
from repro.workload.trace import Workload
from repro.workloads.tpcc import TpccConfig, _TpccGenerator
from repro.workloads.ycsb import ycsb_schema, _load_usertable


@dataclass
class DriftingWorkloadBundle:
    """A multi-phase workload over one database."""

    name: str
    database: Database
    #: one workload per phase, in stream order.
    phases: list[Workload]
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def training(self) -> Workload:
        """The first phase — what the offline pipeline trains on."""
        return self.phases[0]

    def combined(self) -> Workload:
        """All phases concatenated into one stream."""
        merged = Workload(self.name)
        for phase in self.phases:
            for transaction in phase:
                merged.add(transaction)
        return merged


def generate_rotating_hotspot(
    num_rows: int = 1200,
    transactions_per_phase: int = 600,
    num_phases: int = 2,
    group_size: int = 3,
    hot_window: int = 300,
    rotation_stride: int | None = None,
    uniform_fraction: float = 0.05,
    seed: int = 0,
) -> DriftingWorkloadBundle:
    """YCSB-style rotating-hotspot stream.

    Keys are grouped into runs of ``group_size`` consecutive keys.  In phase
    ``p`` the anchors come from the window of ``hot_window`` keys starting at
    ``p * rotation_stride`` (default stride = ``hot_window``, i.e. disjoint
    windows): each transaction updates one member of a group and reads the
    rest, so groups must be co-located to commit locally.  A small
    ``uniform_fraction`` of single-row reads is spread over the whole table
    as background noise.
    """
    if hot_window % group_size != 0:
        raise ValueError("hot_window must be a multiple of group_size")
    if rotation_stride is None:
        rotation_stride = hot_window
    # The last phase's window is [(num_phases-1) * stride, ... + hot_window).
    if (num_phases - 1) * rotation_stride + hot_window > num_rows:
        raise ValueError("phases rotate past the end of the table; add rows")
    rng = SeededRng(seed)
    database = Database(ycsb_schema())
    _load_usertable(database, num_rows, rng.fork("load"))
    groups_per_window = hot_window // group_size
    phases: list[Workload] = []
    for phase in range(num_phases):
        phase_rng = rng.fork(("phase", phase))
        window_start = phase * rotation_stride
        workload = Workload(f"rotating-hotspot-p{phase}")
        for _ in range(transactions_per_phase):
            if phase_rng.bernoulli(uniform_fraction):
                key = phase_rng.randint(0, num_rows - 1)
                workload.add_statements(
                    [SelectStatement(("usertable",), where=eq("ycsb_key", key))],
                    kind="background-read",
                )
                continue
            group = phase_rng.randint(0, groups_per_window - 1)
            base = window_start + group * group_size
            keys = list(range(base, base + group_size))
            written = keys[phase_rng.randint(0, group_size - 1)]
            statements = [
                UpdateStatement(
                    "usertable",
                    {"field0": phase_rng.randint(0, 1_000_000)},
                    where=eq("ycsb_key", written),
                )
            ]
            statements.extend(
                SelectStatement(("usertable",), where=eq("ycsb_key", key))
                for key in keys
                if key != written
            )
            workload.add_statements(statements, kind="group")
        phases.append(workload)
    return DriftingWorkloadBundle(
        name="rotating-hotspot",
        database=database,
        phases=phases,
        metadata={
            "rows": num_rows,
            "transactions_per_phase": transactions_per_phase,
            "num_phases": num_phases,
            "group_size": group_size,
            "hot_window": hot_window,
            "rotation_stride": rotation_stride,
            "uniform_fraction": uniform_fraction,
        },
    )


def generate_read_hot_skew(
    num_rows: int = 1200,
    transactions_per_phase: int = 800,
    num_hot: int = 8,
    group_size: int = 3,
    hot_touch_fraction: float = 0.9,
    hot_write_fraction: float = 0.05,
    uniform_fraction: float = 0.05,
    seed: int = 0,
) -> DriftingWorkloadBundle:
    """YCSB-style stream whose phase 1 turns a few tuples read-hot.

    The last ``num_hot`` keys of the table are the hot set; the rest of the
    table is organised into groups of ``group_size`` consecutive keys.

    * **Phase 0 (training)**: classic group traffic — each transaction
      updates one member of a random group and reads the others, plus a
      sprinkle of uniform background reads.  The hot keys are never touched,
      so the offline pipeline learns nothing about them and they stay on
      their hash-placed homes.
    * **Phase 1 (drift)**: the same group traffic, but ``hot_touch_fraction``
      of the transactions additionally access one random hot key — a read,
      except with probability ``hot_write_fraction`` an update.  A hot key
      lives on one partition while the groups span all of them, so under
      singleton placement most transactions turn distributed; replicating
      the hot keys makes the reads local again while the rare writes keep
      paying the all-replica consistency cost.
    """
    if num_hot <= 0:
        raise ValueError("num_hot must be positive")
    group_rows = num_rows - num_hot
    if group_rows < group_size:
        raise ValueError("not enough rows left for groups; add rows or shrink num_hot")
    rng = SeededRng(seed)
    database = Database(ycsb_schema())
    _load_usertable(database, num_rows, rng.fork("load"))
    num_groups = group_rows // group_size
    hot_keys = list(range(group_rows, num_rows))
    phases: list[Workload] = []
    for phase in range(2):
        phase_rng = rng.fork(("phase", phase))
        workload = Workload(f"read-hot-skew-p{phase}")
        for _ in range(transactions_per_phase):
            if phase_rng.bernoulli(uniform_fraction):
                key = phase_rng.randint(0, group_rows - 1)
                workload.add_statements(
                    [SelectStatement(("usertable",), where=eq("ycsb_key", key))],
                    kind="background-read",
                )
                continue
            group = phase_rng.randint(0, num_groups - 1)
            base = group * group_size
            keys = list(range(base, base + group_size))
            written = keys[phase_rng.randint(0, group_size - 1)]
            statements = [
                UpdateStatement(
                    "usertable",
                    {"field0": phase_rng.randint(0, 1_000_000)},
                    where=eq("ycsb_key", written),
                )
            ]
            statements.extend(
                SelectStatement(("usertable",), where=eq("ycsb_key", key))
                for key in keys
                if key != written
            )
            kind = "group"
            if phase == 1 and phase_rng.bernoulli(hot_touch_fraction):
                hot_key = hot_keys[phase_rng.randint(0, num_hot - 1)]
                if phase_rng.bernoulli(hot_write_fraction):
                    statements.append(
                        UpdateStatement(
                            "usertable",
                            {"field1": phase_rng.randint(0, 1_000_000)},
                            where=eq("ycsb_key", hot_key),
                        )
                    )
                    kind = "group+hot-write"
                else:
                    statements.append(
                        SelectStatement(("usertable",), where=eq("ycsb_key", hot_key))
                    )
                    kind = "group+hot-read"
            workload.add_statements(statements, kind=kind)
        phases.append(workload)
    return DriftingWorkloadBundle(
        name="read-hot-skew",
        database=database,
        phases=phases,
        metadata={
            "rows": num_rows,
            "transactions_per_phase": transactions_per_phase,
            "num_hot": num_hot,
            "group_size": group_size,
            "hot_touch_fraction": hot_touch_fraction,
            "hot_write_fraction": hot_write_fraction,
            "uniform_fraction": uniform_fraction,
            "hot_keys": tuple(hot_keys),
        },
    )


def generate_warehouse_shift_tpcc(
    warehouses: int = 4,
    hot_warehouses: int = 1,
    transactions_per_phase: int = 400,
    num_phases: int = 2,
    hot_weight: float = 8.0,
    config: TpccConfig | None = None,
    seed: int | None = None,
) -> DriftingWorkloadBundle:
    """TPC-C with the hot warehouses rotating between phases.

    In phase ``p`` the ``hot_warehouses`` warehouses starting at
    ``(p * hot_warehouses) % warehouses`` receive ``hot_weight`` times the
    traffic of the others; everything else is standard TPC-C over one shared
    database, so later phases observe the inserts of earlier ones.
    """
    if hot_warehouses < 1 or hot_warehouses > warehouses:
        raise ValueError("hot_warehouses must be in [1, warehouses]")
    base = config or TpccConfig(warehouses=warehouses)
    if base.warehouses != warehouses:
        raise ValueError("config.warehouses and warehouses argument disagree")
    # Work on a private copy: the per-phase weight rotation must not leak
    # into the caller's config object.  An explicit ``seed`` wins over the
    # config's (it must not be silently ignored).
    working = replace(base, **({"seed": seed} if seed is not None else {}))
    generator = _TpccGenerator(working)
    phases: list[Workload] = []
    for phase in range(num_phases):
        first_hot = (phase * hot_warehouses) % warehouses
        hot = {(first_hot + offset) % warehouses for offset in range(hot_warehouses)}
        working.home_warehouse_weights = tuple(
            hot_weight if index in hot else 1.0 for index in range(warehouses)
        )
        phases.append(
            generator.generate_workload(
                transactions_per_phase, f"tpcc-shift-p{phase}"
            )
        )
    return DriftingWorkloadBundle(
        name="tpcc-warehouse-shift",
        database=generator.database,
        phases=phases,
        metadata={
            "warehouses": warehouses,
            "hot_warehouses": hot_warehouses,
            "hot_weight": hot_weight,
            "transactions_per_phase": transactions_per_phase,
            "num_phases": num_phases,
        },
    )
