"""Epinions.com social-network workload (Appendix D.4 of the paper).

Four relations — ``users``, ``items``, ``reviews`` (an n-to-n relation
between users and items) and ``trust`` (an n-to-n relation between pairs of
users) — and nine request types (Q1–Q9) approximating the website's
functionality.  The real dataset is not redistributable, so the generator
synthesises a social graph with *community structure*: users and items belong
to latent communities, and reviews/trust edges stay within the community with
high probability.  That structure is invisible at the schema level (exactly
the paper's point) but discoverable by the graph partitioner, which is why
Schism's lookup-table partitioning beats the manual baseline that replicates
users and trust everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import ForeignKey, Schema, Table, integer_column
from repro.core.strategies import (
    CompositePartitioning,
    PartitioningStrategy,
    hash_on,
    replicate,
)
from repro.engine.database import Database
from repro.sqlparse.ast import SelectStatement, Statement, UpdateStatement, conj, eq
from repro.utils.rng import SeededRng
from repro.workload.trace import Workload
from repro.workloads.base import WorkloadBundle


@dataclass
class EpinionsConfig:
    """Scale and structure parameters for the synthetic Epinions instance."""

    num_users: int = 500
    num_items: int = 500
    num_communities: int = 10
    reviews_per_user: int = 6
    trust_per_user: int = 6
    #: probability that a review / trust edge stays within the user's community.
    community_locality: float = 0.9
    #: skew exponent for choosing users/items inside a community: the index is
    #: drawn as ``len * random() ** skew``, so higher values concentrate the
    #: requests on a hot subset (2.0 roughly mimics the Epinions popularity skew).
    access_skew: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_communities < 1:
            raise ValueError("num_communities must be >= 1")
        if not 0.0 <= self.community_locality <= 1.0:
            raise ValueError("community_locality must be in [0, 1]")


#: request mix: (query name, weight); Q1 and Q4 dominate as in the paper.
QUERY_MIX: tuple[tuple[str, float], ...] = (
    ("q1_ratings_from_trusted", 0.25),
    ("q2_trusted_users", 0.10),
    ("q3_item_average", 0.10),
    ("q4_popular_item_reviews", 0.25),
    ("q5_user_reviews", 0.10),
    ("q6_update_user", 0.05),
    ("q7_update_item", 0.05),
    ("q8_upsert_review", 0.07),
    ("q9_update_trust", 0.03),
)


def epinions_schema() -> Schema:
    """users / items / reviews / trust."""
    return Schema(
        "epinions",
        [
            Table(
                "users",
                [integer_column("u_id"), integer_column("u_reputation")],
                primary_key=["u_id"],
            ),
            Table(
                "items",
                [integer_column("i_id"), integer_column("i_popularity")],
                primary_key=["i_id"],
            ),
            Table(
                "reviews",
                [
                    integer_column("r_id"),
                    integer_column("u_id"),
                    integer_column("i_id"),
                    integer_column("rating"),
                ],
                primary_key=["r_id"],
                foreign_keys=[
                    ForeignKey(("u_id",), "users", ("u_id",)),
                    ForeignKey(("i_id",), "items", ("i_id",)),
                ],
            ),
            Table(
                "trust",
                [
                    integer_column("source_u_id"),
                    integer_column("target_u_id"),
                    integer_column("trust_value"),
                ],
                primary_key=["source_u_id", "target_u_id"],
                foreign_keys=[
                    ForeignKey(("source_u_id",), "users", ("u_id",)),
                    ForeignKey(("target_u_id",), "users", ("u_id",)),
                ],
            ),
        ],
    )


class _EpinionsGenerator:
    """Builds the community-structured social graph and the request trace."""

    def __init__(self, config: EpinionsConfig) -> None:
        self.config = config
        self.rng = SeededRng(config.seed)
        self.database = Database(epinions_schema())
        self._user_community: dict[int, int] = {}
        self._item_community: dict[int, int] = {}
        self._community_users: list[list[int]] = [[] for _ in range(config.num_communities)]
        self._community_items: list[list[int]] = [[] for _ in range(config.num_communities)]
        #: (user, item) pairs that have a review, for Q8 updates.
        self._reviews: list[tuple[int, int, int]] = []
        self._trust_pairs: list[tuple[int, int]] = []
        self._load()

    # -- loading --------------------------------------------------------------------------
    def _load(self) -> None:
        config = self.config
        load_rng = self.rng.fork("load")
        for user_id in range(config.num_users):
            community = user_id % config.num_communities
            self._user_community[user_id] = community
            self._community_users[community].append(user_id)
            self.database.insert_row("users", {"u_id": user_id, "u_reputation": load_rng.randint(0, 100)})
        for item_id in range(config.num_items):
            community = item_id % config.num_communities
            self._item_community[item_id] = community
            self._community_items[community].append(item_id)
            self.database.insert_row("items", {"i_id": item_id, "i_popularity": load_rng.randint(0, 100)})
        review_id = 0
        for user_id in range(config.num_users):
            for _ in range(config.reviews_per_user):
                item_id = self._pick_item(self._user_community[user_id], load_rng)
                self.database.insert_row(
                    "reviews",
                    {
                        "r_id": review_id,
                        "u_id": user_id,
                        "i_id": item_id,
                        "rating": load_rng.randint(1, 5),
                    },
                )
                self._reviews.append((review_id, user_id, item_id))
                review_id += 1
            trusted: set[int] = set()
            for _ in range(config.trust_per_user):
                target = self._pick_user(self._user_community[user_id], load_rng)
                if target == user_id or target in trusted:
                    continue
                trusted.add(target)
                self.database.insert_row(
                    "trust",
                    {
                        "source_u_id": user_id,
                        "target_u_id": target,
                        "trust_value": load_rng.randint(0, 1),
                    },
                )
                self._trust_pairs.append((user_id, target))

    def _skewed_index(self, size: int, rng: SeededRng) -> int:
        # Power-law style skew: low indices are the popular users/items.
        return min(size - 1, int(size * (rng.random() ** self.config.access_skew)))

    def _pick_user(self, community: int, rng: SeededRng) -> int:
        config = self.config
        if rng.bernoulli(config.community_locality):
            members = self._community_users[community]
        else:
            members = self._community_users[rng.randint(0, config.num_communities - 1)]
        return members[self._skewed_index(len(members), rng)]

    def _pick_item(self, community: int, rng: SeededRng) -> int:
        config = self.config
        if rng.bernoulli(config.community_locality):
            members = self._community_items[community]
        else:
            members = self._community_items[rng.randint(0, config.num_communities - 1)]
        return members[self._skewed_index(len(members), rng)]

    # -- request generation --------------------------------------------------------------
    def generate_workload(self, num_transactions: int, name: str) -> Workload:
        """Generate the Q1–Q9 request mix."""
        workload = Workload(name)
        cumulative: list[tuple[str, float]] = []
        total = 0.0
        for query_name, weight in QUERY_MIX:
            total += weight
            cumulative.append((query_name, total))
        builders = {
            "q1_ratings_from_trusted": self._q1,
            "q2_trusted_users": self._q2,
            "q3_item_average": self._q3,
            "q4_popular_item_reviews": self._q4,
            "q5_user_reviews": self._q5,
            "q6_update_user": self._q6,
            "q7_update_item": self._q7,
            "q8_upsert_review": self._q8,
            "q9_update_trust": self._q9,
        }
        for _ in range(num_transactions):
            draw = self.rng.random() * total
            for query_name, bound in cumulative:
                if draw <= bound:
                    statements = builders[query_name]()
                    if statements:
                        workload.add_statements(statements, kind=query_name)
                    break
        return workload

    def _random_user(self) -> int:
        # Pick a community uniformly, then a user with popularity skew inside it,
        # so the same hot users dominate both the training and the test trace.
        community = self.rng.randint(0, self.config.num_communities - 1)
        members = self._community_users[community]
        return members[self._skewed_index(len(members), self.rng)]

    def _random_item_near(self, user_id: int) -> int:
        return self._pick_item(self._user_community[user_id], self.rng)

    def _q1(self) -> list[Statement]:
        user_id = self._random_user()
        item_id = self._random_item_near(user_id)
        return [
            SelectStatement(("trust",), where=eq("source_u_id", user_id)),
            SelectStatement(("reviews",), where=eq("i_id", item_id)),
            SelectStatement(("items",), where=eq("i_id", item_id)),
        ]

    def _q2(self) -> list[Statement]:
        user_id = self._random_user()
        return [
            SelectStatement(("trust",), where=eq("source_u_id", user_id)),
            SelectStatement(("users",), where=eq("u_id", user_id)),
        ]

    def _q3(self) -> list[Statement]:
        user_id = self._random_user()
        item_id = self._random_item_near(user_id)
        return [
            SelectStatement(("reviews",), where=eq("i_id", item_id)),
            SelectStatement(("items",), where=eq("i_id", item_id)),
        ]

    def _q4(self) -> list[Statement]:
        user_id = self._random_user()
        item_id = self._random_item_near(user_id)
        return [
            SelectStatement(("items",), where=eq("i_id", item_id)),
            SelectStatement(("reviews",), where=eq("i_id", item_id), limit=10),
        ]

    def _q5(self) -> list[Statement]:
        user_id = self._random_user()
        return [
            SelectStatement(("users",), where=eq("u_id", user_id)),
            SelectStatement(("reviews",), where=eq("u_id", user_id), limit=10),
        ]

    def _q6(self) -> list[Statement]:
        user_id = self._random_user()
        return [
            UpdateStatement("users", {"u_reputation": ("delta", 1)}, where=eq("u_id", user_id))
        ]

    def _q7(self) -> list[Statement]:
        user_id = self._random_user()
        item_id = self._random_item_near(user_id)
        return [
            UpdateStatement("items", {"i_popularity": ("delta", 1)}, where=eq("i_id", item_id))
        ]

    def _q8(self) -> list[Statement]:
        if not self._reviews:
            return []
        review_id, user_id, item_id = self._reviews[self._skewed_index(len(self._reviews), self.rng)]
        return [
            SelectStatement(("users",), where=eq("u_id", user_id)),
            UpdateStatement(
                "reviews", {"rating": self.rng.randint(1, 5)}, where=eq("r_id", review_id)
            ),
            SelectStatement(("items",), where=eq("i_id", item_id)),
        ]

    def _q9(self) -> list[Statement]:
        if not self._trust_pairs:
            return []
        source, target = self._trust_pairs[self._skewed_index(len(self._trust_pairs), self.rng)]
        return [
            UpdateStatement(
                "trust",
                {"trust_value": self.rng.randint(0, 1)},
                where=conj(eq("source_u_id", source), eq("target_u_id", target)),
            )
        ]


def generate_epinions(
    config: EpinionsConfig | None = None,
    num_transactions: int = 3000,
    name: str = "epinions",
) -> WorkloadBundle:
    """Generate the Epinions database and request trace."""
    config = config or EpinionsConfig()
    generator = _EpinionsGenerator(config)
    workload = generator.generate_workload(num_transactions, name)
    return WorkloadBundle(
        name=name,
        database=generator.database,
        workload=workload,
        manual_strategy_factory=epinions_manual_strategy,
        hash_columns={
            "users": ("u_id",),
            "items": ("i_id",),
            "reviews": ("r_id",),
            "trust": ("source_u_id",),
        },
        metadata={
            "users": config.num_users,
            "items": config.num_items,
            "communities": config.num_communities,
            "transactions": num_transactions,
            "community_locality": config.community_locality,
        },
    )


def epinions_manual_strategy(num_partitions: int) -> PartitioningStrategy:
    """The MIT students' manual design from the paper.

    Optimise the most frequent requests (Q1, Q4): co-partition ``items`` and
    ``reviews`` by hashing on the item id, and replicate ``users`` and
    ``trust`` on every node.  Reads of user data stay local; updates to users
    and trust (Q6, Q9) become distributed.
    """
    return CompositePartitioning(
        num_partitions,
        {
            "items": hash_on("i_id"),
            "reviews": hash_on("i_id"),
            "users": replicate(),
            "trust": replicate(),
        },
        name="manual",
    )
