"""YCSB workloads A and E (Cooper et al., SoCC 2010) as used in the paper.

* **Workload A** — 50% single-row reads, 50% single-row updates, keys drawn
  from a (scrambled) Zipfian distribution.  Every transaction touches one
  tuple, so any non-replicated strategy yields zero distributed transactions;
  the point of the experiment is that Schism's validation phase falls back to
  plain hash partitioning.
* **Workload E** — 95% short range scans (uniform scan length), 5% single-row
  updates.  Scans defeat hash partitioning but are served perfectly by range
  partitioning, which the explanation phase is expected to discover.
"""

from __future__ import annotations

from repro.catalog.schema import Schema, Table, integer_column
from repro.core.strategies import CompositePartitioning, PartitioningStrategy, range_on
from repro.engine.database import Database
from repro.sqlparse.ast import SelectStatement, UpdateStatement, between, eq
from repro.utils.rng import SeededRng, ScrambledZipfianGenerator
from repro.workload.trace import Workload
from repro.workloads.base import WorkloadBundle


def ycsb_schema() -> Schema:
    """The single-table YCSB schema (key plus a few value fields)."""
    return Schema(
        "ycsb",
        [
            Table(
                "usertable",
                [
                    integer_column("ycsb_key"),
                    integer_column("field0"),
                    integer_column("field1"),
                    integer_column("field2"),
                ],
                primary_key=["ycsb_key"],
            )
        ],
    )


def _load_usertable(database: Database, num_rows: int, rng: SeededRng) -> None:
    for key in range(num_rows):
        database.insert_row(
            "usertable",
            {
                "ycsb_key": key,
                "field0": rng.randint(0, 1_000_000),
                "field1": rng.randint(0, 1_000_000),
                "field2": rng.randint(0, 1_000_000),
            },
        )


def generate_ycsb_a(
    num_rows: int = 10_000,
    num_transactions: int = 10_000,
    zipf_theta: float = 0.99,
    seed: int = 0,
) -> WorkloadBundle:
    """Generate YCSB workload A (50/50 read/update of one Zipfian-chosen tuple)."""
    rng = SeededRng(seed)
    database = Database(ycsb_schema())
    _load_usertable(database, num_rows, rng.fork("load"))
    key_chooser = ScrambledZipfianGenerator(num_rows, theta=zipf_theta, rng=rng.fork("zipf"))
    workload = Workload("ycsb-a")
    for _ in range(num_transactions):
        key = key_chooser.next_value()
        if rng.bernoulli(0.5):
            statement = SelectStatement(("usertable",), where=eq("ycsb_key", key))
            kind = "read"
        else:
            statement = UpdateStatement(
                "usertable", {"field0": rng.randint(0, 1_000_000)}, where=eq("ycsb_key", key)
            )
            kind = "update"
        workload.add_statements([statement], kind=kind)
    return WorkloadBundle(
        name="ycsb-a",
        database=database,
        workload=workload,
        manual_strategy_factory=lambda k: ycsb_range_strategy(k, num_rows),
        hash_columns={"usertable": ("ycsb_key",)},
        metadata={"rows": num_rows, "transactions": num_transactions, "theta": zipf_theta},
    )


def generate_ycsb_e(
    num_rows: int = 10_000,
    num_transactions: int = 10_000,
    max_scan_length: int = 10,
    zipf_theta: float = 0.99,
    seed: int = 0,
) -> WorkloadBundle:
    """Generate YCSB workload E (95% short scans, 5% single-row updates).

    Scan start keys follow a Zipfian distribution (not scrambled, so that the
    scans are contiguous in key space, as in YCSB proper); scan lengths are
    uniform in ``[0, max_scan_length]``.
    """
    rng = SeededRng(seed)
    database = Database(ycsb_schema())
    _load_usertable(database, num_rows, rng.fork("load"))
    # Plain Zipfian over key offsets, spread across the keyspace deterministically
    # so the hot ranges are not all at key zero.
    key_chooser = ScrambledZipfianGenerator(num_rows, theta=zipf_theta, rng=rng.fork("zipf"))
    workload = Workload("ycsb-e")
    for _ in range(num_transactions):
        start = key_chooser.next_value()
        if rng.bernoulli(0.95):
            length = rng.randint(0, max_scan_length)
            statement = SelectStatement(
                ("usertable",),
                where=between("ycsb_key", start, min(num_rows - 1, start + length)),
            )
            workload.add_statements([statement], kind="scan")
        else:
            statement = UpdateStatement(
                "usertable", {"field0": rng.randint(0, 1_000_000)}, where=eq("ycsb_key", start)
            )
            workload.add_statements([statement], kind="update")
    return WorkloadBundle(
        name="ycsb-e",
        database=database,
        workload=workload,
        manual_strategy_factory=lambda k: ycsb_range_strategy(k, num_rows),
        hash_columns={"usertable": ("ycsb_key",)},
        metadata={
            "rows": num_rows,
            "transactions": num_transactions,
            "max_scan_length": max_scan_length,
            "theta": zipf_theta,
        },
    )


def ycsb_range_strategy(num_partitions: int, num_rows: int) -> PartitioningStrategy:
    """Manual baseline: even range partitioning of the key space."""
    boundaries = [
        (index + 1) * num_rows / num_partitions - 1 for index in range(num_partitions - 1)
    ]
    return CompositePartitioning(
        num_partitions,
        {"usertable": range_on("ycsb_key", boundaries)},
        name="manual",
    )
