"""Streaming workload monitor with drift detection.

The monitor ingests :class:`~repro.workload.trace.TransactionAccess` objects
one batch at a time (the same chunked batches the offline pipeline can
stream through :meth:`AccessTrace.iter_batches`) and maintains:

* a **sliding window** of the most recent transactions, used to re-evaluate
  placement quality (distributed fraction, per-partition load) against the
  *current* routing strategy;
* **exponentially-decayed tuple access counts**, aged once per ingest epoch,
  from which the current hot set is derived.  The decay uses a global scale
  factor so per-access work stays O(touched tuples) — the stored counts are
  renormalised only when the scale risks underflow.  Alongside the total,
  separate decayed **read** and **write** counts are kept per tuple: their
  ratio identifies read-mostly tuples, which is what the replication-aware
  online placement widens into replica sets;
* a decayed **transaction rate** (transactions per ingest epoch), the load
  signal the elastic partition-scaling policy watches;
* a **baseline snapshot** (hot set + distributed fraction) taken right after
  (re-)partitioning, against which drift is measured.

Drift is reported when any of three signals crosses its threshold: the
windowed distributed-transaction fraction rises above the baseline by more
than ``drift_distributed_increase``, the per-partition transaction load skew
(max/mean) exceeds ``drift_skew_threshold``, or the hot-tuple churn (1 -
overlap between the current and baseline hot sets) exceeds
``drift_churn_threshold``.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable

from repro.catalog.tuples import TupleId
from repro.core.cost import transaction_partitions
from repro.core.strategies import PartitioningStrategy
from repro.obs import get_telemetry
from repro.workload.trace import TransactionAccess

#: Renormalise stored counts once the inverse scale grows past this.
_RENORMALISE_LIMIT = 1e12
#: Drop decayed counts below this fraction of one fresh access.
_PRUNE_FRACTION = 1e-4


@dataclass
class MonitorOptions:
    """Tuning knobs of the workload monitor."""

    #: number of recent transactions kept in the sliding window.
    window_size: int = 1000
    #: per-epoch decay factor for the tuple access counts (1.0 disables aging).
    decay: float = 0.95
    #: size of the tracked hot-tuple set.
    hot_set_size: int = 32
    #: drift when the windowed distributed fraction exceeds the baseline by this much.
    drift_distributed_increase: float = 0.10
    #: drift when max/mean per-partition transaction load exceeds this...
    drift_skew_threshold: float = 1.75
    #: ...and also exceeds the baseline skew by this much (an inherently
    #: skewed workload must not re-trigger futile adaptations forever).
    drift_skew_increase: float = 0.25
    #: drift when 1 - |hot_now & hot_baseline| / hot_set_size exceeds this.
    drift_churn_threshold: float = 0.60
    #: the churn signal only counts when the hot set carries at least this
    #: share of the total decayed access weight: on near-uniform traffic the
    #: "hot set" is sampling noise (observed share ~6% on the simplecount
    #: deploy) and its churn is perpetual, so without the gate steady
    #: uniform workloads read as drifted forever; genuinely skewed streams
    #: (rotating hotspot ~11%, read-hot ~20%) clear the bar.  ``None``
    #: (the default) derives the bar from the observed weight distribution:
    #: ``lift x hot_set_size / tracked_tuples`` — the uniform expectation
    #: of the share, lifted — clamped to ``[drift_churn_share_floor, 0.95]``.
    #: A fixed value here applies verbatim (the pre-auto behaviour), which a
    #: workload sitting between the uniform and skewed regimes may need.
    drift_churn_min_weight_share: float | None = None
    #: floor of the auto-derived churn weight-share bar (the old fixed
    #: default): tracking few tuples makes the uniform expectation large,
    #: but the bar never drops below this on wide uniform traffic.
    drift_churn_share_floor: float = 0.10
    #: the auto-derived bar is this multiple of the uniform expectation
    #: ``hot_set_size / tracked_tuples``: a hot set must carry meaningfully
    #: more weight than chance before its churn means anything.
    drift_churn_share_lift: float = 1.25
    #: suppress drift reports until the window holds at least this many transactions.
    min_window_fill: int = 50
    #: smoothing factor of the decayed transactions-per-epoch rate estimate
    #: (EWMA weight of the newest epoch; 1.0 tracks only the last epoch).
    rate_smoothing: float = 0.3

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if self.hot_set_size <= 0:
            raise ValueError("hot_set_size must be positive")
        # The window can never fill past its capacity; an uncapped
        # min_window_fill would silently disable drift detection forever.
        self.min_window_fill = min(self.min_window_fill, self.window_size)
        if not 0.0 < self.rate_smoothing <= 1.0:
            raise ValueError("rate_smoothing must be in (0, 1]")
        if self.drift_churn_min_weight_share is not None and not (
            0.0 <= self.drift_churn_min_weight_share <= 1.0
        ):
            raise ValueError("drift_churn_min_weight_share must be in [0, 1] or None")
        if not 0.0 <= self.drift_churn_share_floor <= 1.0:
            raise ValueError("drift_churn_share_floor must be in [0, 1]")
        if self.drift_churn_share_lift < 1.0:
            raise ValueError("drift_churn_share_lift must be at least 1.0")


@dataclass
class WindowStats:
    """Placement-quality statistics over the monitor's sliding window."""

    transactions: int
    distributed_fraction: float
    load_skew: float
    hot_tuples: tuple[TupleId, ...]
    hot_churn: float
    baseline_distributed_fraction: float


@dataclass
class DriftReport:
    """Outcome of one drift check."""

    drifted: bool
    reasons: list[str] = field(default_factory=list)
    stats: WindowStats | None = None

    def describe(self) -> str:
        """One-line summary for logs and experiment reports."""
        if not self.drifted:
            return "no drift"
        return "drift: " + "; ".join(self.reasons)


class WorkloadMonitor:
    """Streaming monitor over live transaction accesses.

    Parameters
    ----------
    options:
        Monitor tuning knobs.
    strategy:
        The routing strategy currently deployed; used to attribute each
        observed transaction to partitions.  Replace it via
        :meth:`rebaseline` after a re-partition.
    """

    def __init__(
        self,
        options: MonitorOptions | None = None,
        strategy: PartitioningStrategy | None = None,
    ) -> None:
        self.options = options or MonitorOptions()
        self.strategy = strategy
        num_partitions = strategy.num_partitions if strategy is not None else 0
        #: (access, participant partitions) per window slot.
        self._window: Deque[tuple[TransactionAccess, frozenset[int]]] = deque(
            maxlen=self.options.window_size
        )
        self._window_distributed = 0
        self._partition_load = [0] * num_partitions
        # Decayed per-tuple access counts via the global-scale trick:
        # true_count = stored * _scale; ingest adds 1 / _scale, aging divides
        # _scale by decay, and the stored values are renormalised only when
        # the increment would lose precision.
        self._counts: dict[TupleId, float] = {}
        # Decayed read/write splits of the same counts (shared scale): the
        # read fraction of a tuple decides whether it is a replication
        # candidate (read-mostly) or must stay single-homed (write-heavy).
        self._read_counts: dict[TupleId, float] = {}
        self._write_counts: dict[TupleId, float] = {}
        self._scale = 1.0
        self._increment = 1.0
        # Decayed transactions-per-epoch estimate (the elastic load signal).
        self._epoch_ingested = 0
        self._rate = 0.0
        self._rate_primed = False
        self.transactions_seen = 0
        self.epochs = 0
        self._baseline_hot: frozenset[TupleId] = frozenset()
        self._baseline_distributed = 0.0
        self._baseline_skew = 1.0
        #: window fill when the baseline was last snapshot (-1 = never).
        self._baseline_window = -1
        metrics = get_telemetry().metrics
        self._batches_counter = metrics.counter(
            "monitor.batches", "traffic batches ingested by the workload monitor"
        )
        self._drift_counter = metrics.counter(
            "monitor.drift_checks", "drift checks by outcome", labels=("drifted",)
        )

    # -- ingest -----------------------------------------------------------------------
    def ingest(self, access: TransactionAccess) -> None:
        """Observe one transaction."""
        participants = (
            transaction_partitions(self.strategy, access)
            if self.strategy is not None
            else frozenset()
        )
        if len(self._window) == self._window.maxlen:
            self._evict(self._window[0])
        self._window.append((access, participants))
        if len(participants) > 1:
            self._window_distributed += 1
        for partition in participants:
            self._partition_load[partition] += 1
        increment = self._increment
        # read_set/write_set/touched are recomputing properties; evaluate
        # the two base sets once and union locally (touched would rebuild
        # all three).
        read_set = access.read_set
        write_set = access.write_set
        counts = self._counts
        for tuple_id in read_set | write_set:
            counts[tuple_id] = counts.get(tuple_id, 0.0) + increment
        read_counts = self._read_counts
        for tuple_id in read_set:
            read_counts[tuple_id] = read_counts.get(tuple_id, 0.0) + increment
        write_counts = self._write_counts
        for tuple_id in write_set:
            write_counts[tuple_id] = write_counts.get(tuple_id, 0.0) + increment
        self.transactions_seen += 1
        self._epoch_ingested += 1

    def ingest_batch(self, batch: Iterable[TransactionAccess]) -> None:
        """Observe one chunk of transactions, then age the counts one epoch."""
        for access in batch:
            self.ingest(access)
        self.advance_epoch()
        self._batches_counter.inc()

    def advance_epoch(self) -> None:
        """Age the decayed counts by one epoch (cheap; amortised O(1) per call)."""
        self.epochs += 1
        smoothing = self.options.rate_smoothing
        if self._rate_primed:
            self._rate += smoothing * (self._epoch_ingested - self._rate)
        else:
            # Seed the rate estimate from the first epoch instead of decaying
            # up from zero (which would under-report load for many epochs).
            self._rate = float(self._epoch_ingested)
            self._rate_primed = True
        self._epoch_ingested = 0
        decay = self.options.decay
        if decay >= 1.0:
            return
        self._scale *= decay
        self._increment = 1.0 / self._scale
        if self._increment > _RENORMALISE_LIMIT:
            self._renormalise()

    def _renormalise(self) -> None:
        scale = self._scale
        prune_below = _PRUNE_FRACTION / scale

        def rescaled(counts: dict[TupleId, float]) -> dict[TupleId, float]:
            return {
                tuple_id: stored * scale
                for tuple_id, stored in counts.items()
                if stored >= prune_below
            }

        self._counts = rescaled(self._counts)
        self._read_counts = rescaled(self._read_counts)
        self._write_counts = rescaled(self._write_counts)
        self._scale = 1.0
        self._increment = 1.0

    def _evict(self, slot: tuple[TransactionAccess, frozenset[int]]) -> None:
        _, participants = slot
        if len(participants) > 1:
            self._window_distributed -= 1
        for partition in participants:
            self._partition_load[partition] -= 1

    # -- statistics -------------------------------------------------------------------
    def access_count(self, tuple_id: TupleId) -> float:
        """Decayed access count of ``tuple_id``."""
        return self._counts.get(tuple_id, 0.0) * self._scale

    def read_count(self, tuple_id: TupleId) -> float:
        """Decayed count of transactions that *read* ``tuple_id``."""
        return self._read_counts.get(tuple_id, 0.0) * self._scale

    def write_count(self, tuple_id: TupleId) -> float:
        """Decayed count of transactions that *wrote* ``tuple_id``."""
        return self._write_counts.get(tuple_id, 0.0) * self._scale

    def read_fraction(self, tuple_id: TupleId) -> float:
        """Decayed fraction of accesses to ``tuple_id`` that are reads.

        1.0 for read-only tuples, 0.0 for write-only ones (and for tuples
        never observed — an unknown tuple must not look replication-worthy).
        """
        reads = self._read_counts.get(tuple_id, 0.0)
        writes = self._write_counts.get(tuple_id, 0.0)
        total = reads + writes
        if total <= 0.0:
            return 0.0
        return reads / total

    def transaction_rate(self) -> float:
        """Decayed transactions-per-epoch estimate (the elastic load signal)."""
        return self._rate

    def hot_tuples(self) -> tuple[TupleId, ...]:
        """The ``hot_set_size`` most-accessed tuples (deterministic tie-break).

        ``nsmallest`` over ``(-count, id)`` is the O(N log k) top-k selection
        — this runs inside every drift check, so a full sort of the counts
        dict would dominate the ingest path once many tuples are tracked.
        """
        ranked = heapq.nsmallest(
            self.options.hot_set_size,
            self._counts.items(),
            key=lambda item: (-item[1], item[0]),
        )
        return tuple(tuple_id for tuple_id, _ in ranked)

    def window_trace_accesses(self) -> list[TransactionAccess]:
        """The sliding window's transactions, oldest first."""
        return [access for access, _ in self._window]

    def window_stats(self) -> WindowStats:
        """Current window statistics (distributed fraction, skew, churn)."""
        window = len(self._window)
        distributed = self._window_distributed / window if window else 0.0
        load = self._partition_load
        total_load = sum(load)
        if load and total_load > 0:
            mean = total_load / len(load)
            skew = max(load) / mean
        else:
            skew = 1.0
        hot = self.hot_tuples()
        if self._baseline_hot:
            overlap = len(self._baseline_hot & frozenset(hot))
            churn = 1.0 - overlap / max(1, min(len(self._baseline_hot), self.options.hot_set_size))
        else:
            churn = 0.0
        return WindowStats(
            transactions=window,
            distributed_fraction=distributed,
            load_skew=skew,
            hot_tuples=hot,
            hot_churn=churn,
            baseline_distributed_fraction=self._baseline_distributed,
        )

    # -- drift ------------------------------------------------------------------------
    def set_baseline(self) -> None:
        """Snapshot the current hot set and distributed fraction as "normal".

        Call right after (re-)partitioning: subsequent drift is measured
        against this snapshot.
        """
        self._baseline_hot = frozenset(self.hot_tuples())
        window = len(self._window)
        self._baseline_distributed = self._window_distributed / window if window else 0.0
        self._baseline_skew = self.window_stats().load_skew
        self._baseline_window = window

    def rebaseline(self, strategy: PartitioningStrategy) -> None:
        """Adopt a newly deployed ``strategy`` and reset the drift baseline.

        The window's recorded participant sets reflect routing at observation
        time; they are re-attributed under the new strategy so the baseline
        distributed fraction matches the post-migration reality.
        """
        self.strategy = strategy
        self._partition_load = [0] * strategy.num_partitions
        self._window_distributed = 0
        reattributed: Deque[tuple[TransactionAccess, frozenset[int]]] = deque(
            maxlen=self.options.window_size
        )
        for access, _ in self._window:
            participants = transaction_partitions(strategy, access)
            reattributed.append((access, participants))
            if len(participants) > 1:
                self._window_distributed += 1
            for partition in participants:
                self._partition_load[partition] += 1
        self._window = reattributed
        self.set_baseline()

    def check_drift(self) -> DriftReport:
        """Compare the current window against the baseline snapshot."""
        report = self._check_drift()
        self._drift_counter.inc(drifted="true" if report.drifted else "false")
        return report

    def _check_drift(self) -> DriftReport:
        stats = self.window_stats()
        if stats.transactions < self.options.min_window_fill:
            return DriftReport(False, ["window not yet filled"], stats)
        if self._baseline_window <= 0:
            # The baseline was never taken from real traffic (a cold deploy
            # with no warm-up trace snapshots an empty window): adopt the
            # first *full* window as "normal" instead of reading steady
            # traffic as drift against an all-zero snapshot.  Waiting for a
            # full window (not just min_window_fill) matters because an
            # early window over-represents the few tuples seen so far — its
            # hot set and distributed fraction are not yet "normal".  A
            # baseline from a small-but-real warm-up window is kept — it
            # carries genuine signal to drift against.
            if len(self._window) == self._window.maxlen:
                self.set_baseline()
                return DriftReport(
                    False, ["baseline adopted from first full window"], stats
                )
            return DriftReport(False, ["baseline pending a full window"], stats)
        reasons: list[str] = []
        increase = stats.distributed_fraction - self._baseline_distributed
        if increase > self.options.drift_distributed_increase:
            reasons.append(
                f"distributed fraction {stats.distributed_fraction:.1%} "
                f"(baseline {self._baseline_distributed:.1%})"
            )
        if (
            stats.load_skew > self.options.drift_skew_threshold
            and stats.load_skew > self._baseline_skew + self.options.drift_skew_increase
        ):
            reasons.append(
                f"load skew {stats.load_skew:.2f} (baseline {self._baseline_skew:.2f})"
            )
        if (
            self._baseline_hot
            and stats.hot_churn > self.options.drift_churn_threshold
            and self.hot_weight_share() >= self.churn_weight_share_threshold()
        ):
            reasons.append(f"hot-tuple churn {stats.hot_churn:.1%}")
        return DriftReport(bool(reasons), reasons, stats)

    def churn_weight_share_threshold(self) -> float:
        """The weight share the hot set must carry for churn to count.

        An explicitly configured ``drift_churn_min_weight_share`` applies
        verbatim.  Otherwise the bar adapts to the observed distribution:
        under uniform traffic over N tracked tuples the hot set's expected
        share is ``hot_set_size / N``, so requiring ``lift`` times that
        separates "the top-k of noise" from genuine skew at any N — a fixed
        bar cannot, because the uniform expectation itself moves with the
        tracked population (~6% on the simplecount deploy, ~50% when only a
        handful of tuples are tracked).  Clamped to
        ``[drift_churn_share_floor, 0.95]`` so wide uniform workloads keep
        the old 10% bar and a tiny tracked population cannot push the bar
        above what even total skew could reach.
        """
        options = self.options
        if options.drift_churn_min_weight_share is not None:
            return options.drift_churn_min_weight_share
        tracked = len(self._counts)
        if tracked <= 0:
            return options.drift_churn_share_floor
        uniform_expectation = min(1.0, options.hot_set_size / tracked)
        derived = options.drift_churn_share_lift * uniform_expectation
        return max(options.drift_churn_share_floor, min(0.95, derived))

    def hot_weight_share(self) -> float:
        """Fraction of the total decayed access weight the hot set carries.

        Near 1.0 for genuinely skewed traffic, ~``hot_set_size / tuples``
        for uniform traffic (where the "hot set" is just sampling noise).
        The stored counts share one global scale, so the ratio is exact.
        """
        total = sum(self._counts.values())
        if total <= 0.0:
            return 0.0
        hot = sum(self._counts.get(tuple_id, 0.0) for tuple_id in self.hot_tuples())
        return hot / total
