"""Incremental maintenance of the tuple-access graph.

The offline builder (:mod:`repro.graph.builder`) reconstructs the whole
graph from a trace — with coalescing and replication stars — every time it
runs.  Online we need the opposite trade-off: cheap per-transaction deltas
on a graph that is always ready to be re-frozen.  The maintainer therefore
keeps **one node per tuple** (no coalescing, no stars: both are global
properties of a finished trace and do not compose with streaming deltas; the
budgeted re-partitioner compensates by warm-starting from the current
placement) and maintains:

* node weights = decayed per-tuple access counts (the paper's ``workload``
  balancing mode);
* clique edges among the tuples touched by each transaction, weights
  accumulating exactly as in the offline builder;
* exponential aging via a **global scale factor** (the same trick the
  workload monitor uses): stored weights are true weights divided by
  ``_scale``, so one epoch of decay is a single multiplication of the
  scale, not an O(V + E) sweep.  Fresh contributions are added as
  ``1 / _scale``; the stored values are renormalised only when that
  increment risks losing precision.  The periodic prune
  (:meth:`Graph.prune_edges`, with the threshold expressed in stored
  units) drops decayed-out co-access pairs so the graph stays bounded.

``freeze`` folds the pending scale into the weights and re-compiles to CSR
only when the controller decides to re-partition — never per transaction.

**Replication stars, online.**  The offline builder's star expansion (one
satellite per accessing transaction, replication edges weighted by the write
count plus an epsilon) is a whole-trace construct, but its *decision
structure* survives streaming: alongside the total node weight the
maintainer keeps decayed per-node **read** and **write** weights, and
:meth:`freeze_replicated` expands the chosen read-hot candidates into
bounded stars at freeze time — one satellite per (heaviest) co-access
neighbour, each carrying that neighbour's transaction edge, all tied to the
centre by an edge of weight ``write_weight + replication_epsilon`` (the
consistency cost every extra replica must pay).  The k-way min-cut then
trades replication against distribution per tuple exactly as in §3.1/§4.1
of the paper: satellites scatter across partitions only when the read
traffic they localise outweighs the write-synchronisation edge.  The
streaming graph itself stays one-node-per-tuple; the expansion exists only
in the frozen copy handed to the re-partitioner.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Sequence

from repro.catalog.tuples import TupleId
from repro.graph.model import CSRGraph, Graph
from repro.workload.trace import TransactionAccess

#: Renormalise stored weights once the per-access increment grows past this.
_RENORMALISE_LIMIT = 1e12


@dataclass
class MaintainerOptions:
    """Tuning knobs of the incremental graph maintainer."""

    #: per-epoch decay factor applied to all node/edge weights (1.0 disables).
    decay: float = 0.95
    #: edges whose decayed (true) weight falls below this are dropped.
    prune_threshold: float = 0.05
    #: skip transactions touching more than this many tuples (clique blow-up
    #: guard, mirroring the offline blanket-statement filter).
    blanket_transaction_threshold: int = 100
    #: run the prune sweep every this many epochs (it is O(E)).
    prune_interval: int = 8
    #: constant added to every online replication edge (mirrors the offline
    #: builder's ``replication_epsilon``): a replica must save strictly more
    #: read traffic than the storage/consistency cost it introduces.
    replication_epsilon: float = 0.1
    #: cap on satellites per replication candidate in
    #: :meth:`IncrementalGraphMaintainer.freeze_replicated`; the heaviest
    #: co-access neighbours get satellites, the tail stays on the centre.
    max_satellites: int = 12

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if self.prune_interval <= 0:
            raise ValueError("prune_interval must be positive")
        if self.replication_epsilon < 0:
            raise ValueError("replication_epsilon must be non-negative")
        self.max_satellites = max(1, int(self.max_satellites))


@dataclass
class StarExpansion:
    """Bookkeeping of one :meth:`~IncrementalGraphMaintainer.freeze_replicated` call.

    The expanded graph keeps the base nodes at their original ids (centres of
    exploded candidates included) and appends every satellite after them, so
    ``node < num_base_nodes`` identifies a base node.
    """

    #: number of nodes of the unexpanded graph (satellites start here).
    num_base_nodes: int
    #: base candidate node -> its satellite node ids (in the expanded graph).
    satellites: dict[int, list[int]]
    #: satellite node -> the base candidate node it belongs to.
    owner: dict[int, int]
    #: satellite node -> the partition whose neighbour bucket it aggregates
    #: (its natural warm-start home when the tuple already has a replica there).
    satellite_bucket: dict[int, int] = field(default_factory=dict)

    def placement_nodes(self, base_node: int) -> list[int]:
        """The expanded nodes whose partitions form ``base_node``'s replica set.

        For an exploded candidate these are its satellites (the centre only
        ties the copies together, exactly as in the offline builder); for any
        other node it is the node itself.
        """
        stars = self.satellites.get(base_node)
        return stars if stars else [base_node]


class IncrementalGraphMaintainer:
    """Applies streaming transaction deltas to a mutable tuple graph."""

    def __init__(self, options: MaintainerOptions | None = None) -> None:
        self.options = options or MaintainerOptions()
        self.graph = Graph()
        self._node_of: dict[TupleId, int] = {}
        self._tuple_of: list[TupleId] = []
        # Decayed per-node read/write splits of the access weight (stored
        # units, same scale as the graph weights): the read/write ratio is
        # what makes a tuple a replication candidate.
        self._read_weights: list[float] = []
        self._write_weights: list[float] = []
        # Lazy decay state: true weight = stored weight * _scale, and fresh
        # accesses contribute _increment == 1 / _scale stored units.
        self._scale = 1.0
        self._increment = 1.0
        self.epochs = 0
        self.transactions_applied = 0

    # -- node bookkeeping --------------------------------------------------------------
    @property
    def num_tuples(self) -> int:
        """Number of tuples represented (== graph nodes; ids are stable)."""
        return len(self._tuple_of)

    def node_of(self, tuple_id: TupleId) -> int | None:
        """Graph node for ``tuple_id`` (None when never observed)."""
        return self._node_of.get(tuple_id)

    def tuple_of(self, node: int) -> TupleId:
        """Tuple behind graph node ``node``."""
        return self._tuple_of[node]

    def tuples(self) -> list[TupleId]:
        """All represented tuples in node-id order."""
        return list(self._tuple_of)

    def node_weight(self, node: int) -> float:
        """Decayed (true) access weight of ``node``."""
        return self.graph.node_weights[node] * self._scale

    def edge_weight(self, u: int, v: int) -> float:
        """Decayed (true) co-access weight of the edge ``{u, v}``."""
        return self.graph.edge_weight(u, v) * self._scale

    def read_weight(self, node: int) -> float:
        """Decayed (true) read-access weight of ``node``."""
        return self._read_weights[node] * self._scale

    def write_weight(self, node: int) -> float:
        """Decayed (true) write-access weight of ``node``."""
        return self._write_weights[node] * self._scale

    def read_fraction(self, node: int) -> float:
        """Decayed fraction of accesses to ``node`` that are reads (0.0 when unseen)."""
        reads = self._read_weights[node]
        writes = self._write_weights[node]
        total = reads + writes
        if total <= 0.0:
            return 0.0
        return reads / total

    def _node_for(self, tuple_id: TupleId) -> int:
        node = self._node_of.get(tuple_id)
        if node is None:
            node = self.graph.add_node(0.0)
            self._node_of[tuple_id] = node
            self._tuple_of.append(tuple_id)
            self._read_weights.append(0.0)
            self._write_weights.append(0.0)
        return node

    # -- deltas ------------------------------------------------------------------------
    def apply(self, access: TransactionAccess) -> None:
        """Fold one transaction into the graph (node weights + clique edges)."""
        read_set = access.read_set
        write_set = access.write_set
        touched = read_set | write_set
        if len(touched) > self.options.blanket_transaction_threshold:
            return
        graph = self.graph
        increment = self._increment
        # Sort by tuple id *before* node creation: node ids must not depend
        # on frozenset iteration order (string hashing is salted per process).
        nodes = sorted(self._node_for(tuple_id) for tuple_id in sorted(touched))
        for node in nodes:
            graph.set_node_weight(node, graph.node_weights[node] + increment)
        self._record_read_write(read_set, write_set, increment)
        for u, v in combinations(nodes, 2):
            graph.add_edge(u, v, increment)
        self.transactions_applied += 1

    def _record_read_write(
        self,
        read_set: frozenset[TupleId],
        write_set: frozenset[TupleId],
        increment: float,
    ) -> None:
        """Split one transaction's contribution into read and write weight."""
        node_of = self._node_of
        read_weights = self._read_weights
        for tuple_id in read_set:
            read_weights[node_of[tuple_id]] += increment
        write_weights = self._write_weights
        for tuple_id in write_set:
            write_weights[node_of[tuple_id]] += increment

    def apply_batch(self, batch: Iterable[TransactionAccess]) -> None:
        """Fold one chunk of transactions, batching edge accumulation, then age.

        Mirrors the offline builder's batched clique accumulation: duplicate
        pairs within the batch hit one flat Counter instead of two adjacency
        dicts per occurrence.
        """
        graph = self.graph
        threshold = self.options.blanket_transaction_threshold
        increment = self._increment
        pair_weights: Counter[tuple[int, int]] = Counter()
        for access in batch:
            read_set = access.read_set
            write_set = access.write_set
            touched = read_set | write_set
            if len(touched) > threshold:
                continue
            # Sorted tuple order first: node-id assignment must be
            # process-independent (see ``apply``).
            nodes = sorted(self._node_for(tuple_id) for tuple_id in sorted(touched))
            for node in nodes:
                graph.set_node_weight(node, graph.node_weights[node] + increment)
            self._record_read_write(read_set, write_set, increment)
            pair_weights.update(combinations(nodes, 2))
            self.transactions_applied += 1
        graph.add_weighted_edges(
            (pair, count * increment) for pair, count in pair_weights.items()
        )
        self.advance_epoch()

    def advance_epoch(self) -> None:
        """Age all weights one epoch (O(1): one scale update).

        The periodic prune (every ``prune_interval`` epochs) and the rare
        precision renormalisation are the only O(E) work on the ingest path.
        """
        self.epochs += 1
        if self.options.decay < 1.0:
            self._scale *= self.options.decay
            self._increment = 1.0 / self._scale
            if self._increment > _RENORMALISE_LIMIT:
                self._materialise_scale()
        if self.epochs % self.options.prune_interval == 0:
            # True threshold expressed in stored units.
            self.graph.prune_edges(self.options.prune_threshold * self._increment)

    def _materialise_scale(self) -> None:
        """Fold the pending scale into the stored weights (O(V + E), rare)."""
        if self._scale != 1.0:
            self.graph.scale_weights(self._scale)
            scale = self._scale
            self._read_weights = [weight * scale for weight in self._read_weights]
            self._write_weights = [weight * scale for weight in self._write_weights]
            self._scale = 1.0
            self._increment = 1.0

    # -- freezing ----------------------------------------------------------------------
    def freeze(self) -> tuple[CSRGraph, list[TupleId]]:
        """Compile the current graph to CSR plus the node -> tuple mapping.

        Folds the lazily-accumulated decay into the weights first, so the
        CSR carries true weights.  Called only when the controller triggers
        a re-partition; streaming ingest never pays the O(V + E) freeze.
        """
        self._materialise_scale()
        return self.graph.freeze(), list(self._tuple_of)

    def replication_candidates(
        self,
        min_read_fraction: float = 0.9,
        max_candidates: int = 64,
        min_weight: float = 1.0,
        retained: Iterable[int] = (),
        retention_read_fraction: float | None = None,
    ) -> list[int]:
        """Read-hot nodes worth considering for replication, hottest first.

        A node qualifies when its decayed read fraction reaches
        ``min_read_fraction``, its decayed access weight reaches
        ``min_weight`` (cold tuples are never worth a replica) and it has at
        least one co-access edge (an isolated tuple gains nothing from
        copies).  The ``max_candidates`` heaviest qualifiers are returned in
        deterministic ``(-weight, node)`` order.

        ``retained`` names nodes whose tuples are *currently replicated*;
        they qualify at the lower ``retention_read_fraction`` bar instead.
        This is the hysteresis that keeps a just-paid-for replica set from
        being dropped (and re-copied next cycle) when decay noise dips a
        tuple's read fraction marginally below the entry bar — a retained
        candidate still goes through the min-cut, which consolidates its
        satellites the moment the replicas stop earning their write cost.
        """
        graph = self.graph
        retained_nodes = set(retained) if retention_read_fraction is not None else set()
        ranked: list[tuple[float, int]] = []
        min_stored_weight = min_weight / self._scale
        for node in range(len(self._tuple_of)):
            weight = graph.node_weights[node]
            if weight < min_stored_weight or graph.degree(node) == 0:
                continue
            bar = (
                retention_read_fraction
                if node in retained_nodes
                else min_read_fraction
            )
            if self.read_fraction(node) < bar:
                continue
            ranked.append((-weight, node))
        ranked.sort()
        return [node for _, node in ranked[: max(0, max_candidates)]]

    def freeze_replicated(
        self, candidates: Iterable[int], primary_of: Sequence[int]
    ) -> tuple[CSRGraph, list[TupleId], StarExpansion]:
        """Freeze with the given nodes expanded into replication stars.

        The online rendition of the offline builder's star expansion (§3.1
        of the paper): each candidate becomes a centre (weight 0 — the
        workload lands on the copies) plus one satellite per **partition
        bucket** of its co-access neighbours (``primary_of`` gives each
        neighbour's current partition).  The satellite inherits every
        transaction edge towards the neighbours of its bucket and is tied to
        the centre by a replication edge of weight ``write_weight +
        replication_epsilon`` — the synchronisation cost an extra replica
        must pay.  The min-cut therefore weighs the *aggregate* read traffic
        a partition's readers would save against one replica's write cost,
        which is the true economics of tuple replication (the offline
        builder's per-transaction satellites express the same trade-off; a
        decayed online graph no longer remembers individual transactions, so
        the bucket is the faithful aggregate).  The candidate's node weight
        is split evenly over its satellites, preserving total weight and
        therefore balance.  Edges between two candidates connect their
        mutual bucket satellites.  ``max_satellites`` caps the buckets per
        candidate (heaviest first) as a safety bound; with bucketing it only
        binds when partitions outnumber the cap.

        Returns the frozen expanded graph, the node -> tuple mapping of the
        *base* nodes, and the :class:`StarExpansion` bookkeeping needed to
        translate an expanded assignment back into per-tuple replica sets.
        """
        self._materialise_scale()
        base = self.graph
        num_base = base.num_nodes
        if len(primary_of) < num_base:
            raise ValueError("primary_of must cover every maintained node")
        candidate_set = {
            node for node in candidates if 0 <= node < num_base and base.degree(node) > 0
        }
        if not candidate_set:
            csr, tuples = self.freeze()
            return csr, tuples, StarExpansion(num_base, {}, {})
        epsilon = self.options.replication_epsilon
        cap = self.options.max_satellites
        expanded = Graph()
        for node in range(num_base):
            if node in candidate_set:
                expanded.add_node(0.0)
            else:
                expanded.add_node(base.node_weights[node])
        # candidate -> (neighbour partition bucket -> satellite node).
        starred: dict[int, dict[int, int]] = {}
        satellites: dict[int, list[int]] = {}
        owner: dict[int, int] = {}
        satellite_bucket: dict[int, int] = {}
        for node in sorted(candidate_set):
            bucket_weights: dict[int, float] = {}
            for neighbour, weight in base.neighbors(node).items():
                bucket = primary_of[neighbour]
                bucket_weights[bucket] = bucket_weights.get(bucket, 0.0) + weight
            chosen = [
                bucket
                for bucket, _ in sorted(
                    bucket_weights.items(), key=lambda item: (-item[1], item[0])
                )[:cap]
            ]
            share = base.node_weights[node] / len(chosen)
            replication_edge = self._write_weights[node] + epsilon
            node_satellites: list[int] = []
            per_bucket: dict[int, int] = {}
            for bucket in chosen:
                satellite = expanded.add_node(share)
                expanded.add_edge(node, satellite, replication_edge)
                per_bucket[bucket] = satellite
                node_satellites.append(satellite)
                owner[satellite] = node
                satellite_bucket[satellite] = bucket
            starred[node] = per_bucket
            satellites[node] = node_satellites
        def endpoint(this: int, other: int) -> int:
            """The expanded node carrying ``this``'s edge towards ``other``."""
            per_bucket = starred.get(this)
            if per_bucket is None:
                return this
            # Neighbours of an uncapped candidate always have a bucket
            # satellite; with a binding cap the tail buckets stay on the
            # centre, mirroring the per-neighbour tail of the offline star.
            return per_bucket.get(primary_of[other], this)

        for u, v, weight in base.edges():
            expanded.add_edge(endpoint(u, v), endpoint(v, u), weight)
        return expanded.freeze(), list(self._tuple_of), StarExpansion(
            num_base, satellites, owner, satellite_bucket
        )
