"""Incremental maintenance of the tuple-access graph.

The offline builder (:mod:`repro.graph.builder`) reconstructs the whole
graph from a trace — with coalescing and replication stars — every time it
runs.  Online we need the opposite trade-off: cheap per-transaction deltas
on a graph that is always ready to be re-frozen.  The maintainer therefore
keeps **one node per tuple** (no coalescing, no stars: both are global
properties of a finished trace and do not compose with streaming deltas; the
budgeted re-partitioner compensates by warm-starting from the current
placement) and maintains:

* node weights = decayed per-tuple access counts (the paper's ``workload``
  balancing mode);
* clique edges among the tuples touched by each transaction, weights
  accumulating exactly as in the offline builder;
* exponential aging via a **global scale factor** (the same trick the
  workload monitor uses): stored weights are true weights divided by
  ``_scale``, so one epoch of decay is a single multiplication of the
  scale, not an O(V + E) sweep.  Fresh contributions are added as
  ``1 / _scale``; the stored values are renormalised only when that
  increment risks losing precision.  The periodic prune
  (:meth:`Graph.prune_edges`, with the threshold expressed in stored
  units) drops decayed-out co-access pairs so the graph stays bounded.

``freeze`` folds the pending scale into the weights and re-compiles to CSR
only when the controller decides to re-partition — never per transaction.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

from repro.catalog.tuples import TupleId
from repro.graph.model import CSRGraph, Graph
from repro.workload.trace import TransactionAccess

#: Renormalise stored weights once the per-access increment grows past this.
_RENORMALISE_LIMIT = 1e12


@dataclass
class MaintainerOptions:
    """Tuning knobs of the incremental graph maintainer."""

    #: per-epoch decay factor applied to all node/edge weights (1.0 disables).
    decay: float = 0.95
    #: edges whose decayed (true) weight falls below this are dropped.
    prune_threshold: float = 0.05
    #: skip transactions touching more than this many tuples (clique blow-up
    #: guard, mirroring the offline blanket-statement filter).
    blanket_transaction_threshold: int = 100
    #: run the prune sweep every this many epochs (it is O(E)).
    prune_interval: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if self.prune_interval <= 0:
            raise ValueError("prune_interval must be positive")


class IncrementalGraphMaintainer:
    """Applies streaming transaction deltas to a mutable tuple graph."""

    def __init__(self, options: MaintainerOptions | None = None) -> None:
        self.options = options or MaintainerOptions()
        self.graph = Graph()
        self._node_of: dict[TupleId, int] = {}
        self._tuple_of: list[TupleId] = []
        # Lazy decay state: true weight = stored weight * _scale, and fresh
        # accesses contribute _increment == 1 / _scale stored units.
        self._scale = 1.0
        self._increment = 1.0
        self.epochs = 0
        self.transactions_applied = 0

    # -- node bookkeeping --------------------------------------------------------------
    @property
    def num_tuples(self) -> int:
        """Number of tuples represented (== graph nodes; ids are stable)."""
        return len(self._tuple_of)

    def node_of(self, tuple_id: TupleId) -> int | None:
        """Graph node for ``tuple_id`` (None when never observed)."""
        return self._node_of.get(tuple_id)

    def tuple_of(self, node: int) -> TupleId:
        """Tuple behind graph node ``node``."""
        return self._tuple_of[node]

    def tuples(self) -> list[TupleId]:
        """All represented tuples in node-id order."""
        return list(self._tuple_of)

    def node_weight(self, node: int) -> float:
        """Decayed (true) access weight of ``node``."""
        return self.graph.node_weights[node] * self._scale

    def edge_weight(self, u: int, v: int) -> float:
        """Decayed (true) co-access weight of the edge ``{u, v}``."""
        return self.graph.edge_weight(u, v) * self._scale

    def _node_for(self, tuple_id: TupleId) -> int:
        node = self._node_of.get(tuple_id)
        if node is None:
            node = self.graph.add_node(0.0)
            self._node_of[tuple_id] = node
            self._tuple_of.append(tuple_id)
        return node

    # -- deltas ------------------------------------------------------------------------
    def apply(self, access: TransactionAccess) -> None:
        """Fold one transaction into the graph (node weights + clique edges)."""
        touched = access.touched
        if len(touched) > self.options.blanket_transaction_threshold:
            return
        graph = self.graph
        increment = self._increment
        # Sort by tuple id *before* node creation: node ids must not depend
        # on frozenset iteration order (string hashing is salted per process).
        nodes = sorted(self._node_for(tuple_id) for tuple_id in sorted(touched))
        for node in nodes:
            graph.set_node_weight(node, graph.node_weights[node] + increment)
        for u, v in combinations(nodes, 2):
            graph.add_edge(u, v, increment)
        self.transactions_applied += 1

    def apply_batch(self, batch: Iterable[TransactionAccess]) -> None:
        """Fold one chunk of transactions, batching edge accumulation, then age.

        Mirrors the offline builder's batched clique accumulation: duplicate
        pairs within the batch hit one flat Counter instead of two adjacency
        dicts per occurrence.
        """
        graph = self.graph
        threshold = self.options.blanket_transaction_threshold
        increment = self._increment
        pair_weights: Counter[tuple[int, int]] = Counter()
        for access in batch:
            touched = access.touched
            if len(touched) > threshold:
                continue
            # Sorted tuple order first: node-id assignment must be
            # process-independent (see ``apply``).
            nodes = sorted(self._node_for(tuple_id) for tuple_id in sorted(touched))
            for node in nodes:
                graph.set_node_weight(node, graph.node_weights[node] + increment)
            pair_weights.update(combinations(nodes, 2))
            self.transactions_applied += 1
        graph.add_weighted_edges(
            (pair, count * increment) for pair, count in pair_weights.items()
        )
        self.advance_epoch()

    def advance_epoch(self) -> None:
        """Age all weights one epoch (O(1): one scale update).

        The periodic prune (every ``prune_interval`` epochs) and the rare
        precision renormalisation are the only O(E) work on the ingest path.
        """
        self.epochs += 1
        if self.options.decay < 1.0:
            self._scale *= self.options.decay
            self._increment = 1.0 / self._scale
            if self._increment > _RENORMALISE_LIMIT:
                self._materialise_scale()
        if self.epochs % self.options.prune_interval == 0:
            # True threshold expressed in stored units.
            self.graph.prune_edges(self.options.prune_threshold * self._increment)

    def _materialise_scale(self) -> None:
        """Fold the pending scale into the stored weights (O(V + E), rare)."""
        if self._scale != 1.0:
            self.graph.scale_weights(self._scale)
            self._scale = 1.0
            self._increment = 1.0

    # -- freezing ----------------------------------------------------------------------
    def freeze(self) -> tuple[CSRGraph, list[TupleId]]:
        """Compile the current graph to CSR plus the node -> tuple mapping.

        Folds the lazily-accumulated decay into the weights first, so the
        CSR carries true weights.  Called only when the controller triggers
        a re-partition; streaming ingest never pays the O(V + E) freeze.
        """
        self._materialise_scale()
        return self.graph.freeze(), list(self._tuple_of)
