"""Online adaptivity layer: closing the loop from live traffic to placement.

The offline Schism pipeline (:mod:`repro.core.schism`) partitions from a
static training trace and then freezes the system — the limitation the paper
itself flags when workloads drift.  This package keeps the partitioning
live:

* :mod:`repro.online.monitor` — streaming workload monitor: sliding-window /
  exponentially-decayed access statistics plus a drift detector (distributed
  fraction, per-partition load skew, hot-tuple churn vs. the baseline).
* :mod:`repro.online.maintainer` — incremental tuple-graph maintenance:
  decayed edge/node-weight deltas applied to a mutable
  :class:`~repro.graph.model.Graph`, re-frozen to CSR only on demand.
* :mod:`repro.online.repartitioner` — budgeted re-partitioning that
  warm-starts from the *current* assignment with an explicit migration-cost
  term, so small drifts produce small placement deltas.
* :mod:`repro.online.migration` — live migration planning and execution:
  ordered copy-before-drop steps against a
  :class:`~repro.distributed.cluster.Cluster`, with an atomic swap of the
  router's lookup table at the end.
* :mod:`repro.online.controller` — :class:`OnlineSchism`, the controller
  wiring monitor -> maintainer -> re-partitioner -> migration.
"""

from repro.online.controller import (
    AdaptationRecord,
    ElasticOptions,
    OnlineOptions,
    OnlineSchism,
    ResizeRecord,
)
from repro.online.maintainer import (
    IncrementalGraphMaintainer,
    MaintainerOptions,
    StarExpansion,
)
from repro.online.migration import (
    LiveMigrator,
    MigrationPlan,
    MigrationReport,
    MigrationStep,
    plan_migration,
)
from repro.online.monitor import DriftReport, MonitorOptions, WindowStats, WorkloadMonitor
from repro.online.repartitioner import (
    BudgetedRepartitioner,
    RepartitionOptions,
    RepartitionResult,
    ReplicatedRepartitionResult,
    align_partition_labels,
)

__all__ = [
    "AdaptationRecord",
    "BudgetedRepartitioner",
    "DriftReport",
    "ElasticOptions",
    "IncrementalGraphMaintainer",
    "LiveMigrator",
    "MaintainerOptions",
    "MigrationPlan",
    "MigrationReport",
    "MigrationStep",
    "MonitorOptions",
    "OnlineOptions",
    "OnlineSchism",
    "RepartitionOptions",
    "RepartitionResult",
    "ReplicatedRepartitionResult",
    "ResizeRecord",
    "StarExpansion",
    "WindowStats",
    "WorkloadMonitor",
    "align_partition_labels",
    "plan_migration",
]
