"""The :class:`OnlineSchism` controller: traffic in, placement deltas out.

Wiring of the online loop:

1. live transactions stream in as chunked batches (one code path with the
   offline trace pipeline, see :meth:`AccessTrace.iter_batches`);
2. each batch feeds the :class:`~repro.online.monitor.WorkloadMonitor`
   (statistics + drift detection) and the
   :class:`~repro.online.maintainer.IncrementalGraphMaintainer` (decayed
   graph deltas);
3. when the monitor reports drift, :meth:`OnlineSchism.adapt` freezes the
   maintained graph, warm-starts the
   :class:`~repro.online.repartitioner.BudgetedRepartitioner` from the
   deployed placement, plans and executes the live migration against the
   cluster (copies, then the routing update — an in-place entry delta for
   exact lookup backends, an atomic wholesale table swap otherwise — then
   drops), and re-baselines the monitor.

The online layer keeps one node per tuple and produces single-partition
placements (no replication stars — those are a whole-trace construct);
tuples that the maintained graph has decayed out of keep their deployed
placement untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.catalog.tuples import TupleId
from repro.core.strategies import LookupTablePartitioning
from repro.distributed.cluster import Cluster
from repro.graph.assignment import PartitionAssignment
from repro.online.maintainer import IncrementalGraphMaintainer, MaintainerOptions
from repro.online.migration import (
    LiveMigrator,
    MigrationPlan,
    MigrationReport,
    plan_migration,
)
from repro.online.monitor import DriftReport, MonitorOptions, WorkloadMonitor
from repro.online.repartitioner import (
    BudgetedRepartitioner,
    RepartitionOptions,
    RepartitionResult,
    repartition_from_scratch,
)
from repro.routing.router import Router
from repro.workload.rwsets import AccessTrace
from repro.workload.trace import TransactionAccess, iter_chunks


@dataclass
class OnlineOptions:
    """Configuration of the online adaptivity loop."""

    monitor: MonitorOptions = field(default_factory=MonitorOptions)
    maintainer: MaintainerOptions = field(default_factory=MaintainerOptions)
    repartition: RepartitionOptions = field(default_factory=RepartitionOptions)
    #: transactions per ingest batch (= one monitor/maintainer epoch).
    batch_size: int = 100
    #: migration cost per tuple: "tuples" (1 each) or "bytes" (schema row size).
    move_cost: str = "tuples"
    #: lookup-table backend rebuilt at swap time.
    lookup_backend: str = "dict"
    #: suppress re-adaptation for this many batches after an adaptation.
    cooldown_batches: int = 2

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.move_cost not in ("tuples", "bytes"):
            raise ValueError("move_cost must be 'tuples' or 'bytes'")


@dataclass
class AdaptationRecord:
    """Everything produced by one adaptation (re-partition + migration)."""

    trigger: DriftReport | None
    repartition: RepartitionResult
    plan: MigrationPlan
    migration: MigrationReport
    distributed_fraction_before: float
    distributed_fraction_after: float

    def describe(self) -> str:
        """One-line summary for logs and experiment reports."""
        return (
            f"adaptation: moved {self.repartition.num_moved} nodes "
            f"(cost {self.repartition.migration_cost:.0f}), "
            f"cut {self.repartition.cut_before:.0f} -> {self.repartition.cut_after:.0f}, "
            f"distributed {self.distributed_fraction_before:.1%} -> "
            f"{self.distributed_fraction_after:.1%}"
        )


@dataclass
class ObservationResult:
    """Outcome of streaming a trace through the controller."""

    batches: int = 0
    transactions: int = 0
    drift_reports: list[DriftReport] = field(default_factory=list)
    adaptations: list[AdaptationRecord] = field(default_factory=list)


class OnlineSchism:
    """Controller closing the loop from live traffic back to placement.

    Parameters
    ----------
    cluster:
        The running shared-nothing cluster the data physically lives in.
    router:
        The deployed router; its strategy must be a
        :class:`LookupTablePartitioning` (fine-grained placement is what
        live migration updates).
    options:
        Loop configuration.
    """

    def __init__(
        self,
        cluster: Cluster,
        router: Router,
        options: OnlineOptions | None = None,
    ) -> None:
        if not isinstance(router.strategy, LookupTablePartitioning):
            raise TypeError("OnlineSchism requires a lookup-table routing strategy")
        if cluster.num_partitions != router.num_partitions:
            raise ValueError("cluster and router disagree on the number of partitions")
        self.cluster = cluster
        self.router = router
        self.options = options or OnlineOptions()
        self.monitor = WorkloadMonitor(self.options.monitor, router.strategy)
        self.maintainer = IncrementalGraphMaintainer(self.options.maintainer)
        self.migrator = LiveMigrator(cluster)
        self.adaptations: list[AdaptationRecord] = []
        self._cooldown = 0

    @property
    def strategy(self) -> LookupTablePartitioning:
        """The deployed fine-grained strategy (shared with the router)."""
        strategy = self.router.strategy
        assert isinstance(strategy, LookupTablePartitioning)
        return strategy

    @property
    def num_partitions(self) -> int:
        """Number of partitions of the deployed placement."""
        return self.router.num_partitions

    # -- ingest -----------------------------------------------------------------------
    def warm_up(self, trace: AccessTrace | Iterable[TransactionAccess]) -> None:
        """Seed monitor and maintainer from the training trace, then baseline.

        Gives the online loop the same starting knowledge the offline
        pipeline trained on: the maintained graph starts as the (decayed)
        training graph instead of empty, and the drift baseline reflects
        steady-state traffic.
        """
        accesses = trace.accesses if isinstance(trace, AccessTrace) else trace
        for batch in iter_chunks(accesses, self.options.batch_size):
            self.monitor.ingest_batch(batch)
            self.maintainer.apply_batch(batch)
        self.monitor.set_baseline()

    def observe(
        self,
        trace: AccessTrace | Iterable[TransactionAccess],
        auto_adapt: bool = True,
    ) -> ObservationResult:
        """Stream live traffic through the loop, adapting on drift.

        ``trace`` may be a recorded :class:`AccessTrace` or any iterable of
        transaction accesses (a live feed); it is consumed in
        ``batch_size`` chunks.
        """
        accesses = trace.accesses if isinstance(trace, AccessTrace) else trace
        result = ObservationResult()
        for batch in iter_chunks(accesses, self.options.batch_size):
            self.monitor.ingest_batch(batch)
            self.maintainer.apply_batch(batch)
            result.batches += 1
            result.transactions += len(batch)
            if self._cooldown > 0:
                self._cooldown -= 1
                continue
            report = self.monitor.check_drift()
            result.drift_reports.append(report)
            if report.drifted and auto_adapt:
                result.adaptations.append(self.adapt(report))
        return result

    # -- adaptation -------------------------------------------------------------------
    def current_node_assignment(self) -> tuple[list[int], list[float]]:
        """Warm-start node assignment + per-node move costs for the maintained graph.

        Each node maps to the (deterministically chosen) minimum partition of
        its tuple's deployed placement — including tuples placed by the
        lookup table's default policy, which is where they physically live.
        """
        strategy = self.strategy
        use_bytes = self.options.move_cost == "bytes"
        database = self.cluster.partition_databases[0]
        warm: list[int] = []
        costs: list[float] = []
        for tuple_id in self.maintainer.tuples():
            warm.append(min(strategy.partitions_for_tuple(tuple_id)))
            costs.append(float(database.tuple_byte_size(tuple_id)) if use_bytes else 1.0)
        return warm, costs

    def adapt(self, trigger: DriftReport | None = None) -> AdaptationRecord:
        """Re-partition with a migration budget and migrate the delta live.

        Sequencing is copies -> routing update -> drops: while the routing
        state changes, every affected tuple is resident at both its old and
        new location, so reads routed under either placement succeed.  The
        plan and routing update touch only the maintained graph's tuples —
        O(drifted working set), not O(all deployed tuples) — unless the
        lookup backend cannot update in place (then a full rebuild + atomic
        swap is the only sound publication).
        """
        before = self.monitor.window_stats().distributed_fraction
        csr, tuples = self.maintainer.freeze()
        warm, costs = self.current_node_assignment()
        repartitioner = BudgetedRepartitioner(self.options.repartition)
        result = repartitioner.repartition(csr, warm, self.num_partitions, costs)
        target = PartitionAssignment(self.num_partitions)
        for node, tuple_id in enumerate(tuples):
            target.assign(tuple_id, {result.assignment[node]})
        plan = plan_migration(self.strategy.partitions_for_tuple, target)
        migration = self.migrator.execute_copies(plan)
        table = self.router.lookup_table
        if table is not None and table.supports_update():
            self.migrator.apply_routing_delta(self.router, plan, migration)
        else:
            merged = self.merged_assignment(tuples, result.assignment)
            self.migrator.swap_routing(
                self.router, merged, migration, self.options.lookup_backend
            )
        self.migrator.execute_drops(plan, migration)
        self.monitor.rebaseline(self.router.strategy)
        after = self.monitor.window_stats().distributed_fraction
        record = AdaptationRecord(trigger, result, plan, migration, before, after)
        self.adaptations.append(record)
        self._cooldown = self.options.cooldown_batches
        return record

    def preview_full_repartition(self) -> RepartitionResult:
        """What a from-scratch re-partition would do right now (not applied).

        Used by experiments and tests to compare the budgeted delta against
        the full-reshuffle baseline (labels aligned, so moves are genuine).
        """
        csr, _ = self.maintainer.freeze()
        warm, costs = self.current_node_assignment()
        return repartition_from_scratch(csr, warm, self.num_partitions, costs)

    def merged_assignment(
        self, tuples: list[TupleId], node_assignment: list[int]
    ) -> PartitionAssignment:
        """Full placement from a node assignment: deployed placements overridden.

        Public so that experiments can evaluate a previewed (not applied)
        re-partition exactly as :meth:`adapt` would deploy it.
        """
        merged = PartitionAssignment(self.num_partitions)
        deployed = self.strategy.assignment
        for tuple_id in deployed:
            placement = deployed.partitions_of(tuple_id)
            assert placement is not None
            merged.assign(tuple_id, placement)
        for node, tuple_id in enumerate(tuples):
            merged.assign(tuple_id, {node_assignment[node]})
        return merged
